// Spatio-temporal cloaking (the temporal dimension of Gruteser &
// Grunwald's cloaking, which the paper cites as the canonical location-
// perturbation technique and extends with k-anonymity profiles).
//
// Instead of enlarging the *area* until k users are inside, temporal
// cloaking enlarges the *time interval*: a location report is buffered and
// released only once k distinct users have visited its cell, with the cell
// extent and the visit interval disclosed instead of the exact point and
// instant. The trade-off measured by the benchmarks: larger k => longer
// release delay (staleness) instead of larger regions.

#ifndef CLOAKDB_CORE_TEMPORAL_CLOAKING_H_
#define CLOAKDB_CORE_TEMPORAL_CLOAKING_H_

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/anonymizer.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "util/status.h"

namespace cloakdb {

/// Configuration of the temporal cloaker.
struct TemporalCloakingOptions {
  /// Managed space and its fixed cell grid.
  Rect space{0.0, 0.0, 100.0, 100.0};
  uint32_t cells_per_side = 32;
  /// Release a pending report once its cell saw k distinct users.
  uint32_t k = 5;
  /// Best-effort cap: a report older than this is released even if its
  /// cell never reached k (flagged k_satisfied = false).
  double max_delay = 60.0;
};

/// One temporally cloaked release.
struct TemporalRelease {
  UserId user = 0;
  /// Disclosed area: the fixed cell (not the exact point).
  Rect cell;
  /// Disclosed time interval [report time, release time]: the user was in
  /// the cell at *some* instant of it.
  double t_start = 0.0;
  double t_end = 0.0;
  /// Distinct users that visited the cell during the interval.
  uint32_t distinct_visitors = 0;
  /// False when released by the max-delay cap before reaching k.
  bool k_satisfied = false;

  /// Release delay (the staleness cost of temporal cloaking).
  double Delay() const { return t_end - t_start; }
};

/// Buffers location reports and releases them k-anonymized in time.
///
/// Reports must be fed in non-decreasing time order.
class TemporalCloaker {
 public:
  /// Validates the options (k >= 1, positive delay, non-empty space).
  static Result<TemporalCloaker> Create(
      const TemporalCloakingOptions& options);

  /// Feeds one exact report; returns every release it triggers (the fed
  /// report may be among them, and stale reports released by the delay
  /// cap may accompany it). Fails with OutOfRange for locations outside
  /// the space and FailedPrecondition for time regressions.
  Result<std::vector<TemporalRelease>> Report(UserId user,
                                              const Point& location,
                                              double time);

  /// Advances the clock without a report, flushing delay-capped entries.
  Result<std::vector<TemporalRelease>> Tick(double time);

  /// Reports still buffered.
  size_t pending() const { return total_pending_; }

  const TemporalCloakingOptions& options() const { return options_; }

 private:
  explicit TemporalCloaker(const TemporalCloakingOptions& options);

  struct PendingReport {
    UserId user = 0;
    double time = 0.0;
  };
  struct CellState {
    std::deque<PendingReport> pending;
    /// Distinct users among the pending reports; reaching k releases the
    /// whole batch (its members are mutually k-anonymous in the interval).
    std::unordered_set<UserId> visitors;
  };

  size_t CellIndexFor(const Point& p) const;
  Rect CellRectFor(size_t index) const;
  void ReleaseFrom(size_t cell_index, CellState* cell, double now,
                   bool k_reached, std::vector<TemporalRelease>* out);
  std::vector<TemporalRelease> FlushExpired(double now);

  TemporalCloakingOptions options_;
  double cell_w_ = 0.0;
  double cell_h_ = 0.0;
  double last_time_ = -std::numeric_limits<double>::infinity();
  std::unordered_map<size_t, CellState> cells_;
  size_t total_pending_ = 0;
};

}  // namespace cloakdb

#endif  // CLOAKDB_CORE_TEMPORAL_CLOAKING_H_
