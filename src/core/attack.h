// Adversary models for reverse-engineering cloaked regions (paper
// Section 5: requirement 2 — "an adversary should not be able to do
// reverse engineering to know the exact user location").
//
// Each adversary sees only the cloaked region and outputs a location guess.
// EvaluateLeakage runs an adversary over many cloaking outcomes and reports
// the guess-error distribution, normalized so that algorithms with different
// region sizes are comparable:
//   - naive cloaking + CenterAttack  -> error exactly 0 (full leakage);
//   - MBR cloaking   + BoundaryAttack-> error below the uniform baseline
//     for small k (edge leakage);
//   - space-dependent cloaking       -> no adversary beats the baseline.

#ifndef CLOAKDB_CORE_ATTACK_H_
#define CLOAKDB_CORE_ATTACK_H_

#include <memory>
#include <string>
#include <vector>

#include "core/cloaking.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "util/random.h"
#include "util/stats.h"

namespace cloakdb {

/// An adversary that guesses the exact location from the cloaked region.
class Attack {
 public:
  virtual ~Attack() = default;

  /// The adversary's location guess for one observed region.
  virtual Point Guess(const Rect& region, Rng* rng) const = 0;

  virtual std::string Name() const = 0;
};

/// Guesses the region's center — defeats naive centered expansion exactly.
class CenterAttack : public Attack {
 public:
  Point Guess(const Rect& region, Rng* rng) const override;
  std::string Name() const override { return "center"; }
};

/// Guesses a uniform point on the region's boundary — exploits the MBR
/// property that at least one user lies on each edge.
class BoundaryAttack : public Attack {
 public:
  Point Guess(const Rect& region, Rng* rng) const override;
  std::string Name() const override { return "boundary"; }
};

/// Guesses a uniform point inside the region — the no-extra-knowledge
/// baseline every leakage measurement is compared against.
class UniformAttack : public Attack {
 public:
  Point Guess(const Rect& region, Rng* rng) const override;
  std::string Name() const override { return "uniform"; }
};

/// Aggregate leakage measurement for one (algorithm, adversary) pairing.
struct LeakageReport {
  std::string attack_name;
  /// Guess error normalized by the region's half-diagonal (so 0 = exact
  /// recovery and ~1 = as bad as guessing a corner from the center).
  RunningStats normalized_error;
  /// Raw guess error in length units.
  RunningStats absolute_error;
  /// Fraction of guesses landing within `epsilon_fraction` of the region
  /// half-diagonal from the true location.
  double hit_rate = 0.0;
  double epsilon_fraction = 0.05;
};

/// One cloaking outcome paired with the ground-truth location.
struct CloakObservation {
  Rect region;
  Point true_location;
};

/// Runs `attack` once per observation and aggregates the errors.
LeakageReport EvaluateLeakage(const Attack& attack,
                              const std::vector<CloakObservation>& observations,
                              Rng* rng, double epsilon_fraction = 0.05);

// Deterministic single-region risk checks for online auditing: does the
// named adversary's best guess land within `epsilon_fraction` of the
// region's half-diagonal from the true location? Unlike EvaluateLeakage
// these need no Rng (the boundary check uses the nearest boundary point,
// the adversary's best case), so the service can audit every cloak it
// emits at query time.

/// True when the center guess compromises `true_location`.
bool CenterAttackCompromises(const Rect& region, const Point& true_location,
                             double epsilon_fraction = 0.05);

/// True when some boundary point compromises `true_location` (the user sits
/// close enough to an edge that a boundary guess can recover them).
bool BoundaryAttackCompromises(const Rect& region, const Point& true_location,
                               double epsilon_fraction = 0.05);

}  // namespace cloakdb

#endif  // CLOAKDB_CORE_ATTACK_H_
