#include "core/baselines.h"

#include <algorithm>
#include <unordered_set>

#include "geom/distance.h"

namespace cloakdb {

Result<DummyUpdate> MakeDummyUpdate(const Point& true_location,
                                    const Rect& space,
                                    const DummyOptions& options, Rng* rng) {
  if (options.num_points == 0)
    return Status::InvalidArgument("dummy update needs at least one point");
  if (space.IsEmpty() || !space.Contains(true_location))
    return Status::InvalidArgument(
        "true location must lie inside a non-empty space");

  DummyUpdate update;
  update.points.reserve(options.num_points);
  // Draw dummies; locality keeps them plausible (a dummy across town is
  // easy to discard with map knowledge).
  Rect locality = options.locality_radius > 0.0
                      ? Rect::CenteredSquare(true_location,
                                             2.0 * options.locality_radius)
                            .Intersection(space)
                      : space;
  if (locality.IsEmpty()) locality = space;
  for (size_t i = 0; i + 1 < options.num_points; ++i) {
    update.points.push_back(
        {rng->Uniform(locality.min_x, locality.max_x),
         rng->Uniform(locality.min_y, locality.max_y)});
  }
  // Insert the real point at a random position so ordering leaks nothing.
  update.real_index = static_cast<size_t>(rng->NextBelow(options.num_points));
  update.points.insert(update.points.begin() + update.real_index,
                       true_location);
  return update;
}

DummyLeakageReport EvaluateDummyLeakage(
    const std::vector<DummyUpdate>& updates, Rng* rng) {
  DummyLeakageReport report;
  size_t exact = 0;
  for (const auto& update : updates) {
    size_t pick = static_cast<size_t>(rng->NextBelow(update.points.size()));
    const Point& truth = update.points[update.real_index];
    report.guess_error.Add(Distance(update.points[pick], truth));
    if (pick == update.real_index) ++exact;
  }
  report.identification_rate =
      updates.empty() ? 0.0
                      : static_cast<double>(exact) /
                            static_cast<double>(updates.size());
  return report;
}

Result<LandmarkUpdate> MakeLandmarkUpdate(const Point& true_location,
                                          const RTree& landmarks) {
  auto nn = landmarks.KNearest(true_location, 1);
  if (nn.empty()) return Status::NotFound("no landmarks available");
  LandmarkUpdate update;
  update.landmark = nn.front().location;
  update.landmark_id = nn.front().id;
  update.displacement = Distance(true_location, update.landmark);
  return update;
}

LandmarkReport EvaluateLandmarks(const std::vector<Point>& users,
                                 const RTree& landmarks) {
  LandmarkReport report;
  size_t exposed = 0;
  for (const Point& user : users) {
    auto update = MakeLandmarkUpdate(user, landmarks);
    if (!update.ok()) continue;
    report.displacement.Add(update.value().displacement);
    if (update.value().displacement == 0.0) ++exposed;
  }
  report.exposed_rate =
      users.empty() ? 0.0
                    : static_cast<double>(exposed) /
                          static_cast<double>(users.size());
  return report;
}

}  // namespace cloakdb
