// Read-only memory-mapped file with a graceful read() fallback.
//
// The packed StaticRTree (index/static_rtree.h) serializes into one
// contiguous blob; on restart the shard maps the sidecar blob file and
// points the tree's node/leaf/coordinate spans straight into the mapping —
// no allocation, no STR rebuild, pages fault in on first touch. When mmap
// is unavailable (exotic filesystems, sandboxes, or a forced fallback in
// tests) the whole file is read into an owned heap buffer instead; callers
// observe the same `data()/size()` either way and can report which path was
// taken through `mapped()`.

#ifndef CLOAKDB_UTIL_MMAP_FILE_H_
#define CLOAKDB_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace cloakdb {
namespace util {

/// An immutable byte view of one file, mmap-backed when possible.
class MmapFile {
 public:
  /// Opens `path` read-only. `force_read_fallback` skips mmap and always
  /// loads through read() — exercised by tests to cover the fallback path
  /// deterministically.
  static Result<std::shared_ptr<MmapFile>> Open(
      const std::string& path, bool force_read_fallback = false);

  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  /// True when the bytes come from an mmap mapping (false = heap fallback).
  bool mapped() const { return mapped_; }
  const std::string& path() const { return path_; }

 private:
  MmapFile() = default;

  std::string path_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  void* map_base_ = nullptr;     ///< munmap target when mapped_.
  std::vector<uint8_t> owned_;   ///< Backing store on the read() fallback.
};

}  // namespace util
}  // namespace cloakdb

#endif  // CLOAKDB_UTIL_MMAP_FILE_H_
