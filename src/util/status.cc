#include "util/status.h"

namespace cloakdb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnsatisfiable:
      return "Unsatisfiable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kShed:
      return "Shed";
    case StatusCode::kDegradedZeroCoverage:
      return "DegradedZeroCoverage";
    case StatusCode::kMalformedRequest:
      return "MalformedRequest";
  }
  return "Unknown";
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kInvalidArgument:
      return "invalid-argument";
    case ErrorCode::kNotFound:
      return "not-found";
    case ErrorCode::kAlreadyExists:
      return "already-exists";
    case ErrorCode::kOutOfRange:
      return "out-of-range";
    case ErrorCode::kFailedPrecondition:
      return "failed-precondition";
    case ErrorCode::kUnsatisfiable:
      return "unsatisfiable";
    case ErrorCode::kResourceExhausted:
      return "resource-exhausted";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case ErrorCode::kShed:
      return "shed";
    case ErrorCode::kDegradedZeroCoverage:
      return "degraded-zero-coverage";
    case ErrorCode::kMalformedRequest:
      return "malformed-request";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace cloakdb
