#include "util/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cloakdb {

namespace {

// SplitMix64: expands one 64-bit seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] so log(u1) is finite.
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  have_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0.0);
  double u = 1.0 - NextDouble();  // (0, 1]
  return -std::log(u) / lambda;
}

ZipfSampler::ZipfSampler(size_t n, double theta) : theta_(theta) {
  assert(n > 0);
  assert(theta >= 0.0);
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace cloakdb
