// Deterministic, seedable random-number generation and the distributions the
// workload generators need (uniform, normal, exponential, Zipf).
//
// All randomized components in CloakDB take an explicit Rng (or a seed) so
// every experiment is reproducible bit-for-bit from its seed.

#ifndef CLOAKDB_UTIL_RANDOM_H_
#define CLOAKDB_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cloakdb {

/// Full serializable state of an Rng: the four xoshiro256++ words plus the
/// Box-Muller spare. Saving and restoring this reproduces the generator's
/// future stream bit-exactly — the durability layer checkpoints the
/// pseudonym generator with it so recovered shards keep assigning the same
/// pseudonyms an uninterrupted service would have.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool have_cached_gaussian = false;
  double cached_gaussian = 0.0;
};

/// xoshiro256++ pseudo-random generator.
///
/// Fast, high-quality, and fully deterministic from its 64-bit seed (seeded
/// via SplitMix64 as the algorithm's authors recommend). Not cryptographic.
class Rng {
 public:
  /// Creates a generator whose whole stream is determined by `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller (mean 0, stddev 1).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential with the given rate lambda (> 0).
  double Exponential(double lambda);

  /// Snapshot of the complete generator state (see RngState).
  RngState SaveState() const {
    RngState st;
    for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
    st.have_cached_gaussian = have_cached_gaussian_;
    st.cached_gaussian = cached_gaussian_;
    return st;
  }

  /// Restores a state captured by SaveState; the future stream continues
  /// bit-exactly from the capture point.
  void LoadState(const RngState& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    have_cached_gaussian_ = st.have_cached_gaussian;
    cached_gaussian_ = st.cached_gaussian;
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Zipf-distributed integer sampler over {0, 1, ..., n-1}.
///
/// P(i) proportional to 1 / (i+1)^theta. theta = 0 degenerates to uniform;
/// larger theta concentrates mass on low ranks. Sampling is O(log n) via a
/// precomputed CDF, so constructing one sampler and reusing it is cheap.
class ZipfSampler {
 public:
  /// Builds the CDF for `n` ranks with skew `theta` (>= 0). Requires n > 0.
  ZipfSampler(size_t n, double theta);

  /// Draws a rank in [0, n).
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }
  double theta() const { return theta_; }

 private:
  std::vector<double> cdf_;
  double theta_;
};

}  // namespace cloakdb

#endif  // CLOAKDB_UTIL_RANDOM_H_
