#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace cloakdb {

void RunningStats::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  uint64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  count_ = n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string RunningStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.6g sd=%.6g min=%.6g max=%.6g",
                static_cast<unsigned long long>(count_), mean(), stddev(),
                min(), max());
  return buf;
}

Histogram::Histogram(double lo, double hi, size_t num_buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(num_buckets)) {
  assert(lo < hi);
  assert(num_buckets > 0);
  buckets_.resize(num_buckets, 0);
}

void Histogram::Add(double x) {
  ++count_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  size_t idx = static_cast<size_t>((x - lo_) / width_);
  if (idx >= buckets_.size()) idx = buckets_.size() - 1;  // rounding guard
  ++buckets_[idx];
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  underflow_ = overflow_ = count_ = 0;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  // Clamp to lo only when actual underflow mass covers the target; with
  // zero underflow the quantile must come from the first non-empty bucket
  // (q=0 used to return lo even when every sample was far above it).
  if (underflow_ > 0 && target <= cum) return lo_;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    double next = cum + static_cast<double>(buckets_[i]);
    if (target <= next) {
      double frac = (target - cum) / static_cast<double>(buckets_[i]);
      if (frac < 0.0) frac = 0.0;  // target landed below this bucket's mass
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cum = next;
  }
  return hi_;
}

}  // namespace cloakdb
