#include "util/poisson_binomial.h"

#include <algorithm>

namespace cloakdb {

Result<std::vector<double>> PoissonBinomialPmf(const std::vector<double>& ps) {
  for (double p : ps) {
    if (p < 0.0 || p > 1.0)
      return Status::InvalidArgument(
          "Poisson-binomial probability outside [0, 1]");
  }
  std::vector<double> pmf(ps.size() + 1, 0.0);
  pmf[0] = 1.0;
  size_t upper = 0;  // highest index that can be non-zero so far
  for (double p : ps) {
    ++upper;
    // Walk downward so each trial is folded in exactly once.
    for (size_t j = upper; j > 0; --j) {
      pmf[j] = pmf[j] * (1.0 - p) + pmf[j - 1] * p;
    }
    pmf[0] *= (1.0 - p);
  }
  return pmf;
}

int CountAnswer::MostLikely() const {
  if (pmf.empty()) return 0;
  auto it = std::max_element(pmf.begin(), pmf.end());
  return static_cast<int>(it - pmf.begin());
}

Result<CountAnswer> MakeCountAnswer(const std::vector<double>& ps,
                                    double certainty_eps) {
  std::vector<double> snapped;
  snapped.reserve(ps.size());
  CountAnswer ans;
  for (double p : ps) {
    if (p < -certainty_eps || p > 1.0 + certainty_eps)
      return Status::InvalidArgument("count probability outside [0, 1]");
    double q = std::clamp(p, 0.0, 1.0);
    if (q <= certainty_eps) q = 0.0;
    if (q >= 1.0 - certainty_eps) q = 1.0;
    snapped.push_back(q);
    ans.expected += q;
    ans.variance += q * (1.0 - q);
    if (q == 1.0) ++ans.min_count;
    if (q > 0.0) ++ans.max_count;
  }
  auto pmf = PoissonBinomialPmf(snapped);
  if (!pmf.ok()) return pmf.status();
  ans.pmf = std::move(pmf).value();
  return ans;
}

}  // namespace cloakdb
