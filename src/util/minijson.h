// Minimal JSON DOM parser for tooling: cloakmon's status-file polling, the
// CI trace-smoke validator, and tests that assert on exported JSON without
// string-matching. Strict on structure (rejects trailing garbage, enforces
// a recursion cap), tolerant on nothing — a document either parses or the
// error says where it stopped.
//
// Scope is deliberately small: UTF-8 pass-through (no surrogate-pair
// decoding beyond \uXXXX -> UTF-8), numbers as double, object member order
// preserved. Not for hot paths.

#ifndef CLOAKDB_UTIL_MINIJSON_H_
#define CLOAKDB_UTIL_MINIJSON_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cloakdb::util {

/// One parsed JSON value. Arrays/objects own their children.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses a full document. Returns nullptr and fills `*error` (with a
  /// byte offset) on malformed input or trailing non-whitespace.
  static std::unique_ptr<JsonValue> Parse(std::string_view text,
                                          std::string* error = nullptr);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsNumber(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  const std::string& AsString() const { return string_; }

  /// Array access; empty for non-arrays.
  const std::vector<JsonValue>& items() const { return items_; }

  /// Object members in document order; empty for non-objects.
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// First member with `key`, or nullptr (also for non-objects).
  const JsonValue* Find(std::string_view key) const;

  /// Convenience: Find(key), or nullptr when absent or of different kind.
  const JsonValue* FindArray(std::string_view key) const;
  const JsonValue* FindObject(std::string_view key) const;

  /// Find(key) as a number; `fallback` when absent or not a number.
  double NumberAt(std::string_view key, double fallback = 0.0) const;
  /// Find(key) as a bool; `fallback` when absent or not a bool.
  bool BoolAt(std::string_view key, bool fallback = false) const;
  /// Find(key) as a string; empty when absent or not a string.
  const std::string& StringAt(std::string_view key) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace cloakdb::util

#endif  // CLOAKDB_UTIL_MINIJSON_H_
