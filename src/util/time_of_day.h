// Time-of-day values and (possibly midnight-wrapping) daily intervals.
//
// Privacy profiles (paper Fig. 2) attach constraints to time-of-day
// intervals such as "10:00 PM - 8:00 AM", which wraps past midnight; this
// module models that wrap-around correctly.

#ifndef CLOAKDB_UTIL_TIME_OF_DAY_H_
#define CLOAKDB_UTIL_TIME_OF_DAY_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace cloakdb {

/// A time of day with second resolution, in [0, 86400).
class TimeOfDay {
 public:
  static constexpr int32_t kSecondsPerDay = 24 * 60 * 60;

  /// Midnight (00:00:00).
  TimeOfDay() : seconds_(0) {}

  /// From a raw seconds-since-midnight count; values are wrapped mod 24h
  /// (negative values wrap backwards from midnight).
  static TimeOfDay FromSeconds(int64_t seconds);

  /// From an hour/minute/second triple. Fails on out-of-range fields.
  static Result<TimeOfDay> FromHms(int hour, int minute, int second = 0);

  /// Parses "HH:MM" or "HH:MM:SS" (24-hour clock).
  static Result<TimeOfDay> Parse(const std::string& text);

  /// Seconds since midnight, in [0, 86400).
  int32_t seconds() const { return seconds_; }

  int hour() const { return seconds_ / 3600; }
  int minute() const { return (seconds_ % 3600) / 60; }
  int second() const { return seconds_ % 60; }

  /// This time advanced by `delta_seconds`, wrapping around midnight.
  TimeOfDay Plus(int64_t delta_seconds) const;

  /// "HH:MM:SS".
  std::string ToString() const;

  bool operator==(const TimeOfDay& o) const { return seconds_ == o.seconds_; }
  bool operator!=(const TimeOfDay& o) const { return seconds_ != o.seconds_; }
  bool operator<(const TimeOfDay& o) const { return seconds_ < o.seconds_; }

 private:
  explicit TimeOfDay(int32_t seconds) : seconds_(seconds) {}
  int32_t seconds_;
};

/// A half-open daily interval [start, end) that may wrap past midnight.
///
/// start == end denotes the full day (matching the natural reading of a
/// profile entry that covers all times).
class DailyInterval {
 public:
  /// Full-day interval.
  DailyInterval() = default;

  DailyInterval(TimeOfDay start, TimeOfDay end) : start_(start), end_(end) {}

  TimeOfDay start() const { return start_; }
  TimeOfDay end() const { return end_; }

  /// True iff `t` falls inside the interval, honoring midnight wrap.
  bool Contains(TimeOfDay t) const;

  /// True iff the interval crosses midnight (end before start).
  bool WrapsMidnight() const { return end_ < start_; }

  /// Interval length in seconds (86400 for the full day).
  int32_t DurationSeconds() const;

  /// True iff this interval and `other` share any instant.
  bool Overlaps(const DailyInterval& other) const;

  /// "[HH:MM:SS, HH:MM:SS)".
  std::string ToString() const;

 private:
  TimeOfDay start_;
  TimeOfDay end_;
};

}  // namespace cloakdb

#endif  // CLOAKDB_UTIL_TIME_OF_DAY_H_
