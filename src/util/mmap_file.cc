#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cloakdb {
namespace util {

Result<std::shared_ptr<MmapFile>> MmapFile::Open(const std::string& path,
                                                 bool force_read_fallback) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0)
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));

  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::Internal("fstat failed on " + path + ": " +
                            std::strerror(err));
  }
  auto size = static_cast<size_t>(st.st_size);

  auto file = std::shared_ptr<MmapFile>(new MmapFile());
  file->path_ = path;
  file->size_ = size;

  if (size == 0) {
    // Zero-length mappings are invalid; an empty file is just empty bytes.
    ::close(fd);
    file->data_ = reinterpret_cast<const uint8_t*>("");
    return file;
  }

  if (!force_read_fallback) {
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base != MAP_FAILED) {
      ::close(fd);
      file->map_base_ = base;
      file->data_ = static_cast<const uint8_t*>(base);
      file->mapped_ = true;
      return file;
    }
  }

  // Fallback: pull the whole file through read() into an owned buffer.
  file->owned_.resize(size);
  size_t off = 0;
  while (off < size) {
    ssize_t n = ::pread(fd, file->owned_.data() + off, size - off,
                        static_cast<off_t>(off));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      int err = errno;
      ::close(fd);
      return Status::Internal("short read on " + path + ": " +
                              (n < 0 ? std::strerror(err) : "EOF"));
    }
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  file->data_ = file->owned_.data();
  return file;
}

MmapFile::~MmapFile() {
  if (map_base_ != nullptr) ::munmap(map_base_, size_);
}

}  // namespace util
}  // namespace cloakdb
