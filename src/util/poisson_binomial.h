// Poisson-binomial distribution: the law of a sum of independent Bernoulli
// trials with heterogeneous success probabilities.
//
// Paper Fig. 6a answers a public count query over private (cloaked) data as
// a probability density function: each cloaked object i contributes to the
// count with probability p_i = overlap(region_i, query) / area(region_i);
// the count is then Poisson-binomial distributed over the p_i.

#ifndef CLOAKDB_UTIL_POISSON_BINOMIAL_H_
#define CLOAKDB_UTIL_POISSON_BINOMIAL_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace cloakdb {

/// The exact PMF of sum_i Bernoulli(p_i), computed by O(n^2) dynamic
/// programming (numerically stable; exact up to float rounding).
///
/// Returns a vector of size n+1 where element j is P(count == j).
/// Fails if any p_i is outside [0, 1].
Result<std::vector<double>> PoissonBinomialPmf(const std::vector<double>& ps);

/// Summary of a Poisson-binomial count answer in the paper's three formats.
struct CountAnswer {
  double expected = 0.0;  ///< Absolute-value format: sum of p_i.
  int min_count = 0;      ///< Interval lower bound: #"{p_i == 1}".
  int max_count = 0;      ///< Interval upper bound: #"{p_i > 0}".
  std::vector<double> pmf;  ///< PDF format: pmf[j] = P(count == j).

  /// The most likely count (mode of the PMF); 0 when the PMF is empty.
  int MostLikely() const;

  /// Variance of the count: sum p_i (1 - p_i).
  double variance = 0.0;
};

/// Builds all three answer formats from the per-object probabilities.
/// Probabilities within `certainty_eps` of 0 or 1 are snapped, matching the
/// paper's "100% sure" reading of fully-contained / disjoint regions.
Result<CountAnswer> MakeCountAnswer(const std::vector<double>& ps,
                                    double certainty_eps = 1e-12);

}  // namespace cloakdb

#endif  // CLOAKDB_UTIL_POISSON_BINOMIAL_H_
