#include "util/minijson.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace cloakdb::util {

namespace {

constexpr int kMaxDepth = 64;

}  // namespace

/// Recursive-descent parser over a string_view; tracks a byte cursor for
/// error reporting.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool ParseDocument(JsonValue* out, std::string* error) {
    if (!ParseValue(out, 0)) {
      Report(error);
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      error_ = "trailing characters after document";
      Report(error);
      return false;
    }
    return true;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Fail(const char* message) {
    if (error_ == nullptr) error_ = message;
    return false;
  }

  void Report(std::string* error) const {
    if (error == nullptr) return;
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s (at byte %zu)",
                  error_ != nullptr ? error_ : "parse error", pos_);
    *error = buf;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      case 't':
        if (!Literal("true")) return Fail("invalid literal");
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = true;
        return true;
      case 'f':
        if (!Literal("false")) return Fail("invalid literal");
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = false;
        return true;
      case 'n':
        if (!Literal("null")) return Fail("invalid literal");
        out->kind_ = JsonValue::Kind::kNull;
        return true;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return Fail("expected object key");
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':')
        return Fail("expected ':' after object key");
      ++pos_;
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->items_.push_back(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("truncated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            uint32_t cp = 0;
            if (!ParseHex4(&cp)) return false;
            AppendUtf8(out, cp);
            break;
          }
          default:
            return Fail("invalid escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return Fail("unescaped control character in string");
      out->push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ == start) return Fail("invalid value");
    // strtod needs NUL termination; the slice is short, so copy.
    std::string slice(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(slice.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return Fail("invalid number");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = value;
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  const char* error_ = nullptr;
};

std::unique_ptr<JsonValue> JsonValue::Parse(std::string_view text,
                                            std::string* error) {
  auto value = std::make_unique<JsonValue>();
  JsonParser parser(text);
  if (!parser.ParseDocument(value.get(), error)) return nullptr;
  return value;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue* JsonValue::FindArray(std::string_view key) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_array() ? value : nullptr;
}

const JsonValue* JsonValue::FindObject(std::string_view key) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_object() ? value : nullptr;
}

double JsonValue::NumberAt(std::string_view key, double fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr ? value->AsNumber(fallback) : fallback;
}

bool JsonValue::BoolAt(std::string_view key, bool fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr ? value->AsBool(fallback) : fallback;
}

const std::string& JsonValue::StringAt(std::string_view key) const {
  static const std::string kEmpty;
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_string() ? value->AsString() : kEmpty;
}

}  // namespace cloakdb::util
