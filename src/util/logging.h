// Minimal leveled logger. Defaults to warnings-and-up on stderr so library
// use is quiet; examples raise the level for narrative output.

#ifndef CLOAKDB_UTIL_LOGGING_H_
#define CLOAKDB_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace cloakdb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);

/// The current global minimum level.
LogLevel GetLogLevel();

/// Emits one line ("[LEVEL] message") to stderr if `level` is enabled.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style collector used by the CLOAKDB_LOG macro; emits on
/// destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace cloakdb

/// Usage: CLOAKDB_LOG(kInfo) << "cloaked " << n << " users";
#define CLOAKDB_LOG(level) \
  ::cloakdb::internal::LogLine(::cloakdb::LogLevel::level)

#endif  // CLOAKDB_UTIL_LOGGING_H_
