// Streaming statistics and fixed-bucket histograms used by benchmarks and by
// the anonymizer/server self-instrumentation.

#ifndef CLOAKDB_UTIL_STATS_H_
#define CLOAKDB_UTIL_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace cloakdb {

/// Welford-style streaming mean/variance with min/max tracking.
class RunningStats {
 public:
  /// Folds one observation in.
  void Add(double x);

  /// Merges another accumulator into this one (parallel-safe reduction).
  void Merge(const RunningStats& other);

  /// Clears all state.
  void Reset();

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Population variance; 0 with fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// "n=.. mean=.. sd=.. min=.. max=..".
  std::string ToString() const;

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram over a fixed linear range with out-of-range under/overflow
/// buckets; supports quantile estimation by linear interpolation within the
/// owning bucket.
class Histogram {
 public:
  /// Buckets [lo, hi) split into `num_buckets` equal cells. Requires
  /// lo < hi and num_buckets > 0.
  Histogram(double lo, double hi, size_t num_buckets);

  void Add(double x);
  void Reset();

  uint64_t count() const { return count_; }

  /// Estimated q-quantile (q in [0,1]); 0 when empty. Underflow clamps to
  /// lo, overflow to hi.
  double Quantile(double q) const;

  double Median() const { return Quantile(0.5); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }

  /// Per-bucket counts (excludes under/overflow).
  const std::vector<uint64_t>& buckets() const { return buckets_; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> buckets_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t count_ = 0;
};

}  // namespace cloakdb

#endif  // CLOAKDB_UTIL_STATS_H_
