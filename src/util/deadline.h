// Deadline: a monotonic-clock point in time after which work should stop.
//
// Deadlines are carried by value through the query path (admission ->
// QueryBatcher -> per-shard probes -> merge) so every layer can cheaply ask
// "is there still time?" without consulting a wall clock that can jump.
// A default-constructed Deadline is infinite and never expires, which keeps
// the common no-deadline path branch-cheap.

#ifndef CLOAKDB_UTIL_DEADLINE_H_
#define CLOAKDB_UTIL_DEADLINE_H_

#include <chrono>
#include <cstdint>

namespace cloakdb {

/// A point on std::chrono::steady_clock after which a request is overdue.
///
/// Copyable, trivially cheap, and comparable. The infinite deadline (the
/// default) compares later than every finite one, so Earliest() composes
/// naturally.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  /// Constructs the infinite deadline: Expired() is always false.
  Deadline() : when_(TimePoint::max()) {}

  /// Constructs a deadline at an explicit clock point.
  explicit Deadline(TimePoint when) : when_(when) {}

  /// The deadline that never expires (same as the default constructor,
  /// spelled out for readability at call sites).
  static Deadline Infinite() { return Deadline(); }

  /// A deadline `micros` microseconds from now. Non-positive values produce
  /// an already-expired deadline.
  static Deadline After(std::int64_t micros) {
    return Deadline(Clock::now() + std::chrono::microseconds(micros));
  }

  /// True iff this is the infinite deadline.
  bool is_infinite() const { return when_ == TimePoint::max(); }

  /// True iff the deadline has passed. Always false for the infinite
  /// deadline.
  bool Expired() const { return !is_infinite() && Clock::now() >= when_; }

  /// Microseconds until the deadline: 0 when expired, a large positive
  /// sentinel (int64 max) when infinite.
  std::int64_t RemainingUs() const {
    if (is_infinite()) return INT64_MAX;
    const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
        when_ - Clock::now());
    return left.count() > 0 ? left.count() : 0;
  }

  /// The underlying clock point (TimePoint::max() when infinite).
  TimePoint when() const { return when_; }

  /// The sooner of two deadlines.
  static Deadline Earliest(Deadline a, Deadline b) {
    return a.when_ <= b.when_ ? a : b;
  }

  bool operator==(const Deadline& other) const { return when_ == other.when_; }
  bool operator!=(const Deadline& other) const { return when_ != other.when_; }
  bool operator<(const Deadline& other) const { return when_ < other.when_; }

 private:
  TimePoint when_;
};

}  // namespace cloakdb

#endif  // CLOAKDB_UTIL_DEADLINE_H_
