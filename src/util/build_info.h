// Build identity: the version string a running server reports over the
// admin channel so remote telemetry can be correlated with a binary.
//
// The version is bumped by hand per release line; the compiler tag is
// derived at compile time so two builds of the same source from different
// toolchains remain distinguishable in status snapshots.

#ifndef CLOAKDB_UTIL_BUILD_INFO_H_
#define CLOAKDB_UTIL_BUILD_INFO_H_

#include <string>

namespace cloakdb {

/// Human-readable release version of this tree.
inline constexpr const char kCloakDbVersion[] = "0.9.0";

/// "cloakdb/<version> (<compiler>)" — the identity line carried in status
/// snapshots and admin responses.
inline std::string BuildInfoString() {
  std::string info = "cloakdb/";
  info += kCloakDbVersion;
#if defined(__clang__)
  info += " (clang " __clang_version__ ")";
#elif defined(__GNUC__)
  info += " (gcc " __VERSION__ ")";
#else
  info += " (unknown compiler)";
#endif
  return info;
}

}  // namespace cloakdb

#endif  // CLOAKDB_UTIL_BUILD_INFO_H_
