// Status and Result<T>: the error model used across CloakDB.
//
// Fallible operations return Status (no payload) or Result<T> (payload or
// error). Exceptions are not used on any library path; this mirrors the
// Status-based style of production database codebases.

#ifndef CLOAKDB_UTIL_STATUS_H_
#define CLOAKDB_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace cloakdb {

/// Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed a value that violates a precondition.
  kNotFound,          ///< The requested entity does not exist.
  kAlreadyExists,     ///< An entity with the same key is already registered.
  kOutOfRange,        ///< A coordinate or index is outside the managed space.
  kFailedPrecondition,///< The object is not in a state that allows the call.
  kUnsatisfiable,     ///< A best-effort request could not be satisfied at all.
  kResourceExhausted, ///< A bounded resource (e.g. a queue) is full.
  kInternal,          ///< An invariant was violated inside the library.
  kDeadlineExceeded,  ///< The request's deadline passed before completion.
  kShed,              ///< Admission control rejected the request (overload).
  kDegradedZeroCoverage,  ///< A degraded fan-out covered no shard at all.
  kMalformedRequest,  ///< A wire request failed to decode or validate.
};

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// The one error vocabulary shared by Result<T>/Status on the library side
/// and the status byte of the wire protocol's response/error frames
/// (src/net/protocol.h serializes it as uint8, values are stable).
using ErrorCode = StatusCode;

/// Wire-stable name of an ErrorCode ("deadline-exceeded", "shed", ...).
/// Used by cloaksim/cloakd logs, the slow-query log, and cloakload output;
/// distinct from StatusCodeName so operator-facing strings can stay
/// kebab-case while test messages keep the CamelCase names.
const char* to_string(ErrorCode code);

/// The result of an operation that can fail but produces no value.
///
/// A Status is cheap to copy in the OK case (no allocation). Errors carry a
/// code and a message describing what went wrong.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unsatisfiable(std::string msg) {
    return Status(StatusCode::kUnsatisfiable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Shed(std::string msg) {
    return Status(StatusCode::kShed, std::move(msg));
  }
  static Status DegradedZeroCoverage(std::string msg) {
    return Status(StatusCode::kDegradedZeroCoverage, std::move(msg));
  }
  static Status MalformedRequest(std::string msg) {
    return Status(StatusCode::kMalformedRequest, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error category (kOk when ok()).
  StatusCode code() const { return code_; }

  /// The error message (empty when ok()).
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>" for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// The result of an operation that produces a T on success.
///
/// Exactly one of value / status-error is held. Accessing value() on an
/// error result is a programming bug and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The carried status: OK when a value is present.
  const Status& status() const { return status_; }

  /// The value; requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// The value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ is set.
};

/// Propagates a non-OK Status out of the enclosing function.
#define CLOAKDB_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::cloakdb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace cloakdb

#endif  // CLOAKDB_UTIL_STATUS_H_
