#include "util/time_of_day.h"

#include <cstdio>

namespace cloakdb {

TimeOfDay TimeOfDay::FromSeconds(int64_t seconds) {
  int64_t s = seconds % kSecondsPerDay;
  if (s < 0) s += kSecondsPerDay;
  return TimeOfDay(static_cast<int32_t>(s));
}

Result<TimeOfDay> TimeOfDay::FromHms(int hour, int minute, int second) {
  if (hour < 0 || hour > 23)
    return Status::InvalidArgument("hour must be in [0, 23]");
  if (minute < 0 || minute > 59)
    return Status::InvalidArgument("minute must be in [0, 59]");
  if (second < 0 || second > 59)
    return Status::InvalidArgument("second must be in [0, 59]");
  return TimeOfDay(hour * 3600 + minute * 60 + second);
}

Result<TimeOfDay> TimeOfDay::Parse(const std::string& text) {
  int h = 0, m = 0, s = 0;
  int fields = std::sscanf(text.c_str(), "%d:%d:%d", &h, &m, &s);
  if (fields < 2)
    return Status::InvalidArgument("expected HH:MM or HH:MM:SS, got '" +
                                   text + "'");
  return FromHms(h, m, fields >= 3 ? s : 0);
}

TimeOfDay TimeOfDay::Plus(int64_t delta_seconds) const {
  return FromSeconds(static_cast<int64_t>(seconds_) + delta_seconds);
}

std::string TimeOfDay::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d", hour(), minute(),
                second());
  return buf;
}

bool DailyInterval::Contains(TimeOfDay t) const {
  if (start_ == end_) return true;  // full day
  if (WrapsMidnight()) return !(t < start_) || t < end_;
  return !(t < start_) && t < end_;
}

int32_t DailyInterval::DurationSeconds() const {
  if (start_ == end_) return TimeOfDay::kSecondsPerDay;
  int32_t d = end_.seconds() - start_.seconds();
  if (d < 0) d += TimeOfDay::kSecondsPerDay;
  return d;
}

bool DailyInterval::Overlaps(const DailyInterval& other) const {
  // Sample-free check: intervals overlap iff either contains the other's
  // start (half-open semantics make this exact, including wraps).
  return Contains(other.start()) || other.Contains(start());
}

std::string DailyInterval::ToString() const {
  return "[" + start_.ToString() + ", " + end_.ToString() + ")";
}

}  // namespace cloakdb
