#include "index/rect_grid.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace cloakdb {

RectGrid::RectGrid(const Rect& bounds, uint32_t cells_per_side)
    : bounds_(bounds), cells_per_side_(cells_per_side) {
  assert(!bounds.IsEmpty());
  assert(cells_per_side >= 1);
  cell_w_ = bounds.Width() / cells_per_side_;
  cell_h_ = bounds.Height() / cells_per_side_;
  cells_.resize(static_cast<size_t>(cells_per_side_) * cells_per_side_);
}

RectGrid::CellRange RectGrid::CellsFor(const Rect& rect) const {
  auto clamp_cell = [this](double f) {
    auto c = static_cast<int64_t>(std::floor(f));
    return static_cast<uint32_t>(
        std::clamp<int64_t>(c, 0, cells_per_side_ - 1));
  };
  Rect r = rect.Intersection(bounds_);
  return {clamp_cell((r.min_x - bounds_.min_x) / cell_w_),
          clamp_cell((r.min_y - bounds_.min_y) / cell_h_),
          clamp_cell((r.max_x - bounds_.min_x) / cell_w_),
          clamp_cell((r.max_y - bounds_.min_y) / cell_h_)};
}

void RectGrid::AddToCells(ObjectId id, const Rect& rect) {
  CellRange cr = CellsFor(rect);
  for (uint32_t cy = cr.y0; cy <= cr.y1; ++cy)
    for (uint32_t cx = cr.x0; cx <= cr.x1; ++cx)
      cells_[CellIndex(cx, cy)].push_back(id);
}

void RectGrid::RemoveFromCells(ObjectId id, const Rect& rect) {
  CellRange cr = CellsFor(rect);
  for (uint32_t cy = cr.y0; cy <= cr.y1; ++cy) {
    for (uint32_t cx = cr.x0; cx <= cr.x1; ++cx) {
      auto& bucket = cells_[CellIndex(cx, cy)];
      auto it = std::find(bucket.begin(), bucket.end(), id);
      assert(it != bucket.end());
      *it = bucket.back();
      bucket.pop_back();
    }
  }
}

Status RectGrid::Insert(ObjectId id, const Rect& rect) {
  if (rects_.count(id) > 0)
    return Status::AlreadyExists("rect id already in rect grid");
  if (!rect.Intersects(bounds_))
    return Status::OutOfRange("rect outside indexed space: " +
                              rect.ToString());
  rects_.emplace(id, rect);
  AddToCells(id, rect);
  return Status::OK();
}

Status RectGrid::Remove(ObjectId id) {
  auto it = rects_.find(id);
  if (it == rects_.end())
    return Status::NotFound("rect id not in rect grid");
  RemoveFromCells(id, it->second);
  rects_.erase(it);
  return Status::OK();
}

Status RectGrid::Update(ObjectId id, const Rect& new_rect) {
  auto it = rects_.find(id);
  if (it == rects_.end())
    return Status::NotFound("rect id not in rect grid");
  if (!new_rect.Intersects(bounds_))
    return Status::OutOfRange("rect outside indexed space: " +
                              new_rect.ToString());
  RemoveFromCells(id, it->second);
  it->second = new_rect;
  AddToCells(id, new_rect);
  return Status::OK();
}

Status RectGrid::Upsert(ObjectId id, const Rect& rect) {
  if (rects_.count(id) > 0) return Update(id, rect);
  return Insert(id, rect);
}

Result<Rect> RectGrid::Get(ObjectId id) const {
  auto it = rects_.find(id);
  if (it == rects_.end())
    return Status::NotFound("rect id not in rect grid");
  return it->second;
}

std::vector<RectEntry> RectGrid::IntersectingRects(const Rect& window) const {
  std::vector<RectEntry> out;
  if (!window.Intersects(bounds_)) return out;
  CellRange cr = CellsFor(window);
  std::unordered_set<ObjectId> seen;
  for (uint32_t cy = cr.y0; cy <= cr.y1; ++cy) {
    for (uint32_t cx = cr.x0; cx <= cr.x1; ++cx) {
      for (ObjectId id : cells_[CellIndex(cx, cy)]) {
        const Rect& rect = rects_.at(id);
        if (!rect.Intersects(window)) continue;
        if (!seen.insert(id).second) continue;
        out.push_back({id, rect});
      }
    }
  }
  return out;
}

}  // namespace cloakdb
