#include "index/public_index.h"

#include <algorithm>
#include <limits>
#include <tuple>
#include <unordered_map>
#include <utility>

namespace cloakdb {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Window that matches every entry — used to enumerate a dynamic tree.
Rect EverythingWindow() { return Rect(-kInf, -kInf, kInf, kInf); }

void BumpCounter(obs::Counter* c, uint64_t delta = 1) {
  if (c != nullptr && delta > 0) c->Increment(delta);
}

}  // namespace

const char* PublicIndexModeName(PublicIndexMode mode) {
  switch (mode) {
    case PublicIndexMode::kDynamic:
      return "dynamic";
    case PublicIndexMode::kStatic:
      return "static";
  }
  return "unknown";
}

Result<PublicIndexMode> PublicIndexModeFromName(const std::string& name) {
  if (name == "dynamic") return PublicIndexMode::kDynamic;
  if (name == "static") return PublicIndexMode::kStatic;
  return Status::InvalidArgument("unknown public index mode '" + name +
                                 "' (expected dynamic|static)");
}

Status PublicCategoryIndex::Insert(ObjectId id, const Point& location) {
  if (!is_static()) return dynamic_.Insert(id, location);
  if (sealed_.ContainsId(id) && tombstones_.count(id) == 0) {
    return Status::AlreadyExists("public object id already stored");
  }
  CLOAKDB_RETURN_IF_ERROR(overlay_.Insert(id, location));
  BumpCounter(config_.obs != nullptr ? config_.obs->overlay_inserts_total
                                     : nullptr);
  if (overlay_.size() + tombstones_.size() > config_.overlay_compact_limit) {
    return Compact();
  }
  return Status::OK();
}

Status PublicCategoryIndex::Remove(ObjectId id) {
  if (!is_static()) return dynamic_.Remove(id);
  if (overlay_.Locate(id).ok()) return overlay_.Remove(id);
  if (sealed_.ContainsId(id) && tombstones_.count(id) == 0) {
    tombstones_.insert(id);
    BumpCounter(config_.obs != nullptr ? config_.obs->tombstones_total
                                       : nullptr);
    if (overlay_.size() + tombstones_.size() >
        config_.overlay_compact_limit) {
      return Compact();
    }
    return Status::OK();
  }
  return Status::NotFound("public object id not stored");
}

Status PublicCategoryIndex::BulkLoad(std::vector<PointEntry> entries) {
  if (!is_static()) return dynamic_.BulkLoad(std::move(entries));
  const uint64_t n = entries.size();
  Result<StaticRTree> built = StaticRTree::Build(std::move(entries));
  if (!built.ok()) return built.status();
  sealed_ = std::move(built).value();
  overlay_ = RTree();
  tombstones_.clear();
  ++seal_generation_;
  if (config_.obs != nullptr) {
    BumpCounter(config_.obs->seals_total);
    BumpCounter(config_.obs->sealed_objects_total, n);
  }
  return Status::OK();
}

size_t PublicCategoryIndex::size() const {
  if (!is_static()) return dynamic_.size();
  return sealed_.size() - tombstones_.size() + overlay_.size();
}

Result<Point> PublicCategoryIndex::Locate(ObjectId id) const {
  if (!is_static()) return dynamic_.Locate(id);
  Result<Point> in_overlay = overlay_.Locate(id);
  if (in_overlay.ok()) return in_overlay;
  if (tombstones_.count(id) != 0) {
    return Status::NotFound("object " + std::to_string(id) +
                            " not in static index");
  }
  return sealed_.Locate(id);
}

std::vector<PointEntry> PublicCategoryIndex::RangeSearch(
    const Rect& window) const {
  if (!is_static()) return dynamic_.RangeSearch(window);
  std::vector<PointEntry> out;
  sealed_.RangeSearchInto(window, tombstones_.empty() ? nullptr : &tombstones_,
                          &out);
  std::vector<PointEntry> spill = overlay_.RangeSearch(window);
  out.insert(out.end(), spill.begin(), spill.end());
  std::sort(out.begin(), out.end(),
            [](const PointEntry& a, const PointEntry& b) {
              return a.id < b.id;
            });
  return out;
}

size_t PublicCategoryIndex::RangeCount(const Rect& window) const {
  if (!is_static()) return dynamic_.RangeCount(window);
  return sealed_.RangeCount(window,
                            tombstones_.empty() ? nullptr : &tombstones_) +
         overlay_.RangeCount(window);
}

std::vector<PointEntry> PublicCategoryIndex::KNearest(const Point& from,
                                                      size_t k) const {
  if (!is_static()) return dynamic_.KNearest(from, k);
  std::vector<PointEntry> merged = sealed_.KNearest(
      from, k, tombstones_.empty() ? nullptr : &tombstones_);
  std::vector<PointEntry> spill = overlay_.KNearest(from, k);
  merged.insert(merged.end(), spill.begin(), spill.end());
  std::sort(merged.begin(), merged.end(),
            [&from](const PointEntry& a, const PointEntry& b) {
              return std::make_pair(Distance(from, a.location), a.id) <
                     std::make_pair(Distance(from, b.location), b.id);
            });
  if (merged.size() > k) merged.resize(k);
  return merged;
}

double PublicCategoryIndex::NearestDistance(const Point& from) const {
  if (!is_static()) return dynamic_.NearestDistance(from);
  return std::min(
      sealed_.NearestDistance(from,
                              tombstones_.empty() ? nullptr : &tombstones_),
      overlay_.NearestDistance(from));
}

uint32_t PublicCategoryIndex::Height() const {
  if (!is_static()) return dynamic_.Height();
  return std::max(sealed_.Height(), overlay_.Height());
}

std::vector<PointEntry> PublicCategoryIndex::LiveEntries() const {
  std::vector<PointEntry> out;
  out.reserve(size());
  sealed_.ForEachEntry([this, &out](ObjectId id, const Point& p) {
    if (tombstones_.count(id) == 0) out.push_back({id, p});
  });
  std::vector<PointEntry> spill = overlay_.RangeSearch(EverythingWindow());
  out.insert(out.end(), spill.begin(), spill.end());
  return out;
}

Status PublicCategoryIndex::AdoptSealed(StaticRTree sealed,
                                        const std::vector<PointEntry>& objects) {
  if (!is_static()) {
    return Status::FailedPrecondition(
        "adopt-sealed requires a static-mode index");
  }
  std::unordered_map<ObjectId, Point> want;
  want.reserve(objects.size() * 2);
  for (const PointEntry& e : objects) want.emplace(e.id, e.location);

  std::unordered_set<ObjectId> dead;
  bool mismatch = false;
  sealed.ForEachEntry([&](ObjectId id, const Point& p) {
    auto it = want.find(id);
    if (it == want.end()) {
      dead.insert(id);
    } else if (it->second != p) {
      mismatch = true;
    } else {
      want.erase(it);
    }
  });
  if (mismatch) {
    return Status::Internal(
        "sealed blob disagrees with snapshot on a stored location");
  }

  sealed_ = std::move(sealed);
  overlay_ = RTree();
  tombstones_ = std::move(dead);
  for (const auto& [id, p] : want) {
    CLOAKDB_RETURN_IF_ERROR(overlay_.Insert(id, p));
  }
  ++seal_generation_;
  if (config_.obs != nullptr) {
    BumpCounter(config_.obs->adoptions_total);
    BumpCounter(config_.obs->overlay_inserts_total, want.size());
    BumpCounter(config_.obs->tombstones_total, tombstones_.size());
  }
  return Status::OK();
}

Status PublicCategoryIndex::Compact() {
  if (!is_static()) return Status::OK();
  const uint64_t n_live = size();
  Result<StaticRTree> built = StaticRTree::Build(LiveEntries());
  if (!built.ok()) return built.status();
  sealed_ = std::move(built).value();
  overlay_ = RTree();
  tombstones_.clear();
  ++seal_generation_;
  if (config_.obs != nullptr) {
    BumpCounter(config_.obs->compactions_total);
    BumpCounter(config_.obs->sealed_objects_total, n_live);
  }
  return Status::OK();
}

}  // namespace cloakdb
