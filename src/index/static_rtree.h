// STR bulk-packed static R-tree over point objects (public POIs).
//
// The dynamic quadratic-split RTree (index/rtree.h) earns its keep on
// mutable private data, but public POIs are read-mostly and the pointer
// chasing costs cache misses the workload doesn't need. This tree is the
// osrm-style answer: Sort-Tile-Recursive bulk packing into an *implicit*
// array layout with zero pointers, u32 fixed-point coordinates so a leaf
// entry is 16 bytes and a 64-entry leaf page is exactly 1 KiB (a
// power-of-two multiple of the cache line), and window tests over a whole
// leaf page as branchless unsigned range checks. The entire tree
// serializes as one contiguous CRC-framed blob, so a restarting shard can
// mmap the sidecar file (util/mmap_file.h) and point the node/leaf/exact
// spans straight into the mapping — no allocation, no STR rebuild.
//
// Quantization never changes answers: window endpoints are quantized
// outward (floor for the low edge, the same floor for the high edge, so a
// stored point can pass the coarse test spuriously but never fail it when
// the exact point is inside), and every coarse hit is refined against a
// parallel array of exact double coordinates before it is reported. KNN
// node bounds are dequantized conservatively (one quantum outward, clamped
// to the build frame), keeping MinDist a true lower bound; distances at the
// leaves use the exact coordinates. See docs/INDEXES.md for the error-bound
// argument.

#ifndef CLOAKDB_INDEX_STATIC_RTREE_H_
#define CLOAKDB_INDEX_STATIC_RTREE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "index/grid_index.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace cloakdb {

/// Immutable STR-packed R-tree. Build once (or deserialize), query freely.
class StaticRTree {
 public:
  /// 64 x 16-byte entries = 1024-byte leaf pages (16 cache lines).
  static constexpr uint32_t kLeafCapacity = 64;
  /// Fan-out of the implicit upper levels.
  static constexpr uint32_t kBranching = 64;
  static constexpr uint32_t kLeafPageBytes = 1024;

  /// One leaf slot: id plus fixed-point coordinates. 16 bytes.
  struct LeafEntry {
    ObjectId id;
    uint32_t qx;
    uint32_t qy;
  };
  static_assert(sizeof(LeafEntry) == 16, "leaf entry must stay 16 bytes");

  /// Quantized MBR of one node (leaf page at level 0, kBranching children
  /// above). 16 bytes.
  struct NodeRec {
    uint32_t min_qx;
    uint32_t min_qy;
    uint32_t max_qx;
    uint32_t max_qy;
  };
  static_assert(sizeof(NodeRec) == 16, "node record must stay 16 bytes");

  /// Ids to hide from query results (the facade's tombstone set).
  using IdFilter = std::unordered_set<ObjectId>;

  /// An empty tree (no allocations; all queries return nothing).
  StaticRTree() = default;

  StaticRTree(const StaticRTree&) = delete;
  StaticRTree& operator=(const StaticRTree&) = delete;
  StaticRTree(StaticRTree&&) = default;
  StaticRTree& operator=(StaticRTree&&) = default;

  /// STR-packs `entries` (fails with InvalidArgument on duplicate ids or
  /// non-finite coordinates). The result owns its serialized blob.
  static Result<StaticRTree> Build(std::vector<PointEntry> entries);

  /// The serialized form (a copy when mmap-backed); feed to FromBlob or
  /// FromMapped to reconstruct. Starts with magic "CDBSRT01" and is
  /// CRC-framed; see static_rtree.cc for the layout. Empty string for a
  /// default-constructed tree.
  std::string SerializeBlob() const;

  /// Parses an owned blob (validates magic, geometry, and CRC).
  static Result<StaticRTree> FromBlob(std::string blob);

  /// Points the tree's spans into `[offset, offset+length)` of a mapped
  /// file — zero-copy; the tree keeps the file alive. `offset` must be
  /// 8-byte aligned.
  static Result<StaticRTree> FromMapped(std::shared_ptr<util::MmapFile> file,
                                        size_t offset, size_t length);

  size_t size() const { return count_; }
  /// Levels in the packed tree (1 = a single leaf-page level; 0 = empty).
  uint32_t Height() const { return static_cast<uint32_t>(levels_.size()); }
  /// Exact bounding box of the build set (empty Rect when count == 0).
  const Rect& frame() const { return frame_; }
  /// Serialized footprint in bytes.
  size_t blob_bytes() const { return blob_size_; }
  /// True when the backing bytes live in an mmap'd file.
  bool memory_mapped() const { return mapped_file_ != nullptr; }

  /// Appends all objects inside `window` (exact-refined) to `out`,
  /// in leaf-slot order. `skip` (optional) hides tombstoned ids.
  void RangeSearchInto(const Rect& window, const IdFilter* skip,
                       std::vector<PointEntry>* out) const;

  /// Number of objects inside `window` (exact-refined).
  size_t RangeCount(const Rect& window, const IdFilter* skip) const;

  /// The k nearest objects to `from`, sorted by (distance, id). Exact
  /// distances; deterministic order.
  std::vector<PointEntry> KNearest(const Point& from, size_t k,
                                   const IdFilter* skip) const;

  /// Distance from `from` to its nearest visible object; +inf when none.
  double NearestDistance(const Point& from, const IdFilter* skip) const;

  /// The stored (exact) location of `id`; NotFound when absent.
  Result<Point> Locate(ObjectId id) const;
  bool ContainsId(ObjectId id) const;

  /// Visits every entry (id + exact location) in leaf-slot order —
  /// used by the facade's compaction to re-collect the sealed set.
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (uint64_t slot = 0; slot < count_; ++slot) {
      fn(leaves_[slot].id, ExactLocation(slot));
    }
  }

 private:
  struct Level {
    const NodeRec* nodes = nullptr;
    uint64_t count = 0;
  };

  /// Map id -> leaf slot, sorted by id for binary search. 16 bytes.
  struct IdSlot {
    ObjectId id;
    uint64_t slot;
  };

  Point ExactLocation(uint64_t slot) const {
    return {exact_[2 * slot], exact_[2 * slot + 1]};
  }
  /// Conservative exact-space cover of a quantized node rect.
  Rect DequantRect(const NodeRec& rec) const;
  void ScanLeafPage(uint64_t page, uint32_t lo_qx, uint32_t span_qx,
                    uint32_t lo_qy, uint32_t span_qy, const Rect& window,
                    const IdFilter* skip, std::vector<PointEntry>* out,
                    size_t* count_only) const;

  /// Binds the span pointers into `base[0, size)`; validates everything.
  Status AttachTo(const uint8_t* base, size_t size);

  // Views into the backing bytes (owned_blob_ or mapped_file_).
  uint64_t count_ = 0;
  Rect frame_;                 // exact build frame; empty when count_ == 0
  double inv_scale_x_ = 0.0;   // frame width / kQMax (0 on degenerate axis)
  double inv_scale_y_ = 0.0;
  double scale_x_ = 0.0;       // kQMax / frame width (0 on degenerate axis)
  double scale_y_ = 0.0;
  std::vector<Level> levels_;  // levels_[0] = leaf-page MBRs; back() = root
  const uint8_t* base_ = nullptr;  // start of the serialized blob
  const LeafEntry* leaves_ = nullptr;
  const double* exact_ = nullptr;  // exact coords, 2 per slot, slot order
  const IdSlot* ids_ = nullptr;    // count_ records sorted by id
  uint64_t num_leaf_pages_ = 0;
  size_t blob_size_ = 0;

  std::string owned_blob_;  // non-empty when self-owned
  std::shared_ptr<util::MmapFile> mapped_file_;  // non-null when mapped
};

}  // namespace cloakdb

#endif  // CLOAKDB_INDEX_STATIC_RTREE_H_
