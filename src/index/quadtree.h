// PR (point-region) quadtree over moving point objects.
//
// The data-adaptive space partitioning of paper Fig. 4a: quadrants split
// where users are dense and stay coarse where they are sparse. Every node
// carries its subtree occupancy, so quadtree cloaking is a root-to-leaf walk
// that returns the last quadrant still satisfying the privacy profile.

#ifndef CLOAKDB_INDEX_QUADTREE_H_
#define CLOAKDB_INDEX_QUADTREE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "index/grid_index.h"
#include "util/status.h"

namespace cloakdb {

/// Adaptive quadtree with configurable leaf capacity and maximum depth.
class Quadtree {
 public:
  /// `leaf_capacity` >= 1 points per leaf before splitting; `max_depth`
  /// bounds the tree (crowded leaves at max depth simply overflow).
  Quadtree(const Rect& bounds, size_t leaf_capacity = 16,
           uint32_t max_depth = 20);

  Status Insert(ObjectId id, const Point& location);
  Status Remove(ObjectId id);
  Status Move(ObjectId id, const Point& new_location);

  size_t size() const { return locations_.size(); }
  const Rect& bounds() const { return bounds_; }

  /// Number of objects in `window`.
  size_t CountInRect(const Rect& window) const;

  /// All objects in `window`.
  std::vector<PointEntry> CollectInRect(const Rect& window) const;

  /// Walks from the root toward `p`, reporting the extent and occupancy of
  /// every node on the path (outermost first). This is the exact traversal
  /// quadtree cloaking needs: pick the last entry whose occupancy and area
  /// still satisfy the profile.
  struct PathNode {
    Rect extent;
    size_t count = 0;
    uint32_t depth = 0;
  };
  std::vector<PathNode> DescendPath(const Point& p) const;

  /// Depth of the deepest allocated node (diagnostics).
  uint32_t MaxAllocatedDepth() const;

 private:
  struct Node {
    Rect extent;
    uint32_t depth = 0;
    size_t count = 0;                      // subtree occupancy
    std::vector<PointEntry> points;        // leaf payload
    std::unique_ptr<Node> children[4];     // null on leaves
    bool IsLeaf() const { return children[0] == nullptr; }
  };

  int ChildIndexFor(const Node& node, const Point& p) const;
  Rect ChildExtent(const Node& node, int idx) const;
  void InsertInto(Node* node, const PointEntry& entry);
  void Split(Node* node);
  bool RemoveFrom(Node* node, ObjectId id, const Point& location);
  void MaybeCollapse(Node* node);
  void Collect(const Node* node, const Rect& window,
               std::vector<PointEntry>* out) const;
  size_t Count(const Node* node, const Rect& window) const;
  uint32_t DepthOf(const Node* node) const;

  Rect bounds_;
  size_t leaf_capacity_;
  uint32_t max_depth_;
  std::unique_ptr<Node> root_;
  std::unordered_map<ObjectId, Point> locations_;
};

}  // namespace cloakdb

#endif  // CLOAKDB_INDEX_QUADTREE_H_
