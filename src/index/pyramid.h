// Pyramid: a complete multi-level grid with per-cell occupancy counts.
//
// Level l partitions the space into 2^l x 2^l cells; level 0 is the whole
// space. The paper's Fig. 4b optimization ("keeping fixed multi-level grids")
// is exactly this structure: the multi-level grid cloaking algorithm walks
// the pyramid to pick the smallest aligned cell that satisfies a profile.
// Counts at every level are maintained incrementally on insert/remove/move
// (O(height) per update).

#ifndef CLOAKDB_INDEX_PYRAMID_H_
#define CLOAKDB_INDEX_PYRAMID_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "index/grid_index.h"
#include "util/status.h"

namespace cloakdb {

/// Address of one pyramid cell.
struct PyramidCell {
  uint32_t level = 0;
  uint32_t cx = 0;
  uint32_t cy = 0;

  bool operator==(const PyramidCell& o) const {
    return level == o.level && cx == o.cx && cy == o.cy;
  }
};

/// Multi-level count grid over moving point objects.
class Pyramid {
 public:
  /// Creates a pyramid over `bounds` with levels 0..`height` (height >= 0;
  /// the finest level has 2^height cells per side, capped at 2^11 to bound
  /// the count arrays at ~22 MB).
  Pyramid(const Rect& bounds, uint32_t height);

  Status Insert(ObjectId id, const Point& location);
  Status Remove(ObjectId id);
  Status Move(ObjectId id, const Point& new_location);

  size_t size() const { return locations_.size(); }
  uint32_t height() const { return height_; }
  const Rect& bounds() const { return bounds_; }

  /// Number of objects inside cell (level, cx, cy). Requires a valid cell.
  size_t CellCount(const PyramidCell& cell) const;

  /// Geometric extent of a cell.
  Rect CellRect(const PyramidCell& cell) const;

  /// The cell at `level` containing point `p` (clamped to the grid).
  PyramidCell CellAt(uint32_t level, const Point& p) const;

  /// The parent cell (one level up). Requires cell.level > 0.
  static PyramidCell Parent(const PyramidCell& cell);

  /// The stored location of an id.
  Result<Point> Locate(ObjectId id) const;

 private:
  size_t LevelCells(uint32_t level) const { return 1ULL << level; }
  size_t CellIndex(const PyramidCell& cell) const;
  void Apply(const Point& p, int64_t delta);

  Rect bounds_;
  uint32_t height_;
  // counts_[level] is a flat 2^level x 2^level array.
  std::vector<std::vector<uint32_t>> counts_;
  std::unordered_map<ObjectId, Point> locations_;
};

}  // namespace cloakdb

#endif  // CLOAKDB_INDEX_PYRAMID_H_
