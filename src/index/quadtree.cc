#include "index/quadtree.h"

#include <algorithm>
#include <cassert>

namespace cloakdb {

Quadtree::Quadtree(const Rect& bounds, size_t leaf_capacity,
                   uint32_t max_depth)
    : bounds_(bounds),
      leaf_capacity_(std::max<size_t>(1, leaf_capacity)),
      max_depth_(max_depth) {
  assert(!bounds.IsEmpty());
  root_ = std::make_unique<Node>();
  root_->extent = bounds;
}

int Quadtree::ChildIndexFor(const Node& node, const Point& p) const {
  Point c = node.extent.Center();
  int ix = p.x >= c.x ? 1 : 0;
  int iy = p.y >= c.y ? 1 : 0;
  return iy * 2 + ix;
}

Rect Quadtree::ChildExtent(const Node& node, int idx) const {
  Point c = node.extent.Center();
  const Rect& e = node.extent;
  switch (idx) {
    case 0:
      return {e.min_x, e.min_y, c.x, c.y};
    case 1:
      return {c.x, e.min_y, e.max_x, c.y};
    case 2:
      return {e.min_x, c.y, c.x, e.max_y};
    default:
      return {c.x, c.y, e.max_x, e.max_y};
  }
}

void Quadtree::Split(Node* node) {
  for (int i = 0; i < 4; ++i) {
    node->children[i] = std::make_unique<Node>();
    node->children[i]->extent = ChildExtent(*node, i);
    node->children[i]->depth = node->depth + 1;
  }
  for (const auto& e : node->points) {
    Node* child = node->children[ChildIndexFor(*node, e.location)].get();
    child->points.push_back(e);
    ++child->count;
  }
  node->points.clear();
  node->points.shrink_to_fit();
}

void Quadtree::InsertInto(Node* node, const PointEntry& entry) {
  ++node->count;
  if (node->IsLeaf()) {
    if (node->points.size() < leaf_capacity_ || node->depth >= max_depth_) {
      node->points.push_back(entry);
      return;
    }
    Split(node);
  }
  InsertInto(node->children[ChildIndexFor(*node, entry.location)].get(),
             entry);
}

Status Quadtree::Insert(ObjectId id, const Point& location) {
  if (locations_.count(id) > 0)
    return Status::AlreadyExists("object id already in quadtree");
  if (!bounds_.Contains(location))
    return Status::OutOfRange("location outside quadtree space");
  locations_.emplace(id, location);
  InsertInto(root_.get(), {id, location});
  return Status::OK();
}

bool Quadtree::RemoveFrom(Node* node, ObjectId id, const Point& location) {
  if (node->IsLeaf()) {
    for (size_t i = 0; i < node->points.size(); ++i) {
      if (node->points[i].id == id) {
        node->points[i] = node->points.back();
        node->points.pop_back();
        --node->count;
        return true;
      }
    }
    return false;
  }
  Node* child = node->children[ChildIndexFor(*node, location)].get();
  if (!RemoveFrom(child, id, location)) return false;
  --node->count;
  MaybeCollapse(node);
  return true;
}

void Quadtree::MaybeCollapse(Node* node) {
  if (node->IsLeaf() || node->count > leaf_capacity_) return;
  // Pull all descendants back into this node and become a leaf.
  std::vector<PointEntry> gathered;
  gathered.reserve(node->count);
  Collect(node, node->extent, &gathered);
  for (auto& child : node->children) child.reset();
  node->points = std::move(gathered);
}

Status Quadtree::Remove(ObjectId id) {
  auto it = locations_.find(id);
  if (it == locations_.end())
    return Status::NotFound("object id not in quadtree");
  bool removed = RemoveFrom(root_.get(), id, it->second);
  assert(removed);
  (void)removed;
  locations_.erase(it);
  return Status::OK();
}

Status Quadtree::Move(ObjectId id, const Point& new_location) {
  auto it = locations_.find(id);
  if (it == locations_.end())
    return Status::NotFound("object id not in quadtree");
  if (!bounds_.Contains(new_location))
    return Status::OutOfRange("location outside quadtree space");
  // Delete + reinsert; acceptable because both are O(depth).
  bool removed = RemoveFrom(root_.get(), id, it->second);
  assert(removed);
  (void)removed;
  it->second = new_location;
  InsertInto(root_.get(), {id, new_location});
  return Status::OK();
}

void Quadtree::Collect(const Node* node, const Rect& window,
                       std::vector<PointEntry>* out) const {
  if (!node->extent.Intersects(window) || node->count == 0) return;
  if (node->IsLeaf()) {
    for (const auto& e : node->points)
      if (window.Contains(e.location)) out->push_back(e);
    return;
  }
  for (const auto& child : node->children)
    Collect(child.get(), window, out);
}

size_t Quadtree::Count(const Node* node, const Rect& window) const {
  if (!node->extent.Intersects(window) || node->count == 0) return 0;
  if (window.Contains(node->extent)) return node->count;
  if (node->IsLeaf()) {
    size_t c = 0;
    for (const auto& e : node->points)
      if (window.Contains(e.location)) ++c;
    return c;
  }
  size_t c = 0;
  for (const auto& child : node->children) c += Count(child.get(), window);
  return c;
}

size_t Quadtree::CountInRect(const Rect& window) const {
  return Count(root_.get(), window);
}

std::vector<PointEntry> Quadtree::CollectInRect(const Rect& window) const {
  std::vector<PointEntry> out;
  Collect(root_.get(), window, &out);
  return out;
}

std::vector<Quadtree::PathNode> Quadtree::DescendPath(const Point& p) const {
  std::vector<PathNode> path;
  const Node* node = root_.get();
  while (node != nullptr) {
    path.push_back({node->extent, node->count, node->depth});
    if (node->IsLeaf()) break;
    node = node->children[ChildIndexFor(*node, p)].get();
  }
  return path;
}

uint32_t Quadtree::DepthOf(const Node* node) const {
  if (node->IsLeaf()) return node->depth;
  uint32_t d = node->depth;
  for (const auto& child : node->children)
    d = std::max(d, DepthOf(child.get()));
  return d;
}

uint32_t Quadtree::MaxAllocatedDepth() const { return DepthOf(root_.get()); }

}  // namespace cloakdb
