#include "index/pyramid.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cloakdb {

Pyramid::Pyramid(const Rect& bounds, uint32_t height)
    : bounds_(bounds), height_(std::min(height, 11u)) {
  assert(!bounds.IsEmpty());
  counts_.resize(height_ + 1);
  for (uint32_t l = 0; l <= height_; ++l) {
    size_t n = LevelCells(l);
    counts_[l].assign(n * n, 0);
  }
}

size_t Pyramid::CellIndex(const PyramidCell& cell) const {
  size_t n = LevelCells(cell.level);
  assert(cell.cx < n && cell.cy < n);
  return static_cast<size_t>(cell.cy) * n + cell.cx;
}

PyramidCell Pyramid::CellAt(uint32_t level, const Point& p) const {
  assert(level <= height_);
  size_t n = LevelCells(level);
  double fx = (p.x - bounds_.min_x) / bounds_.Width() * static_cast<double>(n);
  double fy =
      (p.y - bounds_.min_y) / bounds_.Height() * static_cast<double>(n);
  auto cx = static_cast<int64_t>(std::floor(fx));
  auto cy = static_cast<int64_t>(std::floor(fy));
  cx = std::clamp<int64_t>(cx, 0, static_cast<int64_t>(n) - 1);
  cy = std::clamp<int64_t>(cy, 0, static_cast<int64_t>(n) - 1);
  return {level, static_cast<uint32_t>(cx), static_cast<uint32_t>(cy)};
}

PyramidCell Pyramid::Parent(const PyramidCell& cell) {
  assert(cell.level > 0);
  return {cell.level - 1, cell.cx / 2, cell.cy / 2};
}

Rect Pyramid::CellRect(const PyramidCell& cell) const {
  size_t n = LevelCells(cell.level);
  double w = bounds_.Width() / static_cast<double>(n);
  double h = bounds_.Height() / static_cast<double>(n);
  return {bounds_.min_x + cell.cx * w, bounds_.min_y + cell.cy * h,
          bounds_.min_x + (cell.cx + 1) * w, bounds_.min_y + (cell.cy + 1) * h};
}

size_t Pyramid::CellCount(const PyramidCell& cell) const {
  return counts_[cell.level][CellIndex(cell)];
}

void Pyramid::Apply(const Point& p, int64_t delta) {
  for (uint32_t l = 0; l <= height_; ++l) {
    PyramidCell c = CellAt(l, p);
    auto& v = counts_[l][CellIndex(c)];
    assert(delta > 0 || v > 0);
    v = static_cast<uint32_t>(static_cast<int64_t>(v) + delta);
  }
}

Status Pyramid::Insert(ObjectId id, const Point& location) {
  if (locations_.count(id) > 0)
    return Status::AlreadyExists("object id already in pyramid");
  if (!bounds_.Contains(location))
    return Status::OutOfRange("location outside pyramid space");
  locations_.emplace(id, location);
  Apply(location, +1);
  return Status::OK();
}

Status Pyramid::Remove(ObjectId id) {
  auto it = locations_.find(id);
  if (it == locations_.end())
    return Status::NotFound("object id not in pyramid");
  Apply(it->second, -1);
  locations_.erase(it);
  return Status::OK();
}

Status Pyramid::Move(ObjectId id, const Point& new_location) {
  auto it = locations_.find(id);
  if (it == locations_.end())
    return Status::NotFound("object id not in pyramid");
  if (!bounds_.Contains(new_location))
    return Status::OutOfRange("location outside pyramid space");
  // Only touch the levels where the cell actually changes.
  Point old = it->second;
  it->second = new_location;
  for (uint32_t l = 0; l <= height_; ++l) {
    PyramidCell from = CellAt(l, old);
    PyramidCell to = CellAt(l, new_location);
    if (from == to) continue;
    auto& fv = counts_[l][CellIndex(from)];
    assert(fv > 0);
    --fv;
    ++counts_[l][CellIndex(to)];
  }
  return Status::OK();
}

Result<Point> Pyramid::Locate(ObjectId id) const {
  auto it = locations_.find(id);
  if (it == locations_.end())
    return Status::NotFound("object id not in pyramid");
  return it->second;
}

}  // namespace cloakdb
