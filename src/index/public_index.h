// Per-category public-data index facade: dynamic R-tree or sealed
// StaticRTree + spill overlay.
//
// Public POIs are read-mostly, so the service defaults to the packed
// StaticRTree (index/static_rtree.h) per category. But the store's write
// surface (AddPublicObject / RemovePublicObject / MovePublicObject) must
// keep working after a category is sealed, so the static mode is really a
// three-part structure:
//
//   sealed     StaticRTree        immutable bulk of the category
//   overlay    dynamic RTree      objects added (or moved) after sealing
//   tombstones id set             sealed objects since removed/moved
//
// Queries merge sealed (minus tombstones) with the overlay; results are
// deterministic (range results sorted by id, kNN by (distance, id)).
// Compaction folds overlay + tombstones back into a fresh sealed tree —
// triggered inline when the spill grows past `overlay_compact_limit`, and
// by the service's checkpoint path so the serialized sidecar stays close
// to the live set. In dynamic mode everything simply delegates to the
// quadratic-split RTree, which remains the right choice for mutable data
// and is the oracle the twin tests compare against.

#ifndef CLOAKDB_INDEX_PUBLIC_INDEX_H_
#define CLOAKDB_INDEX_PUBLIC_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "index/rtree.h"
#include "index/static_rtree.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace cloakdb {

/// Which structure serves a category's public objects.
enum class PublicIndexMode : uint8_t {
  kDynamic = 0,  ///< quadratic-split RTree only (pre-PR-10 behavior)
  kStatic = 1,   ///< sealed StaticRTree + spill overlay (default in service)
};

/// "dynamic" / "static".
const char* PublicIndexModeName(PublicIndexMode mode);

/// Parses "dynamic" / "static"; InvalidArgument otherwise.
Result<PublicIndexMode> PublicIndexModeFromName(const std::string& name);

/// Counters for the static index lifecycle (service-owned; all optional).
struct StaticIndexObs {
  obs::Counter* seals_total = nullptr;           ///< STR builds (bulk loads)
  obs::Counter* sealed_objects_total = nullptr;  ///< entries across seals
  obs::Counter* overlay_inserts_total = nullptr;
  obs::Counter* tombstones_total = nullptr;
  obs::Counter* compactions_total = nullptr;
  obs::Counter* adoptions_total = nullptr;       ///< mmap'd trees adopted
  obs::Counter* rebuilds_total = nullptr;        ///< adoption fallbacks
};

/// One category's public-data index. Move-only, like RTree.
class PublicCategoryIndex {
 public:
  struct Config {
    PublicIndexMode mode = PublicIndexMode::kDynamic;
    /// Overlay + tombstone count that triggers an inline compaction.
    size_t overlay_compact_limit = 1024;
    /// Optional lifecycle counters (shared across categories).
    const StaticIndexObs* obs = nullptr;
  };

  PublicCategoryIndex() = default;
  explicit PublicCategoryIndex(const Config& config) : config_(config) {}

  PublicCategoryIndex(const PublicCategoryIndex&) = delete;
  PublicCategoryIndex& operator=(const PublicCategoryIndex&) = delete;
  PublicCategoryIndex(PublicCategoryIndex&&) = default;
  PublicCategoryIndex& operator=(PublicCategoryIndex&&) = default;

  // --- Mutation (mirrors RTree's contract) -------------------------------

  /// Fails with AlreadyExists on a duplicate id.
  Status Insert(ObjectId id, const Point& location);

  /// Fails with NotFound when absent.
  Status Remove(ObjectId id);

  /// Replaces the whole content. In static mode this is the seal: one STR
  /// build, overlay and tombstones cleared.
  Status BulkLoad(std::vector<PointEntry> entries);

  // --- Queries (same surface the server code used on RTree) --------------

  size_t size() const;
  Result<Point> Locate(ObjectId id) const;
  /// Sorted by id in static mode; dynamic mode keeps RTree's DFS order.
  std::vector<PointEntry> RangeSearch(const Rect& window) const;
  size_t RangeCount(const Rect& window) const;
  /// Sorted by distance (static mode: by (distance, id), deterministic).
  std::vector<PointEntry> KNearest(const Point& from, size_t k) const;
  double NearestDistance(const Point& from) const;
  uint32_t Height() const;

  // --- Static-mode lifecycle (service/storage layer) ---------------------

  PublicIndexMode mode() const { return config_.mode; }
  bool is_static() const { return config_.mode == PublicIndexMode::kStatic; }
  /// True when a sealed StaticRTree is present (static mode, post-seal).
  bool HasSealedTree() const { return sealed_.size() > 0; }
  size_t overlay_size() const { return overlay_.size(); }
  size_t tombstone_count() const { return tombstones_.size(); }
  /// Bumped on every seal / adoption / compaction.
  uint64_t seal_generation() const { return seal_generation_; }

  /// The sealed tree's blob ("" when none) — what the checkpoint sidecar
  /// stores. Overlay and tombstones are NOT in the blob; recovery
  /// reconciles them from the snapshot via AdoptSealed.
  std::string SerializeSealedBlob() const { return sealed_.SerializeBlob(); }

  /// Adopts a deserialized (usually mmap-backed) sealed tree, verifying it
  /// entry-by-entry against `objects` — the authoritative live set from the
  /// snapshot. Sealed entries missing from `objects` become tombstones;
  /// `objects` entries missing from the sealed tree go to the overlay. Any
  /// id whose stored location disagrees fails with Internal and leaves the
  /// index unchanged (caller falls back to a fresh BulkLoad).
  Status AdoptSealed(StaticRTree sealed,
                     const std::vector<PointEntry>& objects);

  /// True when overlay + tombstones are worth folding back in.
  bool NeedsCompaction() const {
    return is_static() && overlay_.size() + tombstones_.size() > 0;
  }

  /// Rebuilds the sealed tree from the live set; clears overlay/tombstones.
  /// No-op in dynamic mode.
  Status Compact();

 private:
  std::vector<PointEntry> LiveEntries() const;

  Config config_;
  RTree dynamic_;      // the whole category in dynamic mode; else unused
  StaticRTree sealed_;  // static mode only
  RTree overlay_;       // static mode: post-seal inserts
  std::unordered_set<ObjectId> tombstones_;
  uint64_t seal_generation_ = 0;
};

}  // namespace cloakdb

#endif  // CLOAKDB_INDEX_PUBLIC_INDEX_H_
