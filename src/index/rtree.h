// R-tree over point objects (POIs / public data).
//
// The location-based database server stores stationary public objects (gas
// stations, restaurants, ...) in this index. Supports one-by-one insertion
// with quadratic split, deletion with subtree reinsertion, Sort-Tile-
// Recursive (STR) bulk loading, window queries, and best-first k-nearest-
// neighbor search — the primitives behind the paper's Fig. 5 query
// processing.

#ifndef CLOAKDB_INDEX_RTREE_H_
#define CLOAKDB_INDEX_RTREE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "index/grid_index.h"
#include "util/status.h"

namespace cloakdb {

/// R-tree with quadratic split (Guttman) and STR bulk load.
class RTree {
 public:
  /// `max_entries` >= 4 per node; min fill is max/3 (clamped to >= 2).
  explicit RTree(size_t max_entries = 16);

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = default;

  /// Inserts one object. Fails with AlreadyExists on a duplicate id.
  Status Insert(ObjectId id, const Point& location);

  /// Removes an object. Fails with NotFound when absent.
  Status Remove(ObjectId id);

  /// Replaces the whole content with `entries` using STR bulk loading
  /// (fails with InvalidArgument on duplicate ids within `entries`).
  Status BulkLoad(std::vector<PointEntry> entries);

  size_t size() const { return size_; }

  /// The stored location of an id (linear in tree height + leaf scan along
  /// one path; maintained via an id->location side map).
  Result<Point> Locate(ObjectId id) const;

  /// All objects inside `window`.
  std::vector<PointEntry> RangeSearch(const Rect& window) const;

  /// Number of objects inside `window`.
  size_t RangeCount(const Rect& window) const;

  /// The k nearest objects to `from`, sorted by distance (fewer when the
  /// tree is smaller than k).
  std::vector<PointEntry> KNearest(const Point& from, size_t k) const;

  /// Distance from `from` to its nearest object; +inf on an empty tree.
  double NearestDistance(const Point& from) const;

  /// Height of the tree (0 when empty, 1 for a root leaf).
  uint32_t Height() const;

 private:
  struct Node;
  struct Entry {
    Rect mbr;
    ObjectId id = 0;               // valid when child == nullptr (leaf)
    std::unique_ptr<Node> child;   // valid on internal nodes
  };
  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;
    Rect Mbr() const;
  };

  Node* ChooseLeaf(Node* node, const Rect& mbr,
                   std::vector<Node*>* path) const;
  void SplitNode(Node* node, Entry new_entry, std::unique_ptr<Node>* out);
  void InsertEntry(Entry entry, size_t target_level);
  uint32_t LevelOf(const Node* node) const;
  bool RemoveRec(Node* node, ObjectId id, const Rect& mbr,
                 std::vector<Entry>* orphans, uint32_t level);
  std::unique_ptr<Node> BuildStr(std::vector<Entry> entries, bool leaf);

  size_t max_entries_;
  size_t min_entries_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  std::unordered_map<ObjectId, Point> locations_;
};

}  // namespace cloakdb

#endif  // CLOAKDB_INDEX_RTREE_H_
