#include "index/static_rtree.h"

// Blob layout (all little-endian, fixed-width; doubles as IEEE-754 bit
// patterns — the same discipline as storage/codec.h):
//
//   offset 0    char[8]  magic "CDBSRT01"
//   offset 8    u64      count                 (number of entries)
//   offset 16   u32      num_levels            (0 iff count == 0)
//   offset 20   u32      leaf_capacity         (== kLeafCapacity)
//   offset 24   u32      branching             (== kBranching)
//   offset 28   u32      crc32                 (bytes [0,28) ++ [32,total))
//   offset 32   f64[4]   frame fx0, fy0, fx1, fy1
//   offset 64   u64      nodes_offset          (== 128 + 8*num_levels)
//   offset 72   u64      num_nodes_total       (sum of level counts)
//   offset 80   u64      leaves_offset         (1024-aligned)
//   offset 88   u64      num_leaf_pages        (== ceil(count/64))
//   offset 96   u64      exact_offset
//   offset 104  u64      ids_offset
//   offset 112  u64      total_size
//   offset 120  u64      reserved (0)
//   offset 128  u64[num_levels] level_counts   (level 0 = leaf pages first)
//   nodes_offset   NodeRec[num_nodes_total]    (level 0, then 1, ... root)
//   leaves_offset  LeafEntry[num_leaf_pages*64] (tail of last page padded)
//   exact_offset   f64[2*count]                (exact x,y in leaf-slot order)
//   ids_offset     IdSlot[count]               (sorted by id, for Locate)
//
// The leaf section starts on a 1024-byte boundary so leaf pages stay
// page-aligned inside an mmap'd file (file offsets of embedded blobs are
// 4096-aligned by the sidecar writer, storage/index_blob.cc).

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <queue>
#include <tuple>
#include <unordered_set>

#include "geom/distance.h"
#include "storage/codec.h"

namespace cloakdb {

namespace {

constexpr char kMagic[8] = {'C', 'D', 'B', 'S', 'R', 'T', '0', '1'};
constexpr size_t kHeaderBytes = 128;
constexpr double kQMaxD = 4294967295.0;  // 2^32 - 1
constexpr uint32_t kQMax = 0xFFFFFFFFu;

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
double LoadF64(const uint8_t* p) {
  double v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
void StoreU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
void StoreU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
void StoreF64(uint8_t* p, double v) { std::memcpy(p, &v, sizeof(v)); }

/// Floor-quantization with clamping. Monotone in `v`, so quantizing both a
/// stored coordinate and a window edge with the same function preserves
/// interval membership: v in [lo, hi] implies Q(v) in [Q(lo), Q(hi)].
uint32_t Quantize(double v, double origin, double scale) {
  double t = (v - origin) * scale;
  if (!(t > 0.0)) return 0;  // also catches NaN
  if (t >= kQMaxD) return kQMax;
  return static_cast<uint32_t>(t);  // floor, since t > 0
}

uint64_t RoundUp(uint64_t v, uint64_t align) {
  return (v + align - 1) / align * align;
}

uint32_t BlobCrc(const uint8_t* base, size_t total) {
  uint32_t crc = storage::Crc32Update(0, base, 28);
  return storage::Crc32Update(crc, base + 32, total - 32);
}

struct BuildRec {
  uint32_t qx;
  uint32_t qy;
  ObjectId id;
  double x;
  double y;
};

}  // namespace

Result<StaticRTree> StaticRTree::Build(std::vector<PointEntry> entries) {
  const uint64_t n = entries.size();

  std::unordered_set<ObjectId> seen;
  seen.reserve(n * 2);
  Rect frame;
  for (const PointEntry& e : entries) {
    if (!std::isfinite(e.location.x) || !std::isfinite(e.location.y)) {
      return Status::InvalidArgument(
          "static r-tree: non-finite coordinate for object " +
          std::to_string(e.id));
    }
    if (!seen.insert(e.id).second) {
      return Status::InvalidArgument("static r-tree: duplicate id " +
                                     std::to_string(e.id));
    }
    frame = frame.Union(e.location);
  }

  const double width_x = n > 0 ? frame.max_x - frame.min_x : 0.0;
  const double width_y = n > 0 ? frame.max_y - frame.min_y : 0.0;
  const double scale_x = width_x > 0.0 ? kQMaxD / width_x : 0.0;
  const double scale_y = width_y > 0.0 ? kQMaxD / width_y : 0.0;

  std::vector<BuildRec> recs;
  recs.reserve(n);
  for (const PointEntry& e : entries) {
    recs.push_back({Quantize(e.location.x, frame.min_x, scale_x),
                    Quantize(e.location.y, frame.min_y, scale_y), e.id,
                    e.location.x, e.location.y});
  }

  // STR packing: sort by x into vertical slices of ceil(sqrt(P)) pages,
  // then by y within each slice. Pages are then consecutive 64-entry runs
  // of this order (only the globally last page is partial, which keeps the
  // slot <-> exact-array mapping dense).
  const uint64_t num_pages = (n + kLeafCapacity - 1) / kLeafCapacity;
  std::sort(recs.begin(), recs.end(), [](const BuildRec& a, const BuildRec& b) {
    return std::tie(a.x, a.y, a.id) < std::tie(b.x, b.y, b.id);
  });
  if (num_pages > 1) {
    const uint64_t slices = static_cast<uint64_t>(
        std::ceil(std::sqrt(static_cast<double>(num_pages))));
    const uint64_t slice_entries = slices * kLeafCapacity;
    for (uint64_t begin = 0; begin < n; begin += slice_entries) {
      const uint64_t end = std::min(n, begin + slice_entries);
      std::sort(recs.begin() + begin, recs.begin() + end,
                [](const BuildRec& a, const BuildRec& b) {
                  return std::tie(a.y, a.x, a.id) < std::tie(b.y, b.x, b.id);
                });
    }
  }

  // Implicit level geometry.
  std::vector<uint64_t> level_counts;
  if (n > 0) {
    uint64_t c = num_pages;
    level_counts.push_back(c);
    while (c > 1) {
      c = (c + kBranching - 1) / kBranching;
      level_counts.push_back(c);
    }
  }
  uint64_t num_nodes_total = 0;
  for (uint64_t c : level_counts) num_nodes_total += c;

  const uint64_t num_levels = level_counts.size();
  const uint64_t nodes_offset = kHeaderBytes + 8 * num_levels;
  const uint64_t leaves_offset =
      RoundUp(nodes_offset + num_nodes_total * sizeof(NodeRec), kLeafPageBytes);
  const uint64_t exact_offset = leaves_offset + num_pages * kLeafPageBytes;
  const uint64_t ids_offset = exact_offset + n * 2 * sizeof(double);
  const uint64_t total = ids_offset + n * sizeof(IdSlot);

  std::string blob(total, '\0');
  uint8_t* base = reinterpret_cast<uint8_t*>(&blob[0]);

  std::memcpy(base, kMagic, 8);
  StoreU64(base + 8, n);
  StoreU32(base + 16, static_cast<uint32_t>(num_levels));
  StoreU32(base + 20, kLeafCapacity);
  StoreU32(base + 24, kBranching);
  StoreF64(base + 32, n > 0 ? frame.min_x : 0.0);
  StoreF64(base + 40, n > 0 ? frame.min_y : 0.0);
  StoreF64(base + 48, n > 0 ? frame.max_x : 0.0);
  StoreF64(base + 56, n > 0 ? frame.max_y : 0.0);
  StoreU64(base + 64, nodes_offset);
  StoreU64(base + 72, num_nodes_total);
  StoreU64(base + 80, leaves_offset);
  StoreU64(base + 88, num_pages);
  StoreU64(base + 96, exact_offset);
  StoreU64(base + 104, ids_offset);
  StoreU64(base + 112, total);
  for (uint64_t l = 0; l < num_levels; ++l) {
    StoreU64(base + kHeaderBytes + 8 * l, level_counts[l]);
  }

  // Leaves + exact coordinates (slot order). The tail of the last page is
  // left zeroed; scans never read past `count`.
  uint8_t* leaf_bytes = base + leaves_offset;
  uint8_t* exact_bytes = base + exact_offset;
  for (uint64_t slot = 0; slot < n; ++slot) {
    const BuildRec& r = recs[slot];
    uint8_t* e = leaf_bytes + slot * sizeof(LeafEntry);
    StoreU64(e, r.id);
    StoreU32(e + 8, r.qx);
    StoreU32(e + 12, r.qy);
    StoreF64(exact_bytes + slot * 16, r.x);
    StoreF64(exact_bytes + slot * 16 + 8, r.y);
  }

  // Level 0: per-page quantized MBRs. Upper levels: MBRs over kBranching
  // children from the level below.
  uint8_t* node_bytes = base + nodes_offset;
  uint64_t node_cursor = 0;
  for (uint64_t p = 0; p < num_pages; ++p) {
    const uint64_t begin = p * kLeafCapacity;
    const uint64_t end = std::min(n, begin + kLeafCapacity);
    NodeRec rec{kQMax, kQMax, 0, 0};
    for (uint64_t s = begin; s < end; ++s) {
      rec.min_qx = std::min(rec.min_qx, recs[s].qx);
      rec.min_qy = std::min(rec.min_qy, recs[s].qy);
      rec.max_qx = std::max(rec.max_qx, recs[s].qx);
      rec.max_qy = std::max(rec.max_qy, recs[s].qy);
    }
    std::memcpy(node_bytes + (node_cursor + p) * sizeof(NodeRec), &rec,
                sizeof(rec));
  }
  for (uint64_t l = 1; l < num_levels; ++l) {
    const uint64_t child_base = node_cursor;
    const uint64_t child_count = level_counts[l - 1];
    node_cursor += child_count;
    for (uint64_t j = 0; j < level_counts[l]; ++j) {
      const uint64_t begin = j * kBranching;
      const uint64_t end = std::min(child_count, begin + kBranching);
      NodeRec rec{kQMax, kQMax, 0, 0};
      for (uint64_t c = begin; c < end; ++c) {
        NodeRec child;
        std::memcpy(&child, node_bytes + (child_base + c) * sizeof(NodeRec),
                    sizeof(child));
        rec.min_qx = std::min(rec.min_qx, child.min_qx);
        rec.min_qy = std::min(rec.min_qy, child.min_qy);
        rec.max_qx = std::max(rec.max_qx, child.max_qx);
        rec.max_qy = std::max(rec.max_qy, child.max_qy);
      }
      std::memcpy(node_bytes + (node_cursor + j) * sizeof(NodeRec), &rec,
                  sizeof(rec));
    }
  }

  // Id directory for Locate/ContainsId.
  std::vector<IdSlot> ids(n);
  for (uint64_t slot = 0; slot < n; ++slot) ids[slot] = {recs[slot].id, slot};
  std::sort(ids.begin(), ids.end(),
            [](const IdSlot& a, const IdSlot& b) { return a.id < b.id; });
  uint8_t* id_bytes = base + ids_offset;
  for (uint64_t i = 0; i < n; ++i) {
    StoreU64(id_bytes + i * sizeof(IdSlot), ids[i].id);
    StoreU64(id_bytes + i * sizeof(IdSlot) + 8, ids[i].slot);
  }

  StoreU32(base + 28, BlobCrc(base, total));
  return FromBlob(std::move(blob));
}

Result<StaticRTree> StaticRTree::FromBlob(std::string blob) {
  StaticRTree tree;
  tree.owned_blob_ = std::move(blob);
  Status st =
      tree.AttachTo(reinterpret_cast<const uint8_t*>(tree.owned_blob_.data()),
                    tree.owned_blob_.size());
  if (!st.ok()) return st;
  return Result<StaticRTree>(std::move(tree));
}

Result<StaticRTree> StaticRTree::FromMapped(
    std::shared_ptr<util::MmapFile> file, size_t offset, size_t length) {
  if (file == nullptr) return Status::InvalidArgument("null mapped file");
  if (offset % 8 != 0) {
    return Status::InvalidArgument("static r-tree blob offset not 8-aligned");
  }
  if (offset > file->size() || length > file->size() - offset) {
    return Status::Internal("static r-tree blob extends past end of " +
                              file->path());
  }
  StaticRTree tree;
  Status st = tree.AttachTo(file->data() + offset, length);
  if (!st.ok()) return st;
  tree.mapped_file_ = std::move(file);
  return Result<StaticRTree>(std::move(tree));
}

Status StaticRTree::AttachTo(const uint8_t* base, size_t size) {
  if (size < kHeaderBytes) {
    return Status::Internal("static r-tree blob too short");
  }
  if (std::memcmp(base, kMagic, 8) != 0) {
    return Status::Internal("static r-tree blob: bad magic");
  }
  const uint64_t count = LoadU64(base + 8);
  const uint32_t num_levels = LoadU32(base + 16);
  if (LoadU32(base + 20) != kLeafCapacity || LoadU32(base + 24) != kBranching) {
    return Status::Internal("static r-tree blob: geometry mismatch");
  }
  const uint64_t nodes_offset = LoadU64(base + 64);
  const uint64_t num_nodes_total = LoadU64(base + 72);
  const uint64_t leaves_offset = LoadU64(base + 80);
  const uint64_t num_pages = LoadU64(base + 88);
  const uint64_t exact_offset = LoadU64(base + 96);
  const uint64_t ids_offset = LoadU64(base + 104);
  const uint64_t total = LoadU64(base + 112);

  // Recompute the whole section layout from (count, num_levels) and insist
  // the header agrees — cheaper to reason about than bounds-checking each
  // field independently, and it rejects any overlapping-section corruption.
  if (count > (uint64_t{1} << 40)) {
    return Status::Internal("static r-tree blob: implausible count");
  }
  if ((count == 0) != (num_levels == 0)) {
    return Status::Internal("static r-tree blob: count/levels disagree");
  }
  std::vector<uint64_t> level_counts(num_levels);
  uint64_t nodes_sum = 0;
  for (uint32_t l = 0; l < num_levels; ++l) {
    if (kHeaderBytes + 8 * (l + 1) > size) {
      return Status::Internal("static r-tree blob: truncated level table");
    }
    level_counts[l] = LoadU64(base + kHeaderBytes + 8 * l);
    nodes_sum += level_counts[l];
  }
  const uint64_t want_pages = (count + kLeafCapacity - 1) / kLeafCapacity;
  if (num_levels > 0) {
    if (level_counts[0] != want_pages ||
        level_counts[num_levels - 1] != 1) {
      return Status::Internal("static r-tree blob: bad level geometry");
    }
    for (uint32_t l = 1; l < num_levels; ++l) {
      if (level_counts[l] !=
          (level_counts[l - 1] + kBranching - 1) / kBranching) {
        return Status::Internal("static r-tree blob: bad level geometry");
      }
    }
  }
  const uint64_t want_nodes_offset = kHeaderBytes + 8 * uint64_t{num_levels};
  const uint64_t want_leaves_offset = RoundUp(
      want_nodes_offset + nodes_sum * sizeof(NodeRec), kLeafPageBytes);
  const uint64_t want_exact_offset =
      want_leaves_offset + want_pages * kLeafPageBytes;
  const uint64_t want_ids_offset = want_exact_offset + count * 16;
  const uint64_t want_total = want_ids_offset + count * sizeof(IdSlot);
  if (nodes_offset != want_nodes_offset || num_nodes_total != nodes_sum ||
      leaves_offset != want_leaves_offset || num_pages != want_pages ||
      exact_offset != want_exact_offset || ids_offset != want_ids_offset ||
      total != want_total || total != size) {
    return Status::Internal("static r-tree blob: section layout mismatch");
  }
  if (BlobCrc(base, size) != LoadU32(base + 28)) {
    return Status::Internal("static r-tree blob: checksum mismatch");
  }

  const double fx0 = LoadF64(base + 32);
  const double fy0 = LoadF64(base + 40);
  const double fx1 = LoadF64(base + 48);
  const double fy1 = LoadF64(base + 56);
  if (count > 0) {
    if (!std::isfinite(fx0) || !std::isfinite(fy0) || !std::isfinite(fx1) ||
        !std::isfinite(fy1) || fx0 > fx1 || fy0 > fy1) {
      return Status::Internal("static r-tree blob: bad frame");
    }
    frame_ = Rect(fx0, fy0, fx1, fy1);
  } else {
    frame_ = Rect();
  }

  count_ = count;
  num_leaf_pages_ = num_pages;
  const double width_x = count > 0 ? fx1 - fx0 : 0.0;
  const double width_y = count > 0 ? fy1 - fy0 : 0.0;
  scale_x_ = width_x > 0.0 ? kQMaxD / width_x : 0.0;
  scale_y_ = width_y > 0.0 ? kQMaxD / width_y : 0.0;
  inv_scale_x_ = width_x > 0.0 ? width_x / kQMaxD : 0.0;
  inv_scale_y_ = width_y > 0.0 ? width_y / kQMaxD : 0.0;

  levels_.clear();
  const NodeRec* nodes = reinterpret_cast<const NodeRec*>(base + nodes_offset);
  uint64_t cursor = 0;
  for (uint32_t l = 0; l < num_levels; ++l) {
    levels_.push_back({nodes + cursor, level_counts[l]});
    cursor += level_counts[l];
  }
  base_ = base;
  blob_size_ = size;
  leaves_ = reinterpret_cast<const LeafEntry*>(base + leaves_offset);
  exact_ = reinterpret_cast<const double*>(base + exact_offset);
  ids_ = reinterpret_cast<const IdSlot*>(base + ids_offset);

  // The id directory must be strictly ascending with in-range slots for the
  // binary searches below to be sound.
  for (uint64_t i = 0; i < count_; ++i) {
    if (ids_[i].slot >= count_ ||
        (i > 0 && ids_[i].id <= ids_[i - 1].id)) {
      return Status::Internal("static r-tree blob: bad id directory");
    }
  }
  return Status::OK();
}

std::string StaticRTree::SerializeBlob() const {
  if (base_ == nullptr) return std::string();
  return std::string(reinterpret_cast<const char*>(base_), blob_size_);
}

Rect StaticRTree::DequantRect(const NodeRec& rec) const {
  // One full quantum of slack on each side keeps this a true cover of every
  // exact point under the node despite floor rounding; clamping to the
  // frame (which contains all exact points by construction) tightens it
  // back without losing the cover property.
  const double lo_x = std::max(
      frame_.min_x,
      frame_.min_x + (static_cast<double>(rec.min_qx) - 1.0) * inv_scale_x_);
  const double hi_x = std::min(
      frame_.max_x,
      frame_.min_x + (static_cast<double>(rec.max_qx) + 2.0) * inv_scale_x_);
  const double lo_y = std::max(
      frame_.min_y,
      frame_.min_y + (static_cast<double>(rec.min_qy) - 1.0) * inv_scale_y_);
  const double hi_y = std::min(
      frame_.max_y,
      frame_.min_y + (static_cast<double>(rec.max_qy) + 2.0) * inv_scale_y_);
  return Rect(lo_x, lo_y, hi_x, hi_y);
}

void StaticRTree::ScanLeafPage(uint64_t page, uint32_t lo_qx, uint32_t span_qx,
                               uint32_t lo_qy, uint32_t span_qy,
                               const Rect& window, const IdFilter* skip,
                               std::vector<PointEntry>* out,
                               size_t* count_only) const {
  const LeafEntry* entries = leaves_ + page * kLeafCapacity;
  const uint64_t first_slot = page * kLeafCapacity;
  const uint64_t in_page = std::min<uint64_t>(kLeafCapacity, count_ - first_slot);
  for (uint64_t i = 0; i < in_page; ++i) {
    // Branchless coarse window test over the fixed-point coordinates: the
    // unsigned subtraction wraps below-range values far above the span.
    const uint32_t okx =
        static_cast<uint32_t>(entries[i].qx - lo_qx) <= span_qx;
    const uint32_t oky =
        static_cast<uint32_t>(entries[i].qy - lo_qy) <= span_qy;
    if (okx & oky) {
      const Point p = ExactLocation(first_slot + i);
      if (!window.Contains(p)) continue;  // exact refine kills coarse hits
      if (skip != nullptr && skip->count(entries[i].id) != 0) continue;
      if (out != nullptr) {
        out->push_back({entries[i].id, p});
      } else {
        ++*count_only;
      }
    }
  }
}

void StaticRTree::RangeSearchInto(const Rect& window, const IdFilter* skip,
                                  std::vector<PointEntry>* out) const {
  if (count_ == 0 || window.IsEmpty() || !window.Intersects(frame_)) return;
  const uint32_t lo_qx = Quantize(window.min_x, frame_.min_x, scale_x_);
  const uint32_t hi_qx = Quantize(window.max_x, frame_.min_x, scale_x_);
  const uint32_t lo_qy = Quantize(window.min_y, frame_.min_y, scale_y_);
  const uint32_t hi_qy = Quantize(window.max_y, frame_.min_y, scale_y_);
  const uint32_t span_qx = hi_qx - lo_qx;
  const uint32_t span_qy = hi_qy - lo_qy;

  struct Frame {
    uint32_t level;
    uint64_t idx;
  };
  std::vector<Frame> stack;
  stack.push_back({static_cast<uint32_t>(levels_.size() - 1), 0});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const NodeRec& rec = levels_[f.level].nodes[f.idx];
    if (rec.min_qx > hi_qx || rec.max_qx < lo_qx || rec.min_qy > hi_qy ||
        rec.max_qy < lo_qy) {
      continue;
    }
    if (f.level == 0) {
      ScanLeafPage(f.idx, lo_qx, span_qx, lo_qy, span_qy, window, skip, out,
                   nullptr);
      continue;
    }
    const uint64_t begin = f.idx * kBranching;
    const uint64_t end =
        std::min(levels_[f.level - 1].count, begin + kBranching);
    for (uint64_t c = end; c > begin; --c) {  // pop order = ascending
      stack.push_back({f.level - 1, c - 1});
    }
  }
}

size_t StaticRTree::RangeCount(const Rect& window, const IdFilter* skip) const {
  if (count_ == 0 || window.IsEmpty() || !window.Intersects(frame_)) return 0;
  const uint32_t lo_qx = Quantize(window.min_x, frame_.min_x, scale_x_);
  const uint32_t hi_qx = Quantize(window.max_x, frame_.min_x, scale_x_);
  const uint32_t lo_qy = Quantize(window.min_y, frame_.min_y, scale_y_);
  const uint32_t hi_qy = Quantize(window.max_y, frame_.min_y, scale_y_);
  size_t total = 0;

  struct Frame {
    uint32_t level;
    uint64_t idx;
  };
  std::vector<Frame> stack;
  stack.push_back({static_cast<uint32_t>(levels_.size() - 1), 0});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const NodeRec& rec = levels_[f.level].nodes[f.idx];
    if (rec.min_qx > hi_qx || rec.max_qx < lo_qx || rec.min_qy > hi_qy ||
        rec.max_qy < lo_qy) {
      continue;
    }
    if (f.level == 0) {
      ScanLeafPage(f.idx, lo_qx, hi_qx - lo_qx, lo_qy, hi_qy - lo_qy, window,
                   skip, nullptr, &total);
      continue;
    }
    const uint64_t begin = f.idx * kBranching;
    const uint64_t end =
        std::min(levels_[f.level - 1].count, begin + kBranching);
    for (uint64_t c = begin; c < end; ++c) stack.push_back({f.level - 1, c});
  }
  return total;
}

std::vector<PointEntry> StaticRTree::KNearest(const Point& from, size_t k,
                                              const IdFilter* skip) const {
  std::vector<PointEntry> out;
  if (count_ == 0 || k == 0) return out;
  out.reserve(std::min<uint64_t>(k, count_));

  // Bounded best-first search: a nodes-only min-PQ drives expansion while
  // the best k entries so far live in a max-heap keyed by (distance, id).
  // A node is expanded only while its MinDist could still improve the
  // k-th best (non-strict at ties, so an equal-distance entry with a
  // smaller id is never missed); entries never enter the node PQ. The
  // result is the k smallest (distance, id) pairs — identical to popping
  // a combined heap, with a fraction of the heap traffic.
  struct NodeItem {
    double dist;
    uint32_t level;
    uint64_t idx;
  };
  struct NodeCmp {
    bool operator()(const NodeItem& a, const NodeItem& b) const {
      return a.dist > b.dist;
    }
  };
  struct Best {
    double dist;
    ObjectId id;
    uint64_t slot;
    bool operator<(const Best& other) const {  // max-heap: worst on top
      return std::tie(dist, id) < std::tie(other.dist, other.id);
    }
  };
  std::priority_queue<NodeItem, std::vector<NodeItem>, NodeCmp> heap;
  std::vector<Best> best;  // heap via std::push_heap/pop_heap, size <= k
  best.reserve(std::min<uint64_t>(k, count_));
  const auto worst_dist = [&] {
    return best.size() < k ? std::numeric_limits<double>::infinity()
                           : best.front().dist;
  };
  const uint32_t root_level = static_cast<uint32_t>(levels_.size() - 1);
  heap.push({MinDist(from, DequantRect(levels_[root_level].nodes[0])),
             root_level, 0});
  while (!heap.empty()) {
    const NodeItem item = heap.top();
    heap.pop();
    if (item.dist > worst_dist()) break;  // nothing nearer remains
    if (item.level == 0) {
      const uint64_t first_slot = item.idx * kLeafCapacity;
      const uint64_t in_page =
          std::min<uint64_t>(kLeafCapacity, count_ - first_slot);
      const LeafEntry* entries = leaves_ + first_slot;
      for (uint64_t i = 0; i < in_page; ++i) {
        if (skip != nullptr && skip->count(entries[i].id) != 0) continue;
        const uint64_t slot = first_slot + i;
        const Best candidate{Distance(from, ExactLocation(slot)),
                             entries[i].id, slot};
        if (best.size() < k) {
          best.push_back(candidate);
          std::push_heap(best.begin(), best.end());
        } else if (candidate < best.front()) {
          std::pop_heap(best.begin(), best.end());
          best.back() = candidate;
          std::push_heap(best.begin(), best.end());
        }
      }
      continue;
    }
    const uint64_t begin = item.idx * kBranching;
    const uint64_t end =
        std::min(levels_[item.level - 1].count, begin + kBranching);
    const double bound = worst_dist();
    for (uint64_t c = begin; c < end; ++c) {
      const double d =
          MinDist(from, DequantRect(levels_[item.level - 1].nodes[c]));
      if (d <= bound) heap.push({d, item.level - 1, c});
    }
  }
  std::sort(best.begin(), best.end());
  for (const Best& b : best) out.push_back({b.id, ExactLocation(b.slot)});
  return out;
}

double StaticRTree::NearestDistance(const Point& from,
                                    const IdFilter* skip) const {
  std::vector<PointEntry> nearest = KNearest(from, 1, skip);
  if (nearest.empty()) return std::numeric_limits<double>::infinity();
  return Distance(from, nearest[0].location);
}

Result<Point> StaticRTree::Locate(ObjectId id) const {
  const IdSlot* end = ids_ + count_;
  const IdSlot* it = std::lower_bound(
      ids_, end, id, [](const IdSlot& s, ObjectId v) { return s.id < v; });
  if (it == end || it->id != id) {
    return Status::NotFound("object " + std::to_string(id) +
                            " not in static index");
  }
  return ExactLocation(it->slot);
}

bool StaticRTree::ContainsId(ObjectId id) const {
  const IdSlot* end = ids_ + count_;
  const IdSlot* it = std::lower_bound(
      ids_, end, id, [](const IdSlot& s, ObjectId v) { return s.id < v; });
  return it != end && it->id == id;
}

}  // namespace cloakdb
