#include "index/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>

#include "geom/distance.h"

namespace cloakdb {

Rect RTree::Node::Mbr() const {
  Rect r;
  for (const auto& e : entries) r = r.Union(e.mbr);
  return r;
}

RTree::RTree(size_t max_entries)
    : max_entries_(std::max<size_t>(4, max_entries)) {
  min_entries_ = std::max<size_t>(2, max_entries_ / 3);
  root_ = std::make_unique<Node>();
}

uint32_t RTree::LevelOf(const Node* node) const {
  uint32_t level = 0;
  while (!node->leaf) {
    node = node->entries.front().child.get();
    ++level;
  }
  return level;
}

uint32_t RTree::Height() const {
  if (size_ == 0) return 0;
  return LevelOf(root_.get()) + 1;
}

RTree::Node* RTree::ChooseLeaf(Node* node, const Rect& mbr,
                               std::vector<Node*>* path) const {
  path->push_back(node);
  while (!node->leaf) {
    Entry* best = nullptr;
    double best_enlarge = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (auto& e : node->entries) {
      double area = e.mbr.Area();
      double enlarged = e.mbr.Union(mbr).Area() - area;
      if (enlarged < best_enlarge ||
          (enlarged == best_enlarge && area < best_area)) {
        best = &e;
        best_enlarge = enlarged;
        best_area = area;
      }
    }
    node = best->child.get();
    path->push_back(node);
  }
  return node;
}

// Guttman quadratic split of node->entries + new_entry into node and *out.
void RTree::SplitNode(Node* node, Entry new_entry,
                      std::unique_ptr<Node>* out) {
  std::vector<Entry> all = std::move(node->entries);
  all.push_back(std::move(new_entry));
  node->entries.clear();

  *out = std::make_unique<Node>();
  (*out)->leaf = node->leaf;

  // Pick seeds: the pair wasting the most area if grouped together.
  size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      double waste = all[i].mbr.Union(all[j].mbr).Area() -
                     all[i].mbr.Area() - all[j].mbr.Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  Rect mbr_a = all[seed_a].mbr;
  Rect mbr_b = all[seed_b].mbr;
  std::vector<bool> assigned(all.size(), false);
  node->entries.push_back(std::move(all[seed_a]));
  (*out)->entries.push_back(std::move(all[seed_b]));
  assigned[seed_a] = assigned[seed_b] = true;
  size_t remaining = all.size() - 2;

  while (remaining > 0) {
    // Force-assign when one group must take all the rest to reach min fill.
    if (node->entries.size() + remaining == min_entries_) {
      for (size_t i = 0; i < all.size(); ++i) {
        if (!assigned[i]) {
          mbr_a = mbr_a.Union(all[i].mbr);
          node->entries.push_back(std::move(all[i]));
          assigned[i] = true;
        }
      }
      break;
    }
    if ((*out)->entries.size() + remaining == min_entries_) {
      for (size_t i = 0; i < all.size(); ++i) {
        if (!assigned[i]) {
          mbr_b = mbr_b.Union(all[i].mbr);
          (*out)->entries.push_back(std::move(all[i]));
          assigned[i] = true;
        }
      }
      break;
    }
    // PickNext: the entry with the largest preference gap between groups.
    size_t pick = 0;
    double best_gap = -1.0;
    double d_a_pick = 0.0, d_b_pick = 0.0;
    for (size_t i = 0; i < all.size(); ++i) {
      if (assigned[i]) continue;
      double da = mbr_a.Union(all[i].mbr).Area() - mbr_a.Area();
      double db = mbr_b.Union(all[i].mbr).Area() - mbr_b.Area();
      double gap = std::abs(da - db);
      if (gap > best_gap) {
        best_gap = gap;
        pick = i;
        d_a_pick = da;
        d_b_pick = db;
      }
    }
    bool to_a = d_a_pick < d_b_pick ||
                (d_a_pick == d_b_pick &&
                 node->entries.size() <= (*out)->entries.size());
    if (to_a) {
      mbr_a = mbr_a.Union(all[pick].mbr);
      node->entries.push_back(std::move(all[pick]));
    } else {
      mbr_b = mbr_b.Union(all[pick].mbr);
      (*out)->entries.push_back(std::move(all[pick]));
    }
    assigned[pick] = true;
    --remaining;
  }
}

void RTree::InsertEntry(Entry entry, size_t target_level) {
  // Descend to the node at target_level (0 = leaf level).
  std::vector<Node*> path;
  Node* node = root_.get();
  path.push_back(node);
  while (LevelOf(node) != target_level) {
    Entry* best = nullptr;
    double best_enlarge = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (auto& e : node->entries) {
      double area = e.mbr.Area();
      double enlarged = e.mbr.Union(entry.mbr).Area() - area;
      if (enlarged < best_enlarge ||
          (enlarged == best_enlarge && area < best_area)) {
        best = &e;
        best_enlarge = enlarged;
        best_area = area;
      }
    }
    node = best->child.get();
    path.push_back(node);
  }

  // Insert, splitting upward as needed.
  std::unique_ptr<Node> carry;  // new sibling produced by a split
  if (node->entries.size() < max_entries_) {
    node->entries.push_back(std::move(entry));
  } else {
    SplitNode(node, std::move(entry), &carry);
  }

  for (size_t i = path.size(); i-- > 1;) {
    Node* parent = path[i - 1];
    Node* child = path[i];
    // Refresh the parent entry's MBR for child.
    for (auto& e : parent->entries) {
      if (e.child.get() == child) {
        e.mbr = child->Mbr();
        break;
      }
    }
    if (carry) {
      Entry up;
      up.mbr = carry->Mbr();
      up.child = std::move(carry);
      if (parent->entries.size() < max_entries_) {
        parent->entries.push_back(std::move(up));
        carry.reset();
      } else {
        SplitNode(parent, std::move(up), &carry);
      }
    }
  }

  if (carry) {
    // Root split: grow the tree by one level.
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    Entry left;
    left.mbr = root_->Mbr();
    left.child = std::move(root_);
    Entry right;
    right.mbr = carry->Mbr();
    right.child = std::move(carry);
    new_root->entries.push_back(std::move(left));
    new_root->entries.push_back(std::move(right));
    root_ = std::move(new_root);
  }
}

Status RTree::Insert(ObjectId id, const Point& location) {
  if (locations_.count(id) > 0)
    return Status::AlreadyExists("object id already in rtree");
  Entry e;
  e.mbr = Rect::FromPoint(location);
  e.id = id;
  InsertEntry(std::move(e), 0);
  locations_.emplace(id, location);
  ++size_;
  return Status::OK();
}

bool RTree::RemoveRec(Node* node, ObjectId id, const Rect& mbr,
                      std::vector<Entry>* orphans, uint32_t level) {
  if (node->leaf) {
    for (size_t i = 0; i < node->entries.size(); ++i) {
      if (node->entries[i].id == id) {
        node->entries.erase(node->entries.begin() + i);
        return true;
      }
    }
    return false;
  }
  for (size_t i = 0; i < node->entries.size(); ++i) {
    auto& e = node->entries[i];
    if (!e.mbr.Intersects(mbr)) continue;
    if (RemoveRec(e.child.get(), id, mbr, orphans, level + 1)) {
      if (e.child->entries.size() < min_entries_) {
        // Condense: orphan the underfull child's entries for reinsertion.
        for (auto& oe : e.child->entries) orphans->push_back(std::move(oe));
        node->entries.erase(node->entries.begin() + i);
      } else {
        e.mbr = e.child->Mbr();
      }
      return true;
    }
  }
  return false;
}

Status RTree::Remove(ObjectId id) {
  auto it = locations_.find(id);
  if (it == locations_.end())
    return Status::NotFound("object id not in rtree");
  Rect mbr = Rect::FromPoint(it->second);
  std::vector<Entry> orphans;
  bool removed = RemoveRec(root_.get(), id, mbr, &orphans, 0);
  assert(removed);
  (void)removed;
  locations_.erase(it);
  --size_;

  // Shrink the root while it has a single internal child.
  while (!root_->leaf && root_->entries.size() == 1) {
    root_ = std::move(root_->entries.front().child);
  }
  if (!root_->leaf && root_->entries.empty()) {
    root_ = std::make_unique<Node>();
  }

  // Reinsert orphans (leaf entries at level 0; internal subtrees at their
  // original level relative to the new root).
  for (auto& e : orphans) {
    if (e.child == nullptr) {
      InsertEntry(std::move(e), 0);
    } else {
      size_t level = LevelOf(e.child.get()) + 1;
      InsertEntry(std::move(e), level);
    }
  }
  return Status::OK();
}

std::unique_ptr<RTree::Node> RTree::BuildStr(std::vector<Entry> entries,
                                             bool leaf) {
  if (entries.size() <= max_entries_) {
    auto node = std::make_unique<Node>();
    node->leaf = leaf;
    node->entries = std::move(entries);
    return node;
  }
  size_t num_nodes =
      (entries.size() + max_entries_ - 1) / max_entries_;
  auto slices = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_nodes))));
  std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                               const Entry& b) {
    return a.mbr.Center().x < b.mbr.Center().x;
  });
  size_t per_slice = (entries.size() + slices - 1) / slices;

  std::vector<Entry> parents;
  for (size_t s = 0; s < entries.size(); s += per_slice) {
    size_t end = std::min(s + per_slice, entries.size());
    std::sort(entries.begin() + s, entries.begin() + end,
              [](const Entry& a, const Entry& b) {
                return a.mbr.Center().y < b.mbr.Center().y;
              });
    for (size_t i = s; i < end; i += max_entries_) {
      size_t node_end = std::min(i + max_entries_, end);
      auto node = std::make_unique<Node>();
      node->leaf = leaf;
      node->entries.assign(std::make_move_iterator(entries.begin() + i),
                           std::make_move_iterator(entries.begin() + node_end));
      Entry up;
      up.mbr = node->Mbr();
      up.child = std::move(node);
      parents.push_back(std::move(up));
    }
  }
  return BuildStr(std::move(parents), false);
}

Status RTree::BulkLoad(std::vector<PointEntry> points) {
  std::unordered_map<ObjectId, Point> locs;
  locs.reserve(points.size());
  for (const auto& p : points) {
    if (!locs.emplace(p.id, p.location).second)
      return Status::InvalidArgument("duplicate id in bulk load");
  }
  std::vector<Entry> entries;
  entries.reserve(points.size());
  for (const auto& p : points) {
    Entry e;
    e.mbr = Rect::FromPoint(p.location);
    e.id = p.id;
    entries.push_back(std::move(e));
  }
  if (entries.empty()) {
    root_ = std::make_unique<Node>();
  } else {
    root_ = BuildStr(std::move(entries), true);
  }
  locations_ = std::move(locs);
  size_ = points.size();
  return Status::OK();
}

Result<Point> RTree::Locate(ObjectId id) const {
  auto it = locations_.find(id);
  if (it == locations_.end())
    return Status::NotFound("object id not in rtree");
  return it->second;
}

std::vector<PointEntry> RTree::RangeSearch(const Rect& window) const {
  std::vector<PointEntry> out;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const auto& e : node->entries) {
      if (!e.mbr.Intersects(window)) continue;
      if (node->leaf) {
        out.push_back({e.id, e.mbr.Center()});
      } else {
        stack.push_back(e.child.get());
      }
    }
  }
  return out;
}

size_t RTree::RangeCount(const Rect& window) const {
  size_t count = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const auto& e : node->entries) {
      if (!e.mbr.Intersects(window)) continue;
      if (node->leaf) {
        ++count;
      } else {
        stack.push_back(e.child.get());
      }
    }
  }
  return count;
}

std::vector<PointEntry> RTree::KNearest(const Point& from, size_t k) const {
  std::vector<PointEntry> out;
  if (k == 0 || size_ == 0) return out;

  struct QItem {
    double dist;
    const Node* node;    // non-null for subtree items
    PointEntry object;   // valid when node == nullptr
  };
  auto cmp = [](const QItem& a, const QItem& b) { return a.dist > b.dist; };
  std::priority_queue<QItem, std::vector<QItem>, decltype(cmp)> pq(cmp);
  pq.push({0.0, root_.get(), {}});

  while (!pq.empty() && out.size() < k) {
    QItem item = pq.top();
    pq.pop();
    if (item.node == nullptr) {
      out.push_back(item.object);
      continue;
    }
    for (const auto& e : item.node->entries) {
      if (item.node->leaf) {
        Point p = e.mbr.Center();
        pq.push({Distance(from, p), nullptr, {e.id, p}});
      } else {
        pq.push({MinDist(from, e.mbr), e.child.get(), {}});
      }
    }
  }
  return out;
}

double RTree::NearestDistance(const Point& from) const {
  auto nn = KNearest(from, 1);
  if (nn.empty()) return std::numeric_limits<double>::infinity();
  return Distance(from, nn.front().location);
}

}  // namespace cloakdb
