// Grid-of-buckets secondary index over rectangles.
//
// The privacy-aware server stores private data as cloaked rectangles only
// (paper Section 6.1). This index buckets each rectangle into every grid
// cell it overlaps so public queries over private data (Fig. 6) can find
// the cloaked regions intersecting a window without a full scan.

#ifndef CLOAKDB_INDEX_RECT_GRID_H_
#define CLOAKDB_INDEX_RECT_GRID_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/rect.h"
#include "index/grid_index.h"
#include "util/status.h"

namespace cloakdb {

/// An (id, rectangle) pair returned by searches.
struct RectEntry {
  ObjectId id = 0;
  Rect rect;
};

/// Uniform grid where each cell lists the rectangles overlapping it.
class RectGrid {
 public:
  /// Grid over `bounds` with `cells_per_side` >= 1 cells per axis.
  RectGrid(const Rect& bounds, uint32_t cells_per_side);

  /// Inserts a rectangle (clamped to the managed space for bucketing; the
  /// stored rect keeps its original extent). Fails on duplicate id or on a
  /// rect that does not intersect the space.
  Status Insert(ObjectId id, const Rect& rect);

  /// Removes a rectangle by id.
  Status Remove(ObjectId id);

  /// Replaces the rectangle of an existing id (the common path: a user's
  /// cloaked region moved). Fails with NotFound when absent.
  Status Update(ObjectId id, const Rect& new_rect);

  /// Inserts or replaces.
  Status Upsert(ObjectId id, const Rect& rect);

  /// The stored rectangle of an id.
  Result<Rect> Get(ObjectId id) const;

  size_t size() const { return rects_.size(); }
  const Rect& bounds() const { return bounds_; }

  /// All rectangles intersecting `window`, deduplicated.
  std::vector<RectEntry> IntersectingRects(const Rect& window) const;

  /// Visits every stored rectangle once (order unspecified).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [id, rect] : rects_) fn(RectEntry{id, rect});
  }

 private:
  struct CellRange {
    uint32_t x0, y0, x1, y1;
  };
  CellRange CellsFor(const Rect& rect) const;
  size_t CellIndex(uint32_t cx, uint32_t cy) const {
    return static_cast<size_t>(cy) * cells_per_side_ + cx;
  }
  void AddToCells(ObjectId id, const Rect& rect);
  void RemoveFromCells(ObjectId id, const Rect& rect);

  Rect bounds_;
  uint32_t cells_per_side_;
  double cell_w_;
  double cell_h_;
  std::vector<std::vector<ObjectId>> cells_;
  std::unordered_map<ObjectId, Rect> rects_;
};

}  // namespace cloakdb

#endif  // CLOAKDB_INDEX_RECT_GRID_H_
