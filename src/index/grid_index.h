// Uniform grid index over moving point objects.
//
// This is the anonymizer's working snapshot structure (paper Fig. 4b): it
// supports high-rate location updates (move = O(1) expected), per-cell
// occupancy counts for grid cloaking, window counts/collection, and a
// spiral k-nearest-neighbor search used by MBR cloaking (Fig. 3b).

#ifndef CLOAKDB_INDEX_GRID_INDEX_H_
#define CLOAKDB_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "util/status.h"

namespace cloakdb {

/// Identifier for an object stored in a spatial index.
using ObjectId = uint64_t;

/// An (id, location) pair returned by searches.
struct PointEntry {
  ObjectId id = 0;
  Point location;
};

/// Uniform cells_per_side x cells_per_side grid over a fixed bounding space.
class GridIndex {
 public:
  /// Creates a grid over `bounds` (non-empty) with `cells_per_side` >= 1
  /// cells along each axis.
  GridIndex(const Rect& bounds, uint32_t cells_per_side);

  /// Inserts a new object. Fails with AlreadyExists on a duplicate id and
  /// OutOfRange when `location` lies outside the managed space.
  Status Insert(ObjectId id, const Point& location);

  /// Removes an object. Fails with NotFound when the id is unknown.
  Status Remove(ObjectId id);

  /// Moves an existing object (Fails with NotFound / OutOfRange). O(1)
  /// expected: the bucket is only touched when the cell changes.
  Status Move(ObjectId id, const Point& new_location);

  /// The stored location of `id`.
  Result<Point> Locate(ObjectId id) const;

  /// True iff the id is present.
  bool Contains(ObjectId id) const { return locations_.count(id) > 0; }

  /// Number of stored objects.
  size_t size() const { return locations_.size(); }

  /// Number of objects whose location lies in `window` (closed bounds).
  size_t CountInRect(const Rect& window) const;

  /// All objects whose location lies in `window`.
  std::vector<PointEntry> CollectInRect(const Rect& window) const;

  /// The k objects nearest to `from` (ties broken by id), optionally
  /// skipping one id (so a user is not her own neighbor). Returns fewer
  /// than k entries when the index holds fewer objects. Sorted by distance.
  std::vector<PointEntry> KNearest(const Point& from, size_t k,
                                   ObjectId exclude_id = ~0ULL) const;

  // --- Cell-level accessors used by the cloaking algorithms. ---

  /// Managed space.
  const Rect& bounds() const { return bounds_; }

  uint32_t cells_per_side() const { return cells_per_side_; }

  /// Cell column/row of a point (clamped to the grid).
  uint32_t CellX(double x) const;
  uint32_t CellY(double y) const;

  /// Geometric extent of cell (cx, cy).
  Rect CellRect(uint32_t cx, uint32_t cy) const;

  /// Occupancy of cell (cx, cy). Requires coordinates inside the grid.
  size_t CellCount(uint32_t cx, uint32_t cy) const;

  /// Occupancy of the cell block [cx0, cx1] x [cy0, cy1] (inclusive,
  /// clamped to the grid).
  size_t BlockCount(uint32_t cx0, uint32_t cy0, uint32_t cx1,
                    uint32_t cy1) const;

 private:
  size_t CellIndex(uint32_t cx, uint32_t cy) const {
    return static_cast<size_t>(cy) * cells_per_side_ + cx;
  }
  size_t CellIndexFor(const Point& p) const {
    return CellIndex(CellX(p.x), CellY(p.y));
  }

  void BucketErase(size_t cell, ObjectId id);

  Rect bounds_;
  uint32_t cells_per_side_;
  double cell_w_;
  double cell_h_;
  std::vector<std::vector<PointEntry>> cells_;
  std::unordered_map<ObjectId, Point> locations_;
};

}  // namespace cloakdb

#endif  // CLOAKDB_INDEX_GRID_INDEX_H_
