#include "index/grid_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

#include "geom/distance.h"

namespace cloakdb {

GridIndex::GridIndex(const Rect& bounds, uint32_t cells_per_side)
    : bounds_(bounds), cells_per_side_(cells_per_side) {
  assert(!bounds.IsEmpty());
  assert(cells_per_side >= 1);
  cell_w_ = bounds.Width() / cells_per_side_;
  cell_h_ = bounds.Height() / cells_per_side_;
  cells_.resize(static_cast<size_t>(cells_per_side_) * cells_per_side_);
}

uint32_t GridIndex::CellX(double x) const {
  double fx = (x - bounds_.min_x) / cell_w_;
  auto cx = static_cast<int64_t>(std::floor(fx));
  cx = std::clamp<int64_t>(cx, 0, cells_per_side_ - 1);
  return static_cast<uint32_t>(cx);
}

uint32_t GridIndex::CellY(double y) const {
  double fy = (y - bounds_.min_y) / cell_h_;
  auto cy = static_cast<int64_t>(std::floor(fy));
  cy = std::clamp<int64_t>(cy, 0, cells_per_side_ - 1);
  return static_cast<uint32_t>(cy);
}

Rect GridIndex::CellRect(uint32_t cx, uint32_t cy) const {
  return {bounds_.min_x + cx * cell_w_, bounds_.min_y + cy * cell_h_,
          bounds_.min_x + (cx + 1) * cell_w_,
          bounds_.min_y + (cy + 1) * cell_h_};
}

size_t GridIndex::CellCount(uint32_t cx, uint32_t cy) const {
  assert(cx < cells_per_side_ && cy < cells_per_side_);
  return cells_[CellIndex(cx, cy)].size();
}

size_t GridIndex::BlockCount(uint32_t cx0, uint32_t cy0, uint32_t cx1,
                             uint32_t cy1) const {
  cx1 = std::min(cx1, cells_per_side_ - 1);
  cy1 = std::min(cy1, cells_per_side_ - 1);
  size_t total = 0;
  for (uint32_t cy = cy0; cy <= cy1; ++cy)
    for (uint32_t cx = cx0; cx <= cx1; ++cx)
      total += cells_[CellIndex(cx, cy)].size();
  return total;
}

Status GridIndex::Insert(ObjectId id, const Point& location) {
  if (locations_.count(id) > 0)
    return Status::AlreadyExists("object id already in grid index");
  if (!bounds_.Contains(location))
    return Status::OutOfRange("location outside indexed space: " +
                              location.ToString());
  locations_.emplace(id, location);
  cells_[CellIndexFor(location)].push_back({id, location});
  return Status::OK();
}

void GridIndex::BucketErase(size_t cell, ObjectId id) {
  auto& bucket = cells_[cell];
  for (size_t i = 0; i < bucket.size(); ++i) {
    if (bucket[i].id == id) {
      bucket[i] = bucket.back();
      bucket.pop_back();
      return;
    }
  }
  assert(false && "object missing from its grid bucket");
}

Status GridIndex::Remove(ObjectId id) {
  auto it = locations_.find(id);
  if (it == locations_.end())
    return Status::NotFound("object id not in grid index");
  BucketErase(CellIndexFor(it->second), id);
  locations_.erase(it);
  return Status::OK();
}

Status GridIndex::Move(ObjectId id, const Point& new_location) {
  auto it = locations_.find(id);
  if (it == locations_.end())
    return Status::NotFound("object id not in grid index");
  if (!bounds_.Contains(new_location))
    return Status::OutOfRange("location outside indexed space: " +
                              new_location.ToString());
  size_t old_cell = CellIndexFor(it->second);
  size_t new_cell = CellIndexFor(new_location);
  it->second = new_location;
  if (old_cell == new_cell) {
    for (auto& e : cells_[old_cell]) {
      if (e.id == id) {
        e.location = new_location;
        return Status::OK();
      }
    }
    assert(false && "object missing from its grid bucket");
  }
  BucketErase(old_cell, id);
  cells_[new_cell].push_back({id, new_location});
  return Status::OK();
}

Result<Point> GridIndex::Locate(ObjectId id) const {
  auto it = locations_.find(id);
  if (it == locations_.end())
    return Status::NotFound("object id not in grid index");
  return it->second;
}

size_t GridIndex::CountInRect(const Rect& window) const {
  if (!window.Intersects(bounds_)) return 0;
  uint32_t cx0 = CellX(window.min_x), cx1 = CellX(window.max_x);
  uint32_t cy0 = CellY(window.min_y), cy1 = CellY(window.max_y);
  size_t total = 0;
  for (uint32_t cy = cy0; cy <= cy1; ++cy) {
    for (uint32_t cx = cx0; cx <= cx1; ++cx) {
      const auto& bucket = cells_[CellIndex(cx, cy)];
      // Interior cells need no point tests.
      if (window.Contains(CellRect(cx, cy))) {
        total += bucket.size();
        continue;
      }
      for (const auto& e : bucket)
        if (window.Contains(e.location)) ++total;
    }
  }
  return total;
}

std::vector<PointEntry> GridIndex::CollectInRect(const Rect& window) const {
  std::vector<PointEntry> out;
  if (!window.Intersects(bounds_)) return out;
  uint32_t cx0 = CellX(window.min_x), cx1 = CellX(window.max_x);
  uint32_t cy0 = CellY(window.min_y), cy1 = CellY(window.max_y);
  for (uint32_t cy = cy0; cy <= cy1; ++cy) {
    for (uint32_t cx = cx0; cx <= cx1; ++cx) {
      for (const auto& e : cells_[CellIndex(cx, cy)])
        if (window.Contains(e.location)) out.push_back(e);
    }
  }
  return out;
}

std::vector<PointEntry> GridIndex::KNearest(const Point& from, size_t k,
                                            ObjectId exclude_id) const {
  std::vector<PointEntry> out;
  if (k == 0 || locations_.empty()) return out;

  // Max-heap of the best k seen so far, keyed by squared distance.
  using HeapItem = std::pair<double, PointEntry>;
  auto cmp = [](const HeapItem& a, const HeapItem& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second.id < b.second.id;
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(cmp)> heap(
      cmp);

  auto consider = [&](const PointEntry& e) {
    if (e.id == exclude_id) return;
    double d2 = DistanceSquared(from, e.location);
    if (heap.size() < k) {
      heap.push({d2, e});
    } else if (d2 < heap.top().first ||
               (d2 == heap.top().first && e.id < heap.top().second.id)) {
      heap.pop();
      heap.push({d2, e});
    }
  };

  // Spiral outward ring by ring; stop when the nearest possible point in
  // the next ring cannot beat the current k-th distance.
  int64_t cx = CellX(from.x), cy = CellY(from.y);
  int64_t n = cells_per_side_;
  double min_cell_dim = std::min(cell_w_, cell_h_);
  int64_t max_ring = n;  // rings beyond the grid are empty

  for (int64_t ring = 0; ring <= max_ring; ++ring) {
    if (heap.size() == k) {
      // Cells in this ring are at least (ring - 1) cells away.
      double lower = static_cast<double>(ring - 1) * min_cell_dim;
      if (lower > 0.0 && lower * lower > heap.top().first) break;
    }
    int64_t x0 = cx - ring, x1 = cx + ring;
    int64_t y0 = cy - ring, y1 = cy + ring;
    bool any_cell = false;
    for (int64_t y = y0; y <= y1; ++y) {
      if (y < 0 || y >= n) continue;
      for (int64_t x = x0; x <= x1; ++x) {
        if (x < 0 || x >= n) continue;
        // Only the ring boundary (interior was handled by smaller rings).
        if (ring > 0 && x != x0 && x != x1 && y != y0 && y != y1) continue;
        any_cell = true;
        for (const auto& e :
             cells_[CellIndex(static_cast<uint32_t>(x),
                              static_cast<uint32_t>(y))]) {
          consider(e);
        }
      }
    }
    if (!any_cell && ring > 0 && (x1 < 0 || x0 >= n) && (y1 < 0 || y0 >= n))
      break;  // spiral has left the grid entirely
  }

  out.resize(heap.size());
  for (size_t i = out.size(); i > 0; --i) {
    out[i - 1] = heap.top().second;
    heap.pop();
  }
  return out;
}

}  // namespace cloakdb
