#include "server/continuous_queries.h"

#include <algorithm>
#include <cmath>

#include "geom/distance.h"

namespace cloakdb {

ContinuousQueryProcessor::ContinuousQueryProcessor(const ObjectStore* store,
                                                   const Options& options)
    : store_(store), options_(options) {}

std::vector<PublicObject> ContinuousQueryProcessor::Materialize(
    const std::vector<PointEntry>& hits) const {
  std::vector<PublicObject> out;
  out.reserve(hits.size());
  for (const auto& h : hits) {
    auto obj = store_->GetPublicObject(h.id);
    if (obj.ok()) out.push_back(std::move(obj).value());
  }
  return out;
}

// --- Range -----------------------------------------------------------------

Status ContinuousQueryProcessor::EvaluateRangeFull(RangeState* state) {
  auto index = store_->CategoryIndex(state->category);
  if (!index.ok()) return index.status();
  ++stats_.full_evaluations;
  // Over-fetch with the slack margin so future small moves hit the cache.
  state->coverage =
      state->region.Expanded(state->radius + options_.slack_margin);
  state->fetched = index.value()->RangeSearch(state->coverage);
  state->cache_valid = true;
  FilterRangeFromCache(state);
  return Status::OK();
}

void ContinuousQueryProcessor::FilterRangeFromCache(RangeState* state) {
  std::vector<PointEntry> hits;
  for (const auto& e : state->fetched) {
    if (MinDist(e.location, state->region) <= state->radius) {
      hits.push_back(e);
    }
  }
  state->current = Materialize(hits);
}

Result<ContinuousQueryId> ContinuousQueryProcessor::RegisterRange(
    const Rect& region, double radius, Category category) {
  if (region.IsEmpty())
    return Status::InvalidArgument("cloaked region must be non-empty");
  if (!(radius > 0.0))
    return Status::InvalidArgument("query radius must be positive");
  RangeState state;
  state.radius = radius;
  state.category = category;
  state.region = region;
  CLOAKDB_RETURN_IF_ERROR(EvaluateRangeFull(&state));
  ContinuousQueryId id = next_id_++;
  range_queries_.emplace(id, std::move(state));
  return id;
}

// --- NN ---------------------------------------------------------------------

Status ContinuousQueryProcessor::EvaluateNnFull(NnState* state) {
  auto index_or = store_->CategoryIndex(state->category);
  if (!index_or.ok()) return index_or.status();
  const RTree& index = *index_or.value();
  if (index.size() == 0)
    return Status::NotFound("no public objects in category");
  ++stats_.full_evaluations;

  double max_corner_nn = 0.0;
  for (const Point& corner : state->region.Corners()) {
    max_corner_nn = std::max(max_corner_nn, index.NearestDistance(corner));
  }
  double half_diag =
      0.5 * std::sqrt(state->region.Width() * state->region.Width() +
                      state->region.Height() * state->region.Height());
  double fetch = max_corner_nn + half_diag + options_.slack_margin;
  state->coverage = state->region.Expanded(fetch);
  state->fetched = index.RangeSearch(state->coverage);
  state->cache_valid = true;
  FilterNnFromCache(state);
  return Status::OK();
}

void ContinuousQueryProcessor::FilterNnFromCache(NnState* state) {
  // The cached set is a superset of every possible candidate while the
  // region stays inside the coverage (checked by the caller), so the
  // corner-NN bound computed *from the cache* is conservative: cached
  // nearest distances can only over-estimate the true ones.
  double max_corner_nn = 0.0;
  for (const Point& corner : state->region.Corners()) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& e : state->fetched) {
      best = std::min(best, Distance(corner, e.location));
    }
    max_corner_nn = std::max(max_corner_nn, best);
  }
  double half_diag =
      0.5 * std::sqrt(state->region.Width() * state->region.Width() +
                      state->region.Height() * state->region.Height());
  double fetch = max_corner_nn + half_diag;

  std::vector<PointEntry> hits;
  for (const auto& e : state->fetched) {
    if (MinDist(e.location, state->region) <= fetch) hits.push_back(e);
  }
  double min_max = std::numeric_limits<double>::infinity();
  for (const auto& h : hits) {
    min_max = std::min(min_max, MaxDist(h.location, state->region));
  }
  hits.erase(std::remove_if(hits.begin(), hits.end(),
                            [&](const PointEntry& e) {
                              return MinDist(e.location, state->region) >
                                     min_max;
                            }),
             hits.end());
  state->current = Materialize(hits);
}

Result<ContinuousQueryId> ContinuousQueryProcessor::RegisterNn(
    const Rect& region, Category category) {
  if (region.IsEmpty())
    return Status::InvalidArgument("cloaked region must be non-empty");
  NnState state;
  state.category = category;
  state.region = region;
  CLOAKDB_RETURN_IF_ERROR(EvaluateNnFull(&state));
  ContinuousQueryId id = next_id_++;
  nn_queries_.emplace(id, std::move(state));
  return id;
}

// --- Updates ----------------------------------------------------------------

Result<std::vector<PublicObject>> ContinuousQueryProcessor::UpdateRegion(
    ContinuousQueryId id, const Rect& new_region) {
  if (new_region.IsEmpty())
    return Status::InvalidArgument("cloaked region must be non-empty");
  ++stats_.region_updates;

  if (auto it = range_queries_.find(id); it != range_queries_.end()) {
    RangeState& state = it->second;
    state.region = new_region;
    Rect needed = new_region.Expanded(state.radius);
    if (state.cache_valid && state.coverage.Contains(needed)) {
      ++stats_.incremental_filters;
      FilterRangeFromCache(&state);
    } else {
      CLOAKDB_RETURN_IF_ERROR(EvaluateRangeFull(&state));
    }
    return state.current;
  }

  if (auto it = nn_queries_.find(id); it != nn_queries_.end()) {
    NnState& state = it->second;
    state.region = new_region;
    bool incremental = false;
    if (state.cache_valid && !state.fetched.empty()) {
      // Validity check: the cache-derived fetch radius (conservative upper
      // bound) must keep the required area inside the cached coverage.
      double max_corner_nn = 0.0;
      for (const Point& corner : state.region.Corners()) {
        double best = std::numeric_limits<double>::infinity();
        for (const auto& e : state.fetched) {
          best = std::min(best, Distance(corner, e.location));
        }
        max_corner_nn = std::max(max_corner_nn, best);
      }
      double half_diag =
          0.5 * std::sqrt(state.region.Width() * state.region.Width() +
                          state.region.Height() * state.region.Height());
      Rect needed = state.region.Expanded(max_corner_nn + half_diag);
      incremental = state.coverage.Contains(needed);
    }
    if (incremental) {
      ++stats_.incremental_filters;
      FilterNnFromCache(&state);
    } else {
      CLOAKDB_RETURN_IF_ERROR(EvaluateNnFull(&state));
    }
    return state.current;
  }

  return Status::NotFound("unknown continuous query id");
}

Result<std::vector<PublicObject>>
ContinuousQueryProcessor::CurrentCandidates(ContinuousQueryId id) const {
  if (auto it = range_queries_.find(id); it != range_queries_.end())
    return it->second.current;
  if (auto it = nn_queries_.find(id); it != nn_queries_.end())
    return it->second.current;
  return Status::NotFound("unknown continuous query id");
}

void ContinuousQueryProcessor::InvalidateCachesTouching(const Point& location,
                                                        Category category) {
  for (auto& [id, state] : range_queries_) {
    if (state.category == category && state.coverage.Contains(location)) {
      state.cache_valid = false;
      (void)EvaluateRangeFull(&state);
    }
  }
  for (auto& [id, state] : nn_queries_) {
    // An inserted/removed object outside the coverage cannot change an NN
    // answer (everything inside is closer), so only touching caches must
    // refresh.
    if (state.category == category && state.coverage.Contains(location)) {
      state.cache_valid = false;
      (void)EvaluateNnFull(&state);
    }
  }
}

void ContinuousQueryProcessor::NotifyPublicInserted(
    const PublicObject& object) {
  InvalidateCachesTouching(object.location, object.category);
}

void ContinuousQueryProcessor::NotifyPublicRemoved(
    const PublicObject& object) {
  InvalidateCachesTouching(object.location, object.category);
}

// --- Count ------------------------------------------------------------------

double ContinuousQueryProcessor::ContributionOf(const Rect& region,
                                                const Rect& window) const {
  if (!region.Intersects(window)) return 0.0;
  return region.Area() > 0.0 ? region.OverlapFraction(window) : 1.0;
}

Result<ContinuousQueryId> ContinuousQueryProcessor::RegisterCount(
    const Rect& window) {
  if (window.IsEmpty())
    return Status::InvalidArgument("query window must be non-empty");
  CountState state;
  state.window = window;
  store_->private_index().ForEach([&](const RectEntry& entry) {
    double p = ContributionOf(entry.rect, window);
    if (p <= 0.0) return;
    state.contributions.emplace(entry.id, p);
    state.expected += p;
    if (p >= 1.0) ++state.certain;
  });
  ContinuousQueryId id = next_id_++;
  count_queries_.emplace(id, std::move(state));
  return id;
}

Status ContinuousQueryProcessor::NotifyPrivateRegionChanged(
    ObjectId pseudonym, const std::optional<Rect>& old_region,
    const std::optional<Rect>& new_region) {
  for (auto& [id, state] : count_queries_) {
    ++stats_.count_delta_updates;
    if (old_region.has_value()) {
      auto it = state.contributions.find(pseudonym);
      if (it != state.contributions.end()) {
        state.expected -= it->second;
        if (it->second >= 1.0) --state.certain;
        state.contributions.erase(it);
      }
    }
    if (new_region.has_value()) {
      double p = ContributionOf(*new_region, state.window);
      if (p > 0.0) {
        state.contributions.emplace(pseudonym, p);
        state.expected += p;
        if (p >= 1.0) ++state.certain;
      }
    }
  }
  return Status::OK();
}

Result<CountAnswer> ContinuousQueryProcessor::CurrentCount(
    ContinuousQueryId id) const {
  auto it = count_queries_.find(id);
  if (it == count_queries_.end())
    return Status::NotFound("unknown continuous query id");
  std::vector<double> ps;
  ps.reserve(it->second.contributions.size());
  for (const auto& [pseudonym, p] : it->second.contributions) {
    ps.push_back(p);
  }
  return MakeCountAnswer(ps);
}

Status ContinuousQueryProcessor::Unregister(ContinuousQueryId id) {
  if (range_queries_.erase(id) > 0) return Status::OK();
  if (nn_queries_.erase(id) > 0) return Status::OK();
  if (count_queries_.erase(id) > 0) return Status::OK();
  return Status::NotFound("unknown continuous query id");
}

}  // namespace cloakdb
