#include "server/continuous_queries.h"

#include <algorithm>
#include <cmath>

#include "geom/distance.h"
#include "server/public_queries.h"

namespace {

// True when the closed L2 ball around `center` lies inside `rect` (the
// ball's bounding square does). Used to certify that nearest-neighbor
// distances computed from a cached fetch set are exact, not just
// conservative: every object that could beat the cached nearest lives
// inside the ball, hence inside the coverage, hence in the cache.
bool BallInside(const cloakdb::Point& center, double radius,
                const cloakdb::Rect& rect) {
  return center.x - radius >= rect.min_x && center.x + radius <= rect.max_x &&
         center.y - radius >= rect.min_y && center.y + radius <= rect.max_y;
}

}  // namespace

namespace cloakdb {

ContinuousQueryProcessor::ContinuousQueryProcessor(const ObjectStore* store,
                                                   const Options& options)
    : store_(store), options_(options) {}

std::vector<PublicObject> ContinuousQueryProcessor::Materialize(
    const std::vector<PointEntry>& hits) const {
  std::vector<PublicObject> out;
  out.reserve(hits.size());
  for (const auto& h : hits) {
    auto obj = store_->GetPublicObject(h.id);
    if (obj.ok()) out.push_back(std::move(obj).value());
  }
  return out;
}

// --- Range -----------------------------------------------------------------

Status ContinuousQueryProcessor::EvaluateRangeFull(RangeState* state) {
  auto index = store_->CategoryIndex(state->category);
  if (!index.ok()) return index.status();
  ++stats_.full_evaluations;
  // Over-fetch with the slack margin so future small moves hit the cache.
  state->coverage =
      state->region.Expanded(state->radius + options_.slack_margin);
  state->fetched = index.value()->RangeSearch(state->coverage);
  state->cache_valid = true;
  FilterRangeFromCache(state);
  return Status::OK();
}

void ContinuousQueryProcessor::FilterRangeFromCache(RangeState* state) {
  std::vector<PointEntry> hits;
  for (const auto& e : state->fetched) {
    if (MinDist(e.location, state->region) <= state->radius) {
      hits.push_back(e);
    }
  }
  state->current = Materialize(hits);
}

Result<ContinuousQueryId> ContinuousQueryProcessor::RegisterRange(
    const Rect& region, double radius, Category category) {
  if (region.IsEmpty())
    return Status::InvalidArgument("cloaked region must be non-empty");
  if (!(radius > 0.0))
    return Status::InvalidArgument("query radius must be positive");
  RangeState state;
  state.radius = radius;
  state.category = category;
  state.region = region;
  CLOAKDB_RETURN_IF_ERROR(EvaluateRangeFull(&state));
  ContinuousQueryId id = next_id_++;
  range_queries_.emplace(id, std::move(state));
  return id;
}

// --- NN ---------------------------------------------------------------------

Status ContinuousQueryProcessor::EvaluateNnFull(NnState* state) {
  auto index_or = store_->CategoryIndex(state->category);
  if (!index_or.ok()) return index_or.status();
  const PublicCategoryIndex& index = *index_or.value();
  if (index.size() == 0)
    return Status::NotFound("no public objects in category");
  ++stats_.full_evaluations;

  double max_corner_nn = 0.0;
  for (const Point& corner : state->region.Corners()) {
    max_corner_nn = std::max(max_corner_nn, index.NearestDistance(corner));
  }
  double half_diag =
      0.5 * std::sqrt(state->region.Width() * state->region.Width() +
                      state->region.Height() * state->region.Height());
  double fetch = max_corner_nn + half_diag + options_.slack_margin;
  state->coverage = state->region.Expanded(fetch);
  state->fetched = index.RangeSearch(state->coverage);
  state->cache_valid = true;
  FilterNnFromCache(state);
  return Status::OK();
}

void ContinuousQueryProcessor::FilterNnFromCache(NnState* state) {
  // The cached set is a superset of every possible candidate while the
  // region stays inside the coverage (checked by the caller), so the
  // corner-NN bound computed *from the cache* is conservative: cached
  // nearest distances can only over-estimate the true ones.
  double max_corner_nn = 0.0;
  for (const Point& corner : state->region.Corners()) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& e : state->fetched) {
      best = std::min(best, Distance(corner, e.location));
    }
    max_corner_nn = std::max(max_corner_nn, best);
  }
  double half_diag =
      0.5 * std::sqrt(state->region.Width() * state->region.Width() +
                      state->region.Height() * state->region.Height());
  double fetch = max_corner_nn + half_diag;

  std::vector<PointEntry> hits;
  for (const auto& e : state->fetched) {
    if (MinDist(e.location, state->region) <= fetch) hits.push_back(e);
  }
  double min_max = std::numeric_limits<double>::infinity();
  for (const auto& h : hits) {
    min_max = std::min(min_max, MaxDist(h.location, state->region));
  }
  hits.erase(std::remove_if(hits.begin(), hits.end(),
                            [&](const PointEntry& e) {
                              return MinDist(e.location, state->region) >
                                     min_max;
                            }),
             hits.end());
  state->current = Materialize(hits);
}

Result<ContinuousQueryId> ContinuousQueryProcessor::RegisterNn(
    const Rect& region, Category category) {
  if (region.IsEmpty())
    return Status::InvalidArgument("cloaked region must be non-empty");
  NnState state;
  state.category = category;
  state.region = region;
  CLOAKDB_RETURN_IF_ERROR(EvaluateNnFull(&state));
  ContinuousQueryId id = next_id_++;
  nn_queries_.emplace(id, std::move(state));
  return id;
}

// --- Updates ----------------------------------------------------------------

Result<std::vector<PublicObject>> ContinuousQueryProcessor::UpdateRegion(
    ContinuousQueryId id, const Rect& new_region) {
  if (new_region.IsEmpty())
    return Status::InvalidArgument("cloaked region must be non-empty");
  ++stats_.region_updates;

  if (auto it = range_queries_.find(id); it != range_queries_.end()) {
    RangeState& state = it->second;
    Rect needed = new_region.Expanded(state.radius);
    if (state.cache_valid && state.coverage.Contains(needed)) {
      ++stats_.incremental_filters;
      state.region = new_region;
      FilterRangeFromCache(&state);
    } else {
      // Evaluate on a scratch copy and commit only on success, so a failed
      // index walk (e.g. the category vanished) leaves the old region, old
      // coverage and old answer intact and mutually consistent.
      RangeState fresh = state;
      fresh.region = new_region;
      CLOAKDB_RETURN_IF_ERROR(EvaluateRangeFull(&fresh));
      state = std::move(fresh);
    }
    return state.current;
  }

  if (auto it = nn_queries_.find(id); it != nn_queries_.end()) {
    NnState& state = it->second;
    bool incremental = false;
    if (state.cache_valid && !state.fetched.empty()) {
      // Validity check: the fetch radius derived from the cache must keep
      // the required area inside the cached coverage, and every corner's
      // nearest-neighbor ball must lie inside the coverage — then the
      // cache-derived corner distances are *exact* (not merely
      // conservative) and the incremental filter returns the same
      // candidate set a from-scratch evaluation would.
      double max_corner_nn = 0.0;
      bool balls_covered = true;
      for (const Point& corner : new_region.Corners()) {
        double best = std::numeric_limits<double>::infinity();
        for (const auto& e : state.fetched) {
          best = std::min(best, Distance(corner, e.location));
        }
        balls_covered =
            balls_covered && BallInside(corner, best, state.coverage);
        max_corner_nn = std::max(max_corner_nn, best);
      }
      double half_diag =
          0.5 * std::sqrt(new_region.Width() * new_region.Width() +
                          new_region.Height() * new_region.Height());
      Rect needed = new_region.Expanded(max_corner_nn + half_diag);
      incremental = balls_covered && state.coverage.Contains(needed);
    }
    if (incremental) {
      ++stats_.incremental_filters;
      state.region = new_region;
      FilterNnFromCache(&state);
    } else {
      NnState fresh = state;
      fresh.region = new_region;
      CLOAKDB_RETURN_IF_ERROR(EvaluateNnFull(&fresh));
      state = std::move(fresh);
    }
    return state.current;
  }

  return Status::NotFound("unknown continuous query id");
}

Result<std::vector<PublicObject>>
ContinuousQueryProcessor::CurrentCandidates(ContinuousQueryId id) const {
  if (auto it = range_queries_.find(id); it != range_queries_.end())
    return it->second.current;
  if (auto it = nn_queries_.find(id); it != nn_queries_.end())
    return it->second.current;
  return Status::NotFound("unknown continuous query id");
}

void ContinuousQueryProcessor::InvalidateCachesTouching(const Point& location,
                                                        Category category) {
  for (auto& [id, state] : range_queries_) {
    if (state.category == category && state.coverage.Contains(location)) {
      state.cache_valid = false;
      (void)EvaluateRangeFull(&state);
    }
  }
  for (auto& [id, state] : nn_queries_) {
    // An inserted/removed object outside the coverage cannot change an NN
    // answer (everything inside is closer), so only touching caches must
    // refresh.
    if (state.category == category && state.coverage.Contains(location)) {
      state.cache_valid = false;
      (void)EvaluateNnFull(&state);
    }
  }
}

void ContinuousQueryProcessor::NotifyPublicInserted(
    const PublicObject& object) {
  InvalidateCachesTouching(object.location, object.category);
}

void ContinuousQueryProcessor::NotifyPublicRemoved(
    const PublicObject& object) {
  InvalidateCachesTouching(object.location, object.category);
}

// --- Count ------------------------------------------------------------------

double ContinuousQueryProcessor::ContributionOf(const Rect& region,
                                                const Rect& window) const {
  // Shared with the one-shot count path so standing and one-shot answers
  // agree bit for bit (including the strictly-inside rule for zero-area
  // regions).
  return CountContributionOf(region, window);
}

Result<ContinuousQueryId> ContinuousQueryProcessor::RegisterCount(
    const Rect& window) {
  if (window.IsEmpty())
    return Status::InvalidArgument("query window must be non-empty");
  CountState state;
  state.window = window;
  store_->private_index().ForEach([&](const RectEntry& entry) {
    double p = ContributionOf(entry.rect, window);
    if (p <= 0.0) return;
    state.contributions.emplace(entry.id, p);
    state.expected += p;
    if (p >= 1.0) ++state.certain;
  });
  ContinuousQueryId id = next_id_++;
  count_queries_.emplace(id, std::move(state));
  return id;
}

Status ContinuousQueryProcessor::NotifyPrivateRegionChanged(
    ObjectId pseudonym, const std::optional<Rect>& old_region,
    const std::optional<Rect>& new_region) {
  // The contributions map is the source of truth: any existing entry for
  // this pseudonym is retired with delta-correct accounting even when the
  // caller did not know the old region (e.g. a duplicate "first
  // appearance" notification) — an emplace that silently no-ops while
  // `expected`/`certain` still mutate would diverge permanently.
  (void)old_region;
  for (auto& [id, state] : count_queries_) {
    bool affected = false;
    if (auto it = state.contributions.find(pseudonym);
        it != state.contributions.end()) {
      state.expected -= it->second;
      if (it->second >= 1.0) --state.certain;
      state.contributions.erase(it);
      affected = true;
    }
    if (new_region.has_value()) {
      double p = ContributionOf(*new_region, state.window);
      if (p > 0.0) {
        state.contributions.emplace(pseudonym, p);
        state.expected += p;
        if (p >= 1.0) ++state.certain;
        affected = true;
      }
    }
    // Count queries the update actually touched, not registry size times
    // notifications.
    if (affected) ++stats_.count_delta_updates;
  }
  return Status::OK();
}

Result<CountAnswer> ContinuousQueryProcessor::CurrentCount(
    ContinuousQueryId id) const {
  auto it = count_queries_.find(id);
  if (it == count_queries_.end())
    return Status::NotFound("unknown continuous query id");
  std::vector<double> ps;
  ps.reserve(it->second.contributions.size());
  for (const auto& [pseudonym, p] : it->second.contributions) {
    ps.push_back(p);
  }
  return MakeCountAnswer(ps);
}

Status ContinuousQueryProcessor::Unregister(ContinuousQueryId id) {
  if (range_queries_.erase(id) > 0) return Status::OK();
  if (nn_queries_.erase(id) > 0) return Status::OK();
  if (count_queries_.erase(id) > 0) return Status::OK();
  return Status::NotFound("unknown continuous query id");
}

}  // namespace cloakdb
