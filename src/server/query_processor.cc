#include "server/query_processor.h"

namespace cloakdb {

QueryProcessor::QueryProcessor(const Rect& space, uint32_t rect_grid_cells)
    : store_(space, rect_grid_cells) {}

Status QueryProcessor::ApplyCloakedUpdate(ObjectId pseudonym,
                                          const Rect& region) {
  CLOAKDB_RETURN_IF_ERROR(store_.UpsertPrivateRegion(pseudonym, region));
  ++stats_.cloaked_updates;
  return Status::OK();
}

Status QueryProcessor::DropPseudonym(ObjectId pseudonym) {
  return store_.RemovePrivateRegion(pseudonym);
}

Result<PrivateRangeResult> QueryProcessor::PrivateRange(
    const Rect& cloaked, double radius, Category category,
    const PrivateRangeOptions& opts) {
  auto result = PrivateRangeQuery(store_, cloaked, radius, category, opts);
  if (result.ok()) {
    ++stats_.private_range_queries;
    stats_.range_candidates.Add(
        static_cast<double>(result.value().candidates.size()));
    stats_.bytes_to_clients +=
        result.value().candidates.size() * kBytesPerObject;
  }
  return result;
}

Result<PrivateNnResult> QueryProcessor::PrivateNn(const Rect& cloaked,
                                                  Category category) {
  auto result = PrivateNnQuery(store_, cloaked, category);
  if (result.ok()) {
    ++stats_.private_nn_queries;
    stats_.nn_candidates.Add(
        static_cast<double>(result.value().candidates.size()));
    stats_.bytes_to_clients +=
        result.value().candidates.size() * kBytesPerObject;
  }
  return result;
}

Result<PrivateKnnResult> QueryProcessor::PrivateKnn(const Rect& cloaked,
                                                    size_t k,
                                                    Category category) {
  auto result = PrivateKnnQuery(store_, cloaked, k, category);
  if (result.ok()) {
    ++stats_.private_knn_queries;
    stats_.nn_candidates.Add(
        static_cast<double>(result.value().candidates.size()));
    stats_.bytes_to_clients +=
        result.value().candidates.size() * kBytesPerObject;
  }
  return result;
}

Result<PrivatePrivateRangeResult> QueryProcessor::PrivatePrivateRange(
    const Rect& querier, double radius, const PrivatePrivateOptions& opts) {
  auto result = PrivatePrivateRangeQuery(store_, querier, radius, opts);
  if (result.ok()) ++stats_.private_private_queries;
  return result;
}

Result<PrivatePrivateNnResult> QueryProcessor::PrivatePrivateNn(
    const Rect& querier, const PrivatePrivateOptions& opts) {
  auto result = PrivatePrivateNnQuery(store_, querier, opts);
  if (result.ok()) ++stats_.private_private_queries;
  return result;
}

Result<PublicCountResult> QueryProcessor::PublicCount(const Rect& window) {
  auto result = PublicRangeCountQuery(store_, window);
  if (result.ok()) ++stats_.public_count_queries;
  return result;
}

Result<PublicNnResult> QueryProcessor::PublicNn(const Point& from,
                                                const PublicNnOptions& opts) {
  auto result = PublicNnQuery(store_, from, opts);
  if (result.ok()) ++stats_.public_nn_queries;
  return result;
}

Result<HeatmapResult> QueryProcessor::Heatmap(uint32_t resolution) {
  auto result = PublicHeatmapQuery(store_, resolution);
  if (result.ok()) ++stats_.public_count_queries;
  return result;
}

}  // namespace cloakdb
