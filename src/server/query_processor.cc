#include "server/query_processor.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "geom/distance.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"

namespace cloakdb {

void MergeServerStats(ServerStats* into, const ServerStats& from) {
  into->cloaked_updates += from.cloaked_updates;
  into->private_range_queries += from.private_range_queries;
  into->private_nn_queries += from.private_nn_queries;
  into->private_knn_queries += from.private_knn_queries;
  into->private_private_queries += from.private_private_queries;
  into->public_count_queries += from.public_count_queries;
  into->public_nn_queries += from.public_nn_queries;
  into->heatmap_queries += from.heatmap_queries;
  into->range_candidates.Merge(from.range_candidates);
  into->nn_candidates.Merge(from.nn_candidates);
  into->bytes_to_clients += from.bytes_to_clients;
}

QueryProcessor::QueryProcessor(const Rect& space, uint32_t rect_grid_cells,
                               const WireCostModel& wire_cost,
                               const PublicCategoryIndex::Config& public_index)
    : store_(space, rect_grid_cells, public_index), wire_cost_(wire_cost) {}

Status QueryProcessor::ApplyCloakedUpdate(ObjectId pseudonym,
                                          const Rect& region) {
  CLOAKDB_RETURN_IF_ERROR(store_.UpsertPrivateRegion(pseudonym, region));
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.cloaked_updates;
  return Status::OK();
}

Status QueryProcessor::DropPseudonym(ObjectId pseudonym) {
  return store_.RemovePrivateRegion(pseudonym);
}

void QueryProcessor::CountPrivateQuery(uint64_t ServerStats::*counter,
                                       RunningStats ServerStats::*candidates,
                                       size_t num_candidates) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++(stats_.*counter);
  (stats_.*candidates).Add(static_cast<double>(num_candidates));
  stats_.bytes_to_clients += num_candidates * wire_cost_.bytes_per_object;
}

Result<PrivateRangeResult> QueryProcessor::PrivateRange(
    const Rect& cloaked, double radius, Category category,
    const PrivateRangeOptions& opts) const {
  obs::ScopedTimer probe(obs_.range_probe_us);
  obs::TraceSpan span(obs::CurrentTraceContext(), "index.probe");
  auto result = PrivateRangeQuery(store_, cloaked, radius, category, opts);
  if (result.ok())
    span.AddAttr("candidates",
                 static_cast<double>(result.value().candidates.size()));
  span.End();
  probe.Stop();
  if (result.ok()) {
    CountPrivateQuery(&ServerStats::private_range_queries,
                      &ServerStats::range_candidates,
                      result.value().candidates.size());
  }
  return result;
}

Result<PrivateNnResult> QueryProcessor::PrivateNn(const Rect& cloaked,
                                                  Category category) const {
  obs::ScopedTimer probe(obs_.nn_probe_us);
  obs::TraceSpan span(obs::CurrentTraceContext(), "index.probe");
  auto result = PrivateNnQuery(store_, cloaked, category);
  if (result.ok())
    span.AddAttr("candidates",
                 static_cast<double>(result.value().candidates.size()));
  span.End();
  probe.Stop();
  if (result.ok()) {
    CountPrivateQuery(&ServerStats::private_nn_queries,
                      &ServerStats::nn_candidates,
                      result.value().candidates.size());
  }
  return result;
}

Result<PrivateKnnResult> QueryProcessor::PrivateKnn(const Rect& cloaked,
                                                    size_t k,
                                                    Category category) const {
  obs::ScopedTimer probe(obs_.knn_probe_us);
  obs::TraceSpan span(obs::CurrentTraceContext(), "index.probe");
  auto result = PrivateKnnQuery(store_, cloaked, k, category);
  if (result.ok())
    span.AddAttr("candidates",
                 static_cast<double>(result.value().candidates.size()));
  span.End();
  probe.Stop();
  if (result.ok()) {
    CountPrivateQuery(&ServerStats::private_knn_queries,
                      &ServerStats::nn_candidates,
                      result.value().candidates.size());
  }
  return result;
}

Result<std::vector<PublicObject>> QueryProcessor::SharedProbe(
    const Rect& probe_region, Category category) const {
  // Not a client-visible query: no stats. Probe latency is recorded by the
  // service's shared-execution histogram around this call.
  obs::TraceSpan span(obs::CurrentTraceContext(), "index.shared_probe");
  return SharedProbeQuery(store_, probe_region, category);
}

Result<double> QueryProcessor::NnFetchReach(const Rect& cloaked,
                                            Category category) const {
  return NnFetchRadius(store_, cloaked, category);
}

Result<double> QueryProcessor::KnnFetchReach(const Rect& cloaked, size_t k,
                                             Category category) const {
  return KnnFetchRadius(store_, cloaked, k, category);
}

Result<PrivateRangeResult> QueryProcessor::PrivateRangeShared(
    const std::vector<PublicObject>& superset, const Rect& cloaked,
    double radius, Category category,
    const PrivateRangeOptions& opts) const {
  auto result = PrivateRangeFromSuperset(store_, superset, cloaked, radius,
                                         category, opts);
  if (result.ok()) {
    CountPrivateQuery(&ServerStats::private_range_queries,
                      &ServerStats::range_candidates,
                      result.value().candidates.size());
  }
  return result;
}

Result<PrivateNnResult> QueryProcessor::PrivateNnShared(
    const std::vector<PublicObject>& superset, const Rect& cloaked,
    Category category, double known_fetch_radius) const {
  auto result = PrivateNnFromSuperset(store_, superset, cloaked, category,
                                      known_fetch_radius);
  if (result.ok()) {
    CountPrivateQuery(&ServerStats::private_nn_queries,
                      &ServerStats::nn_candidates,
                      result.value().candidates.size());
  }
  return result;
}

Result<PrivateKnnResult> QueryProcessor::PrivateKnnShared(
    const std::vector<PublicObject>& superset, const Rect& cloaked, size_t k,
    Category category, double known_fetch_radius) const {
  auto result = PrivateKnnFromSuperset(store_, superset, cloaked, k, category,
                                       known_fetch_radius);
  if (result.ok()) {
    CountPrivateQuery(&ServerStats::private_knn_queries,
                      &ServerStats::nn_candidates,
                      result.value().candidates.size());
  }
  return result;
}

void QueryProcessor::NotePublicCountFromCache() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.public_count_queries;
}

Result<PrivatePrivateRangeResult> QueryProcessor::PrivatePrivateRange(
    const Rect& querier, double radius,
    const PrivatePrivateOptions& opts) const {
  auto result = PrivatePrivateRangeQuery(store_, querier, radius, opts);
  if (result.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.private_private_queries;
  }
  return result;
}

Result<PrivatePrivateNnResult> QueryProcessor::PrivatePrivateNn(
    const Rect& querier, const PrivatePrivateOptions& opts) const {
  auto result = PrivatePrivateNnQuery(store_, querier, opts);
  if (result.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.private_private_queries;
  }
  return result;
}

Result<PublicCountResult> QueryProcessor::PublicCount(
    const Rect& window) const {
  obs::ScopedTimer probe(obs_.count_probe_us);
  obs::TraceSpan span(obs::CurrentTraceContext(), "index.probe");
  auto result = PublicRangeCountQuery(store_, window);
  span.End();
  probe.Stop();
  if (result.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.public_count_queries;
  }
  return result;
}

Result<PublicNnResult> QueryProcessor::PublicNn(
    const Point& from, const PublicNnOptions& opts) const {
  auto result = PublicNnQuery(store_, from, opts);
  if (result.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.public_nn_queries;
  }
  return result;
}

Result<HeatmapResult> QueryProcessor::Heatmap(uint32_t resolution) const {
  obs::ScopedTimer probe(obs_.heatmap_probe_us);
  obs::TraceSpan span(obs::CurrentTraceContext(), "index.probe");
  auto result = PublicHeatmapQuery(store_, resolution);
  span.End();
  probe.Stop();
  if (result.ok()) {
    // Heatmaps used to inflate public_count_queries; they have their own
    // counter so the count-query stream stays an honest workload signal.
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.heatmap_queries;
  }
  return result;
}

ServerStats QueryProcessor::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void QueryProcessor::ResetStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_ = ServerStats{};
}

namespace {

// Deduplicates by id and sorts — shards hold disjoint objects, so the sort
// is what makes merged lists deterministic across shard counts.
void SortUniqueById(std::vector<PublicObject>* objects) {
  std::sort(objects->begin(), objects->end(),
            [](const PublicObject& a, const PublicObject& b) {
              return a.id < b.id;
            });
  objects->erase(std::unique(objects->begin(), objects->end(),
                             [](const PublicObject& a, const PublicObject& b) {
                               return a.id == b.id;
                             }),
                 objects->end());
}

}  // namespace

PrivateRangeResult MergePrivateRangeResults(
    std::vector<PrivateRangeResult> parts) {
  PrivateRangeResult merged;
  for (auto& part : parts) {
    if (merged.candidates.empty() && merged.extended_region.IsEmpty())
      merged.extended_region = part.extended_region;
    merged.rounded_rect_pruned += part.rounded_rect_pruned;
    merged.candidates.insert(merged.candidates.end(),
                             std::make_move_iterator(part.candidates.begin()),
                             std::make_move_iterator(part.candidates.end()));
  }
  SortUniqueById(&merged.candidates);
  return merged;
}

PrivateNnResult MergePrivateNnResults(const Rect& cloaked,
                                      std::vector<PrivateNnResult> parts) {
  PrivateNnResult merged;
  for (auto& part : parts) {
    merged.fetch_radius = std::max(merged.fetch_radius, part.fetch_radius);
    merged.dominance_pruned += part.dominance_pruned;
    merged.candidates.insert(merged.candidates.end(),
                             std::make_move_iterator(part.candidates.begin()),
                             std::make_move_iterator(part.candidates.end()));
  }
  SortUniqueById(&merged.candidates);

  // Cross-shard dominance: a candidate that survived its shard can still be
  // beaten by another shard's object for every possible querier location.
  double min_max_dist = std::numeric_limits<double>::infinity();
  for (const auto& c : merged.candidates) {
    min_max_dist = std::min(min_max_dist, MaxDist(c.location, cloaked));
  }
  size_t before = merged.candidates.size();
  merged.candidates.erase(
      std::remove_if(merged.candidates.begin(), merged.candidates.end(),
                     [&](const PublicObject& o) {
                       return MinDist(o.location, cloaked) > min_max_dist;
                     }),
      merged.candidates.end());
  merged.dominance_pruned += before - merged.candidates.size();
  return merged;
}

PrivateKnnResult MergePrivateKnnResults(const Rect& cloaked, size_t k,
                                        std::vector<PrivateKnnResult> parts) {
  PrivateKnnResult merged;
  for (auto& part : parts) {
    merged.fetch_radius = std::max(merged.fetch_radius, part.fetch_radius);
    merged.dominance_pruned += part.dominance_pruned;
    merged.candidates.insert(merged.candidates.end(),
                             std::make_move_iterator(part.candidates.begin()),
                             std::make_move_iterator(part.candidates.end()));
  }
  SortUniqueById(&merged.candidates);

  // Cross-shard k-dominance, same rule as PrivateKnnQuery: drop o when at
  // least k union members satisfy MaxDist(o', R) < MinDist(o, R).
  std::vector<double> max_dists;
  max_dists.reserve(merged.candidates.size());
  for (const auto& c : merged.candidates) {
    max_dists.push_back(MaxDist(c.location, cloaked));
  }
  std::sort(max_dists.begin(), max_dists.end());
  size_t before = merged.candidates.size();
  merged.candidates.erase(
      std::remove_if(merged.candidates.begin(), merged.candidates.end(),
                     [&](const PublicObject& o) {
                       double min_d = MinDist(o.location, cloaked);
                       size_t closer = static_cast<size_t>(
                           std::lower_bound(max_dists.begin(),
                                            max_dists.end(), min_d) -
                           max_dists.begin());
                       return closer >= k;
                     }),
      merged.candidates.end());
  merged.dominance_pruned += before - merged.candidates.size();
  return merged;
}

Result<PublicCountResult> MergePublicCountResults(
    std::vector<PublicCountResult> parts) {
  PublicCountResult merged;
  for (auto& part : parts) {
    merged.naive_count += part.naive_count;
    merged.contributions.insert(
        merged.contributions.end(),
        std::make_move_iterator(part.contributions.begin()),
        std::make_move_iterator(part.contributions.end()));
  }
  std::sort(merged.contributions.begin(), merged.contributions.end(),
            [](const CountContribution& a, const CountContribution& b) {
              return a.pseudonym < b.pseudonym;
            });
  std::vector<double> probabilities;
  probabilities.reserve(merged.contributions.size());
  for (const auto& c : merged.contributions)
    probabilities.push_back(c.probability);
  auto answer = MakeCountAnswer(probabilities);
  if (!answer.ok()) return answer.status();
  merged.answer = std::move(answer).value();
  return merged;
}

Result<HeatmapResult> MergeHeatmapResults(std::vector<HeatmapResult> parts) {
  if (parts.empty())
    return Status::InvalidArgument("no heatmap partials to merge");
  HeatmapResult merged = std::move(parts.front());
  for (size_t i = 1; i < parts.size(); ++i) {
    const HeatmapResult& part = parts[i];
    if (part.resolution != merged.resolution ||
        part.expected.size() != merged.expected.size())
      return Status::InvalidArgument(
          "heatmap partials disagree on resolution");
    for (size_t j = 0; j < merged.expected.size(); ++j)
      merged.expected[j] += part.expected[j];
  }
  return merged;
}

}  // namespace cloakdb
