// Storage layer of the privacy-aware location-based database server
// (paper Section 6.1).
//
// Two tables:
//   - public data: exact locations of objects that do not hide themselves
//     (gas stations, restaurants, police cars, ...), organized per category
//     in R-trees;
//   - private data: mobile users known *only* by pseudonym and cloaked
//     rectangle — the server never stores an exact private location.

#ifndef CLOAKDB_SERVER_OBJECT_STORE_H_
#define CLOAKDB_SERVER_OBJECT_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "index/public_index.h"
#include "index/rect_grid.h"
#include "index/rtree.h"
#include "util/status.h"

namespace cloakdb {

/// Category tag for public objects (gas station, restaurant, ...).
using Category = uint32_t;

/// A public (exact-location) object.
struct PublicObject {
  ObjectId id = 0;
  Point location;
  Category category = 0;
  std::string name;
};

/// The server's data storage: public exact objects + private cloaked
/// regions.
class ObjectStore {
 public:
  /// `space` bounds the private-region index; public objects may lie
  /// anywhere. `public_index` selects the per-category structure (dynamic
  /// R-tree, or sealed StaticRTree + overlay) for public data.
  explicit ObjectStore(const Rect& space, uint32_t rect_grid_cells = 64,
                       const PublicCategoryIndex::Config& public_index = {});

  // --- Public data -------------------------------------------------------

  /// Adds one public object (duplicate ids across *all* categories fail
  /// with AlreadyExists).
  Status AddPublicObject(const PublicObject& object);

  /// Removes a public object by id.
  Status RemovePublicObject(ObjectId id);

  /// Moves a public moving object (e.g. a police car).
  Status MovePublicObject(ObjectId id, const Point& new_location);

  /// Bulk-loads a category in one STR build (replaces that category).
  Status BulkLoadCategory(Category category, std::vector<PublicObject> objects);

  /// Replaces a category with a pre-built sealed StaticRTree (recovery
  /// fast path: the tree usually points into an mmap'd sidecar). The tree
  /// is verified entry-by-entry against `objects` — the authoritative set
  /// from the checkpoint; divergence that AdoptSealed cannot reconcile
  /// fails and leaves the store unchanged (caller falls back to
  /// BulkLoadCategory). Requires static public-index mode.
  Status AdoptCategorySealed(Category category, StaticRTree sealed,
                             const std::vector<PublicObject>& objects);

  /// Full object record by id.
  Result<PublicObject> GetPublicObject(ObjectId id) const;

  /// The index of one category; fails when the category has no objects.
  Result<const PublicCategoryIndex*> CategoryIndex(Category category) const;

  /// Mutable access for the service layer's checkpoint-time compaction.
  PublicCategoryIndex* MutableCategoryIndex(Category category);

  /// The configured public-index mode.
  PublicIndexMode public_index_mode() const { return public_index_.mode; }

  /// All categories currently populated.
  std::vector<Category> Categories() const;

  size_t num_public() const { return public_meta_.size(); }

  /// Every public object across all categories, sorted by id — the
  /// deterministic enumeration the checkpoint writer serializes.
  std::vector<PublicObject> AllPublicObjects() const;

  // --- Private data ------------------------------------------------------

  /// Inserts or replaces the cloaked region of a pseudonym.
  Status UpsertPrivateRegion(ObjectId pseudonym, const Rect& region);

  /// Drops a pseudonym's region (user went passive).
  Status RemovePrivateRegion(ObjectId pseudonym);

  /// The stored region of a pseudonym.
  Result<Rect> GetPrivateRegion(ObjectId pseudonym) const;

  /// Read access to the cloaked-region index.
  const RectGrid& private_index() const { return private_index_; }

  size_t num_private() const { return private_index_.size(); }

  /// Every (pseudonym, region) pair, sorted by pseudonym — deterministic
  /// enumeration for the checkpoint writer.
  std::vector<std::pair<ObjectId, Rect>> AllPrivateRegions() const;

  const Rect& space() const { return space_; }

 private:
  Rect space_;
  PublicCategoryIndex::Config public_index_;
  std::map<Category, PublicCategoryIndex> public_indexes_;
  std::unordered_map<ObjectId, PublicObject> public_meta_;
  RectGrid private_index_;
};

}  // namespace cloakdb

#endif  // CLOAKDB_SERVER_OBJECT_STORE_H_
