#include "server/public_queries.h"

#include <algorithm>
#include <limits>

#include "geom/distance.h"

namespace cloakdb {

double CountContributionOf(const Rect& region, const Rect& window) {
  if (!region.Intersects(window)) return 0.0;
  if (region.Area() > 0.0) return region.OverlapFraction(window);
  // Degenerate (zero-area) region: the user's position is pinned to a
  // point or segment. Certain presence requires the whole region strictly
  // inside the window; touching the boundary is a measure-zero overlap
  // and must not count (let alone as certain).
  bool strictly_inside =
      region.min_x > window.min_x && region.max_x < window.max_x &&
      region.min_y > window.min_y && region.max_y < window.max_y;
  return strictly_inside ? 1.0 : 0.0;
}

Result<PublicCountResult> PublicRangeCountQuery(const ObjectStore& store,
                                                const Rect& window) {
  if (window.IsEmpty())
    return Status::InvalidArgument("query window must be non-empty");

  PublicCountResult result;
  std::vector<double> probabilities;
  for (const auto& entry : store.private_index().IntersectingRects(window)) {
    result.naive_count += 1;
    double p = CountContributionOf(entry.rect, window);
    probabilities.push_back(p);
    result.contributions.push_back({entry.id, p});
  }
  auto answer = MakeCountAnswer(probabilities);
  if (!answer.ok()) return answer.status();
  result.answer = std::move(answer).value();
  return result;
}

Result<PublicNnResult> PublicNnQuery(const ObjectStore& store,
                                     const Point& from,
                                     const PublicNnOptions& options) {
  if (store.num_private() == 0)
    return Status::NotFound("no private data stored");

  // Gather (pseudonym, region, min, max) for every private object.
  std::vector<NnCandidate> all;
  all.reserve(store.num_private());
  store.private_index().ForEach([&](const RectEntry& entry) {
    NnCandidate c;
    c.pseudonym = entry.id;
    c.region = entry.rect;
    c.min_dist = MinDist(from, entry.rect);
    c.max_dist = MaxDist(from, entry.rect);
    all.push_back(std::move(c));
  });

  // Prune: user u is never nearest when some other user u' satisfies
  // MaxDist(u') < MinDist(u) — u' beats u for every possible pair of
  // locations (paper: "A, B and C are eliminated ... D would be more near
  // ... than any location of these objects").
  double min_max = std::numeric_limits<double>::infinity();
  for (const auto& c : all) min_max = std::min(min_max, c.max_dist);

  PublicNnResult result;
  for (auto& c : all) {
    if (c.min_dist <= min_max) {
      result.candidates.push_back(std::move(c));
    } else {
      ++result.pruned;
    }
  }

  // Probability estimation under uniformity via seeded Monte Carlo: in each
  // trial, draw one location per candidate and award the nearest.
  if (result.candidates.size() == 1) {
    result.candidates.front().probability = 1.0;
  } else if (options.mc_samples > 0) {
    Rng rng(options.seed);
    std::vector<uint64_t> wins(result.candidates.size(), 0);
    for (size_t trial = 0; trial < options.mc_samples; ++trial) {
      double best = std::numeric_limits<double>::infinity();
      size_t winner = 0;
      for (size_t i = 0; i < result.candidates.size(); ++i) {
        const Rect& r = result.candidates[i].region;
        Point p{r.max_x > r.min_x ? rng.Uniform(r.min_x, r.max_x) : r.min_x,
                r.max_y > r.min_y ? rng.Uniform(r.min_y, r.max_y) : r.min_y};
        double d = DistanceSquared(from, p);
        if (d < best) {
          best = d;
          winner = i;
        }
      }
      ++wins[winner];
    }
    for (size_t i = 0; i < result.candidates.size(); ++i) {
      result.candidates[i].probability =
          static_cast<double>(wins[i]) /
          static_cast<double>(options.mc_samples);
    }
  }

  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const NnCandidate& a, const NnCandidate& b) {
              if (a.probability != b.probability)
                return a.probability > b.probability;
              return a.pseudonym < b.pseudonym;
            });
  if (!result.candidates.empty())
    result.most_likely = result.candidates.front().pseudonym;
  return result;
}

Rect HeatmapResult::CellRect(uint32_t cx, uint32_t cy) const {
  double w = space.Width() / resolution;
  double h = space.Height() / resolution;
  return {space.min_x + cx * w, space.min_y + cy * h,
          space.min_x + (cx + 1) * w, space.min_y + (cy + 1) * h};
}

double HeatmapResult::TotalMass() const {
  double total = 0.0;
  for (double v : expected) total += v;
  return total;
}

Result<HeatmapResult> PublicHeatmapQuery(const ObjectStore& store,
                                         uint32_t resolution) {
  if (resolution == 0)
    return Status::InvalidArgument("heatmap resolution must be >= 1");
  HeatmapResult result;
  result.resolution = resolution;
  result.space = store.space();
  result.expected.assign(static_cast<size_t>(resolution) * resolution, 0.0);

  double cw = result.space.Width() / resolution;
  double ch = result.space.Height() / resolution;
  auto cell_of = [&](double v, double lo, double step) {
    auto c = static_cast<int64_t>(std::floor((v - lo) / step));
    return static_cast<uint32_t>(
        std::clamp<int64_t>(c, 0, static_cast<int64_t>(resolution) - 1));
  };

  store.private_index().ForEach([&](const RectEntry& entry) {
    Rect clipped = entry.rect.Intersection(result.space);
    if (clipped.IsEmpty()) return;
    if (entry.rect.Area() <= 0.0) {
      // Exact point: all mass in one cell.
      uint32_t cx = cell_of(clipped.min_x, result.space.min_x, cw);
      uint32_t cy = cell_of(clipped.min_y, result.space.min_y, ch);
      result.expected[static_cast<size_t>(cy) * resolution + cx] += 1.0;
      return;
    }
    uint32_t cx0 = cell_of(clipped.min_x, result.space.min_x, cw);
    uint32_t cx1 = cell_of(clipped.max_x, result.space.min_x, cw);
    uint32_t cy0 = cell_of(clipped.min_y, result.space.min_y, ch);
    uint32_t cy1 = cell_of(clipped.max_y, result.space.min_y, ch);
    for (uint32_t cy = cy0; cy <= cy1; ++cy) {
      for (uint32_t cx = cx0; cx <= cx1; ++cx) {
        Rect cell{result.space.min_x + cx * cw, result.space.min_y + cy * ch,
                  result.space.min_x + (cx + 1) * cw,
                  result.space.min_y + (cy + 1) * ch};
        double overlap = entry.rect.Intersection(cell).Area();
        if (overlap > 0.0) {
          result.expected[static_cast<size_t>(cy) * resolution + cx] +=
              overlap / entry.rect.Area();
        }
      }
    }
  });
  return result;
}

}  // namespace cloakdb
