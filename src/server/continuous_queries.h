// Continuous privacy-aware queries with incremental re-evaluation (paper
// Section 5.3: "processing the continuous queries at the location-based
// server should be done incrementally").
//
// Three continuous query shapes are supported:
//   - continuous private range / NN over public data: registered once,
//     re-evaluated whenever the issuer's cloaked region moves. The
//     processor over-fetches by a slack margin and serves subsequent
//     updates from the cached fetch set while the new requirement stays
//     inside the cached coverage — turning most updates into an in-memory
//     filter instead of an index walk.
//   - continuous public count over private data: registered windows whose
//     probabilistic answer is maintained as a running sum of per-user
//     contributions, updated by O(1) per cloaked-region change instead of
//     re-scanning the window.

#ifndef CLOAKDB_SERVER_CONTINUOUS_QUERIES_H_
#define CLOAKDB_SERVER_CONTINUOUS_QUERIES_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "server/object_store.h"
#include "util/poisson_binomial.h"
#include "util/status.h"

namespace cloakdb {

/// Identifier of a registered continuous query.
using ContinuousQueryId = uint64_t;

/// Self-instrumentation of the incremental machinery.
struct ContinuousStats {
  uint64_t region_updates = 0;       ///< UpdateRegion calls.
  uint64_t full_evaluations = 0;     ///< Index walks (cache miss / refresh).
  uint64_t incremental_filters = 0;  ///< Served from the cached fetch set.
  uint64_t count_delta_updates = 0;  ///< O(1) count-contribution updates.
};

/// Tuning knobs of the incremental evaluator.
struct ContinuousOptions {
  /// Extra fetch margin (in length units) added to every fetch so small
  /// region movements stay inside the cached coverage.
  double slack_margin = 5.0;
};

/// Registry and incremental evaluator of continuous queries.
///
/// The object store must outlive the processor. Public-data mutations made
/// behind the processor's back must be reported through NotifyPublic* so
/// cached fetch sets are refreshed.
class ContinuousQueryProcessor {
 public:
  using Options = ContinuousOptions;

  explicit ContinuousQueryProcessor(const ObjectStore* store,
                                    const Options& options = Options());

  // --- Continuous private queries over public data ------------------------

  /// Registers a continuous range query for an issuer whose current
  /// cloaked region is `region`. Fails like PrivateRangeQuery.
  Result<ContinuousQueryId> RegisterRange(const Rect& region, double radius,
                                          Category category);

  /// Registers a continuous NN query. Fails like PrivateNnQuery.
  Result<ContinuousQueryId> RegisterNn(const Rect& region, Category category);

  /// Re-evaluates a continuous private query for the issuer's new cloaked
  /// region and returns the fresh candidate list (same guarantees as the
  /// one-shot queries).
  Result<std::vector<PublicObject>> UpdateRegion(ContinuousQueryId id,
                                                 const Rect& new_region);

  /// The candidates computed by the last registration/update.
  Result<std::vector<PublicObject>> CurrentCandidates(
      ContinuousQueryId id) const;

  /// Public-data change notifications: invalidate overlapping caches.
  void NotifyPublicInserted(const PublicObject& object);
  void NotifyPublicRemoved(const PublicObject& object);

  // --- Continuous public count over private data --------------------------

  /// Registers a continuous count window. The initial answer is computed
  /// from the store's current private regions.
  Result<ContinuousQueryId> RegisterCount(const Rect& window);

  /// O(1) maintenance when a user's cloaked region changes. Pass an empty
  /// optional for `old_region` on first appearance and for `new_region`
  /// on removal.
  Status NotifyPrivateRegionChanged(ObjectId pseudonym,
                                    const std::optional<Rect>& old_region,
                                    const std::optional<Rect>& new_region);

  /// The current probabilistic answer of a count query (PDF included,
  /// recomputed on demand from the maintained contributions).
  Result<CountAnswer> CurrentCount(ContinuousQueryId id) const;

  /// Drops any registered query.
  Status Unregister(ContinuousQueryId id);

  size_t num_queries() const {
    return range_queries_.size() + nn_queries_.size() +
           count_queries_.size();
  }
  const ContinuousStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ContinuousStats{}; }

 private:
  struct RangeState {
    double radius = 0.0;
    Category category = 0;
    Rect region;                    // issuer's current cloaked region
    Rect coverage;                  // extent of the cached fetch set
    std::vector<PointEntry> fetched;  // objects inside coverage
    std::vector<PublicObject> current;
    bool cache_valid = false;
  };
  struct NnState {
    Category category = 0;
    Rect region;
    Rect coverage;
    std::vector<PointEntry> fetched;
    std::vector<PublicObject> current;
    bool cache_valid = false;
  };
  struct CountState {
    Rect window;
    std::unordered_map<ObjectId, double> contributions;
    double expected = 0.0;
    int certain = 0;
  };

  Status EvaluateRangeFull(RangeState* state);
  Status EvaluateNnFull(NnState* state);
  void FilterRangeFromCache(RangeState* state);
  void FilterNnFromCache(NnState* state);
  std::vector<PublicObject> Materialize(
      const std::vector<PointEntry>& hits) const;
  void InvalidateCachesTouching(const Point& location, Category category);
  double ContributionOf(const Rect& region, const Rect& window) const;

  const ObjectStore* store_;
  Options options_;
  ContinuousQueryId next_id_ = 1;
  std::unordered_map<ContinuousQueryId, RangeState> range_queries_;
  std::unordered_map<ContinuousQueryId, NnState> nn_queries_;
  std::unordered_map<ContinuousQueryId, CountState> count_queries_;
  ContinuousStats stats_;
};

}  // namespace cloakdb

#endif  // CLOAKDB_SERVER_CONTINUOUS_QUERIES_H_
