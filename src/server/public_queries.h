// Public queries over private data (paper Section 6.2.2, Fig. 6).
//
// The query is exact (an administrator's window, a store's own location)
// but the targets are mobile users known only as cloaked rectangles. Under
// the paper's uniformity assumption — the exact location is equally likely
// to be anywhere inside its cloaked region — answers are probabilistic and
// offered in the paper's three formats: absolute expected value, interval,
// and probability density function.

#ifndef CLOAKDB_SERVER_PUBLIC_QUERIES_H_
#define CLOAKDB_SERVER_PUBLIC_QUERIES_H_

#include <vector>

#include "server/object_store.h"
#include "util/poisson_binomial.h"
#include "util/random.h"
#include "util/status.h"

namespace cloakdb {

/// One private object's contribution to a count query.
struct CountContribution {
  ObjectId pseudonym = 0;
  /// P(user inside the window) = overlap area / region area.
  double probability = 0.0;
};

/// Result of a public range-count query (Fig. 6a).
struct PublicCountResult {
  /// All three paper answer formats (expected value, [min, max], PMF).
  CountAnswer answer;
  /// The naive non-zero-size-object answer the paper criticizes: every
  /// intersecting region counts as 1.
  size_t naive_count = 0;
  /// Per-object probabilities, for callers that post-process.
  std::vector<CountContribution> contributions;
  /// Set by the service layer when not every user shard contributed
  /// (deadline or failure mid-fan-out); bit i of `covered_shards` is set
  /// iff shard i's users are counted.
  bool degraded = false;
  uint64_t covered_shards = 0;
};

/// Probabilistic contribution of one cloaked region to a count window
/// (paper Fig. 6a: overlapped area / cloaked area). A degenerate
/// (zero-area) region pins the user exactly, so it contributes 1.0 only
/// when strictly inside the window; a boundary touch is a measure-zero
/// event and contributes 0.0. Shared by the one-shot count, the standing
/// count registries, and the heatmap-free continuous paths so every layer
/// counts identically.
double CountContributionOf(const Rect& region, const Rect& window);

/// Counts mobile users inside `window`. Fails with InvalidArgument on an
/// empty window.
Result<PublicCountResult> PublicRangeCountQuery(const ObjectStore& store,
                                                const Rect& window);

/// One candidate of a public NN query.
struct NnCandidate {
  ObjectId pseudonym = 0;
  Rect region;
  double min_dist = 0.0;  ///< MinDist(query point, region).
  double max_dist = 0.0;  ///< MaxDist(query point, region).
  /// P(this user is the nearest), estimated under uniformity.
  double probability = 0.0;
};

/// Options of a public NN query.
struct PublicNnOptions {
  /// Monte-Carlo samples per probability estimate (the analytic integral
  /// over products of disc/rectangle overlaps has no closed form for
  /// arbitrary configurations). Deterministic given `seed`.
  size_t mc_samples = 4096;
  uint64_t seed = 0x5eedULL;
};

/// Result of a public NN query (Fig. 6b): the paper's three formats are the
/// candidate set, the most-likely candidate, and the probability per
/// candidate.
struct PublicNnResult {
  /// Candidates sorted by descending probability; pruned users (those some
  /// candidate is guaranteed to beat) are absent, mirroring "A, B and C
  /// are eliminated".
  std::vector<NnCandidate> candidates;
  /// Pseudonym of the highest-probability candidate (0 when none).
  ObjectId most_likely = 0;
  /// Number of private objects eliminated by minmax pruning.
  size_t pruned = 0;
};

/// Finds the probable nearest mobile user to `from` (e.g. the e-coupon gas
/// station). Fails with NotFound when no private data is stored.
Result<PublicNnResult> PublicNnQuery(const ObjectStore& store,
                                     const Point& from,
                                     const PublicNnOptions& options = {});

/// Expected-density heatmap over private data: Fig. 6a's probabilistic
/// count evaluated for every cell of a resolution x resolution grid (the
/// "live traffic map" an administrator renders without learning any exact
/// location).
struct HeatmapResult {
  uint32_t resolution = 0;
  Rect space;
  /// Row-major expected user count per cell; each user's unit of mass is
  /// split across cells by overlap fraction, so the total equals the
  /// expected number of users inside `space`.
  std::vector<double> expected;
  /// Service-layer degradation markers; see PublicCountResult.
  bool degraded = false;
  uint64_t covered_shards = 0;

  double CellValue(uint32_t cx, uint32_t cy) const {
    return expected[static_cast<size_t>(cy) * resolution + cx];
  }
  Rect CellRect(uint32_t cx, uint32_t cy) const;
  double TotalMass() const;
};

/// Computes the heatmap at `resolution` >= 1 cells per side over the
/// store's space. Fails with InvalidArgument on resolution 0.
Result<HeatmapResult> PublicHeatmapQuery(const ObjectStore& store,
                                         uint32_t resolution);

}  // namespace cloakdb

#endif  // CLOAKDB_SERVER_PUBLIC_QUERIES_H_
