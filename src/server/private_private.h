// Private queries over private data (paper Section 6.1: "private queries
// over private data can be reduced to any of the above two query types").
//
// Both sides are uncertain: the querying user is a cloaked rectangle AND
// every target is a cloaked rectangle. The reduction combines the two
// machineries: rect-rect distance bounds give sound candidate sets (the
// private-query side), and the uniformity assumption gives probabilistic
// answers (the public-query side).

#ifndef CLOAKDB_SERVER_PRIVATE_PRIVATE_H_
#define CLOAKDB_SERVER_PRIVATE_PRIVATE_H_

#include <vector>

#include "server/object_store.h"
#include "util/random.h"
#include "util/status.h"

namespace cloakdb {

/// One target user's classification in a private-over-private range query.
struct PrivateRangeMatch {
  ObjectId pseudonym = 0;
  Rect region;
  /// True when every (querier, target) location pair is within range —
  /// MaxDist(querier region, target region) <= radius.
  bool certain = false;
  /// P(distance <= radius) under uniformity (Monte-Carlo estimate; exactly
  /// 1 for certain matches and never 0 for returned candidates).
  double probability = 0.0;
};

/// Result of "which mobile users are within r of me", asked by a cloaked
/// user about cloaked users.
struct PrivatePrivateRangeResult {
  /// All targets that *can* be within range (MinDist <= radius), i.e. the
  /// sound candidate set, with per-target certainty/probability.
  std::vector<PrivateRangeMatch> matches;
  /// Count interval: [#certain, #candidates].
  int min_count = 0;
  int max_count = 0;
  /// Expected number of in-range targets: sum of probabilities.
  double expected_count = 0.0;
};

/// Options shared by the private-over-private queries.
struct PrivatePrivateOptions {
  size_t mc_samples = 2048;   ///< Monte-Carlo trials per probability.
  uint64_t seed = 0xAB5EEDULL;
  /// Pseudonym of the querier, excluded from the targets (a user is not
  /// her own neighbor); 0 = exclude nothing.
  ObjectId exclude = 0;
};

/// Finds cloaked users within `radius` of the cloaked querier. Fails with
/// InvalidArgument on an empty region or non-positive radius.
Result<PrivatePrivateRangeResult> PrivatePrivateRangeQuery(
    const ObjectStore& store, const Rect& querier, double radius,
    const PrivatePrivateOptions& options = {});

/// One candidate of a private-over-private NN query.
struct PrivateNnMatch {
  ObjectId pseudonym = 0;
  Rect region;
  double min_dist = 0.0;  ///< MinDist(querier region, target region).
  double max_dist = 0.0;  ///< MaxDist(querier region, target region).
  /// P(this target is the nearest) under uniformity on both rectangles.
  double probability = 0.0;
};

/// Result of "who is my nearest fellow user", both sides cloaked.
struct PrivatePrivateNnResult {
  /// Candidates sorted by descending probability. A target survives iff no
  /// other target is guaranteed nearer for every possible pair of
  /// locations (MaxDist(other) < MinDist(target) prunes).
  std::vector<PrivateNnMatch> candidates;
  ObjectId most_likely = 0;
  size_t pruned = 0;
};

/// Finds the probable nearest cloaked user to the cloaked querier. Fails
/// with InvalidArgument on an empty region and NotFound when no other
/// private data exists.
Result<PrivatePrivateNnResult> PrivatePrivateNnQuery(
    const ObjectStore& store, const Rect& querier,
    const PrivatePrivateOptions& options = {});

}  // namespace cloakdb

#endif  // CLOAKDB_SERVER_PRIVATE_PRIVATE_H_
