#include "server/private_queries.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/distance.h"

namespace cloakdb {

namespace {

// Fetches the full PublicObject records for index hits.
std::vector<PublicObject> Materialize(const ObjectStore& store,
                                      const std::vector<PointEntry>& hits) {
  std::vector<PublicObject> out;
  out.reserve(hits.size());
  for (const auto& h : hits) {
    auto obj = store.GetPublicObject(h.id);
    // Index and metadata are maintained together; a miss is an invariant
    // violation surfaced loudly in tests.
    if (obj.ok()) out.push_back(std::move(obj).value());
  }
  return out;
}

}  // namespace

Result<PrivateRangeResult> PrivateRangeQuery(
    const ObjectStore& store, const Rect& cloaked, double radius,
    Category category, const PrivateRangeOptions& options) {
  if (cloaked.IsEmpty())
    return Status::InvalidArgument("cloaked region must be non-empty");
  if (!(radius > 0.0))
    return Status::InvalidArgument("query radius must be positive");
  auto index = store.CategoryIndex(category);
  if (!index.ok()) return index.status();

  PrivateRangeResult result;
  result.extended_region = cloaked.Expanded(radius);
  auto hits = index.value()->RangeSearch(result.extended_region);

  if (options.exact_rounded_rect) {
    // Exact region is the Minkowski sum of R and a radius-r disc (the
    // paper's rounded rectangle): object qualifies iff MinDist(o, R) <= r.
    size_t before = hits.size();
    hits.erase(std::remove_if(hits.begin(), hits.end(),
                              [&](const PointEntry& e) {
                                return MinDist(e.location, cloaked) > radius;
                              }),
               hits.end());
    result.rounded_rect_pruned = before - hits.size();
  }
  result.candidates = Materialize(store, hits);
  return result;
}

Result<PrivateNnResult> PrivateNnQuery(const ObjectStore& store,
                                       const Rect& cloaked,
                                       Category category) {
  if (cloaked.IsEmpty())
    return Status::InvalidArgument("cloaked region must be non-empty");
  auto index_or = store.CategoryIndex(category);
  if (!index_or.ok()) return index_or.status();
  const RTree& index = *index_or.value();
  if (index.size() == 0)
    return Status::NotFound("no public objects in category");

  // Conservative fetch radius M: for any p in R, the distance to its NN is
  // at most d(p, c) + d(c, NN(c)) for p's nearest corner c, and d(p, c) is
  // at most half the diagonal. Any object that can be an NN therefore has
  // MinDist(o, R) <= M.
  double max_corner_nn = 0.0;
  for (const Point& corner : cloaked.Corners()) {
    max_corner_nn = std::max(max_corner_nn, index.NearestDistance(corner));
  }
  double half_diag = 0.5 * std::sqrt(cloaked.Width() * cloaked.Width() +
                                     cloaked.Height() * cloaked.Height());
  PrivateNnResult result;
  result.fetch_radius = max_corner_nn + half_diag;

  auto hits = index.RangeSearch(cloaked.Expanded(result.fetch_radius));
  // The expanded MBR over-approximates the disc sum; drop the corners.
  hits.erase(std::remove_if(hits.begin(), hits.end(),
                            [&](const PointEntry& e) {
                              return MinDist(e.location, cloaked) >
                                     result.fetch_radius;
                            }),
             hits.end());

  // Dominance pruning: keep o iff MinDist(o, R) <= min_o' MaxDist(o', R).
  // Survivors are exactly the objects no other object is guaranteed to
  // beat for every possible user position.
  double min_max_dist = std::numeric_limits<double>::infinity();
  for (const auto& h : hits) {
    min_max_dist = std::min(min_max_dist, MaxDist(h.location, cloaked));
  }
  size_t before = hits.size();
  hits.erase(std::remove_if(hits.begin(), hits.end(),
                            [&](const PointEntry& e) {
                              return MinDist(e.location, cloaked) >
                                     min_max_dist;
                            }),
             hits.end());
  result.dominance_pruned = before - hits.size();
  result.candidates = Materialize(store, hits);
  return result;
}

Result<PrivateKnnResult> PrivateKnnQuery(const ObjectStore& store,
                                         const Rect& cloaked, size_t k,
                                         Category category) {
  if (cloaked.IsEmpty())
    return Status::InvalidArgument("cloaked region must be non-empty");
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  auto index_or = store.CategoryIndex(category);
  if (!index_or.ok()) return index_or.status();
  const RTree& index = *index_or.value();
  if (index.size() == 0)
    return Status::NotFound("no public objects in category");

  PrivateKnnResult result;
  if (index.size() <= k) {
    // Everything is an answer candidate by pigeonhole.
    auto hits = index.RangeSearch(
        Rect(-std::numeric_limits<double>::infinity(),
             -std::numeric_limits<double>::infinity(),
             std::numeric_limits<double>::infinity(),
             std::numeric_limits<double>::infinity()));
    result.candidates = Materialize(store, hits);
    return result;
  }

  // Fetch bound: for any p in R and its nearest corner c, the k objects
  // nearest to c all lie within d(p, c) + d(c, kth-NN(c)), so the k-th NN
  // distance of p is at most half_diag + max_c d(c, kth-NN(c)); every
  // possible answer object has MinDist(o, R) below that.
  double max_corner_kth = 0.0;
  for (const Point& corner : cloaked.Corners()) {
    auto knn = index.KNearest(corner, k);
    max_corner_kth = std::max(
        max_corner_kth, Distance(corner, knn.back().location));
  }
  double half_diag = 0.5 * std::sqrt(cloaked.Width() * cloaked.Width() +
                                     cloaked.Height() * cloaked.Height());
  result.fetch_radius = max_corner_kth + half_diag;

  auto hits = index.RangeSearch(cloaked.Expanded(result.fetch_radius));
  hits.erase(std::remove_if(hits.begin(), hits.end(),
                            [&](const PointEntry& e) {
                              return MinDist(e.location, cloaked) >
                                     result.fetch_radius;
                            }),
             hits.end());

  // Dominance pruning: o cannot be among any point's k nearest when at
  // least k objects are guaranteed nearer for every possible location,
  // i.e. have MaxDist(o', R) < MinDist(o, R). (o never dominates itself:
  // MaxDist >= MinDist.)
  std::vector<double> max_dists;
  max_dists.reserve(hits.size());
  for (const auto& h : hits) {
    max_dists.push_back(MaxDist(h.location, cloaked));
  }
  std::sort(max_dists.begin(), max_dists.end());
  size_t before = hits.size();
  hits.erase(std::remove_if(
                 hits.begin(), hits.end(),
                 [&](const PointEntry& e) {
                   double min_d = MinDist(e.location, cloaked);
                   size_t closer = static_cast<size_t>(
                       std::lower_bound(max_dists.begin(), max_dists.end(),
                                        min_d) -
                       max_dists.begin());
                   return closer >= k;
                 }),
             hits.end());
  result.dominance_pruned = before - hits.size();
  result.candidates = Materialize(store, hits);
  return result;
}

std::vector<PublicObject> RefineKnnCandidates(
    const std::vector<PublicObject>& candidates, const Point& true_location,
    size_t k) {
  std::vector<PublicObject> sorted = candidates;
  std::sort(sorted.begin(), sorted.end(),
            [&](const PublicObject& a, const PublicObject& b) {
              double da = DistanceSquared(a.location, true_location);
              double db = DistanceSquared(b.location, true_location);
              if (da != db) return da < db;
              return a.id < b.id;
            });
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

std::vector<PublicObject> RefineRangeCandidates(
    const std::vector<PublicObject>& candidates, const Point& true_location,
    double radius) {
  std::vector<PublicObject> out;
  for (const auto& c : candidates) {
    if (Distance(c.location, true_location) <= radius) out.push_back(c);
  }
  return out;
}

Result<PublicObject> RefineNnCandidates(
    const std::vector<PublicObject>& candidates, const Point& true_location) {
  if (candidates.empty())
    return Status::NotFound("empty candidate list");
  const PublicObject* best = &candidates.front();
  double best_d = DistanceSquared(best->location, true_location);
  for (const auto& c : candidates) {
    double d = DistanceSquared(c.location, true_location);
    if (d < best_d || (d == best_d && c.id < best->id)) {
      best = &c;
      best_d = d;
    }
  }
  return *best;
}

}  // namespace cloakdb
