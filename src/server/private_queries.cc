#include "server/private_queries.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/distance.h"

namespace cloakdb {

namespace {

// Fetches the full PublicObject records for index hits.
std::vector<PublicObject> Materialize(const ObjectStore& store,
                                      const std::vector<PointEntry>& hits) {
  std::vector<PublicObject> out;
  out.reserve(hits.size());
  for (const auto& h : hits) {
    auto obj = store.GetPublicObject(h.id);
    // Index and metadata are maintained together; a miss is an invariant
    // violation surfaced loudly in tests.
    if (obj.ok()) out.push_back(std::move(obj).value());
  }
  return out;
}

// Half the diagonal of a rectangle: the worst-case distance from a point
// inside to its nearest corner, the slack term of both fetch bounds.
double HalfDiagonal(const Rect& rect) {
  return 0.5 * std::sqrt(rect.Width() * rect.Width() +
                         rect.Height() * rect.Height());
}

// Dominance pruning: keep o iff MinDist(o, R) <= min_o' MaxDist(o', R).
// Survivors are exactly the objects no other object is guaranteed to beat
// for every possible user position. Shared between the isolated query
// (PointEntry hits) and superset refinement (PublicObject hits) so both
// paths apply the same predicate by construction. Returns the prune count.
template <typename T>
size_t DominancePrune(std::vector<T>* hits, const Rect& cloaked) {
  double min_max_dist = std::numeric_limits<double>::infinity();
  for (const auto& h : *hits) {
    min_max_dist = std::min(min_max_dist, MaxDist(h.location, cloaked));
  }
  size_t before = hits->size();
  hits->erase(std::remove_if(hits->begin(), hits->end(),
                             [&](const T& e) {
                               return MinDist(e.location, cloaked) >
                                      min_max_dist;
                             }),
              hits->end());
  return before - hits->size();
}

// k-dominance pruning: o cannot be among any point's k nearest when at
// least k objects are guaranteed nearer for every possible location, i.e.
// have MaxDist(o', R) < MinDist(o, R). (o never dominates itself:
// MaxDist >= MinDist.) Returns the prune count.
template <typename T>
size_t KDominancePrune(std::vector<T>* hits, const Rect& cloaked, size_t k) {
  std::vector<double> max_dists;
  max_dists.reserve(hits->size());
  for (const auto& h : *hits) {
    max_dists.push_back(MaxDist(h.location, cloaked));
  }
  std::sort(max_dists.begin(), max_dists.end());
  size_t before = hits->size();
  hits->erase(std::remove_if(
                  hits->begin(), hits->end(),
                  [&](const T& e) {
                    double min_d = MinDist(e.location, cloaked);
                    size_t closer = static_cast<size_t>(
                        std::lower_bound(max_dists.begin(), max_dists.end(),
                                         min_d) -
                        max_dists.begin());
                    return closer >= k;
                  }),
              hits->end());
  return before - hits->size();
}

}  // namespace

Result<PrivateRangeResult> PrivateRangeQuery(
    const ObjectStore& store, const Rect& cloaked, double radius,
    Category category, const PrivateRangeOptions& options) {
  if (cloaked.IsEmpty())
    return Status::InvalidArgument("cloaked region must be non-empty");
  if (!(radius > 0.0))
    return Status::InvalidArgument("query radius must be positive");
  auto index = store.CategoryIndex(category);
  if (!index.ok()) return index.status();

  PrivateRangeResult result;
  result.extended_region = cloaked.Expanded(radius);
  auto hits = index.value()->RangeSearch(result.extended_region);

  if (options.exact_rounded_rect) {
    // Exact region is the Minkowski sum of R and a radius-r disc (the
    // paper's rounded rectangle): object qualifies iff MinDist(o, R) <= r.
    size_t before = hits.size();
    hits.erase(std::remove_if(hits.begin(), hits.end(),
                              [&](const PointEntry& e) {
                                return MinDist(e.location, cloaked) > radius;
                              }),
               hits.end());
    result.rounded_rect_pruned = before - hits.size();
  }
  result.candidates = Materialize(store, hits);
  return result;
}

Result<double> NnFetchRadius(const ObjectStore& store, const Rect& cloaked,
                             Category category) {
  if (cloaked.IsEmpty())
    return Status::InvalidArgument("cloaked region must be non-empty");
  auto index_or = store.CategoryIndex(category);
  if (!index_or.ok()) return index_or.status();
  const PublicCategoryIndex& index = *index_or.value();
  if (index.size() == 0)
    return Status::NotFound("no public objects in category");

  // Conservative fetch radius M: for any p in R, the distance to its NN is
  // at most d(p, c) + d(c, NN(c)) for p's nearest corner c, and d(p, c) is
  // at most half the diagonal. Any object that can be an NN therefore has
  // MinDist(o, R) <= M.
  double max_corner_nn = 0.0;
  for (const Point& corner : cloaked.Corners()) {
    max_corner_nn = std::max(max_corner_nn, index.NearestDistance(corner));
  }
  return max_corner_nn + HalfDiagonal(cloaked);
}

Result<double> KnnFetchRadius(const ObjectStore& store, const Rect& cloaked,
                              size_t k, Category category) {
  if (cloaked.IsEmpty())
    return Status::InvalidArgument("cloaked region must be non-empty");
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  auto index_or = store.CategoryIndex(category);
  if (!index_or.ok()) return index_or.status();
  const PublicCategoryIndex& index = *index_or.value();
  if (index.size() == 0)
    return Status::NotFound("no public objects in category");
  // Everything is an answer candidate by pigeonhole; no bounded probe can
  // serve this case, signalled as radius 0.
  if (index.size() <= k) return 0.0;

  // Fetch bound: for any p in R and its nearest corner c, the k objects
  // nearest to c all lie within d(p, c) + d(c, kth-NN(c)), so the k-th NN
  // distance of p is at most half_diag + max_c d(c, kth-NN(c)); every
  // possible answer object has MinDist(o, R) below that.
  double max_corner_kth = 0.0;
  for (const Point& corner : cloaked.Corners()) {
    auto knn = index.KNearest(corner, k);
    max_corner_kth =
        std::max(max_corner_kth, Distance(corner, knn.back().location));
  }
  return max_corner_kth + HalfDiagonal(cloaked);
}

Result<PrivateNnResult> PrivateNnQuery(const ObjectStore& store,
                                       const Rect& cloaked,
                                       Category category) {
  auto fetch = NnFetchRadius(store, cloaked, category);
  if (!fetch.ok()) return fetch.status();
  const PublicCategoryIndex& index = *store.CategoryIndex(category).value();

  PrivateNnResult result;
  result.fetch_radius = fetch.value();

  auto hits = index.RangeSearch(cloaked.Expanded(result.fetch_radius));
  // The expanded MBR over-approximates the disc sum; drop the corners.
  hits.erase(std::remove_if(hits.begin(), hits.end(),
                            [&](const PointEntry& e) {
                              return MinDist(e.location, cloaked) >
                                     result.fetch_radius;
                            }),
             hits.end());
  result.dominance_pruned = DominancePrune(&hits, cloaked);
  result.candidates = Materialize(store, hits);
  return result;
}

Result<PrivateKnnResult> PrivateKnnQuery(const ObjectStore& store,
                                         const Rect& cloaked, size_t k,
                                         Category category) {
  auto fetch = KnnFetchRadius(store, cloaked, k, category);
  if (!fetch.ok()) return fetch.status();
  const PublicCategoryIndex& index = *store.CategoryIndex(category).value();

  PrivateKnnResult result;
  if (index.size() <= k) {
    // Everything is an answer candidate by pigeonhole.
    auto hits = index.RangeSearch(
        Rect(-std::numeric_limits<double>::infinity(),
             -std::numeric_limits<double>::infinity(),
             std::numeric_limits<double>::infinity(),
             std::numeric_limits<double>::infinity()));
    result.candidates = Materialize(store, hits);
    return result;
  }
  result.fetch_radius = fetch.value();

  auto hits = index.RangeSearch(cloaked.Expanded(result.fetch_radius));
  hits.erase(std::remove_if(hits.begin(), hits.end(),
                            [&](const PointEntry& e) {
                              return MinDist(e.location, cloaked) >
                                     result.fetch_radius;
                            }),
             hits.end());
  result.dominance_pruned = KDominancePrune(&hits, cloaked, k);
  result.candidates = Materialize(store, hits);
  return result;
}

Result<std::vector<PublicObject>> SharedProbeQuery(const ObjectStore& store,
                                                   const Rect& probe_region,
                                                   Category category) {
  if (probe_region.IsEmpty())
    return Status::InvalidArgument("probe region must be non-empty");
  auto index = store.CategoryIndex(category);
  if (!index.ok()) return index.status();
  return Materialize(store, index.value()->RangeSearch(probe_region));
}

Result<PrivateRangeResult> PrivateRangeFromSuperset(
    const ObjectStore& store, const std::vector<PublicObject>& superset,
    const Rect& cloaked, double radius, Category category,
    const PrivateRangeOptions& options) {
  if (cloaked.IsEmpty())
    return Status::InvalidArgument("cloaked region must be non-empty");
  if (!(radius > 0.0))
    return Status::InvalidArgument("query radius must be positive");
  // The category check keeps superset refinement status-identical to the
  // isolated query (NotFound on an absent category even when the shared
  // probe predates its removal).
  auto index = store.CategoryIndex(category);
  if (!index.ok()) return index.status();

  PrivateRangeResult result;
  result.extended_region = cloaked.Expanded(radius);
  for (const PublicObject& o : superset) {
    // Same two-stage filter as the isolated query: extended-MBR fetch,
    // then the exact rounded-rectangle test — so the prune counter matches
    // the isolated run even though the superset is wider.
    if (!result.extended_region.Contains(o.location)) continue;
    if (options.exact_rounded_rect && MinDist(o.location, cloaked) > radius) {
      ++result.rounded_rect_pruned;
      continue;
    }
    result.candidates.push_back(o);
  }
  return result;
}

Result<PrivateNnResult> PrivateNnFromSuperset(
    const ObjectStore& store, const std::vector<PublicObject>& superset,
    const Rect& cloaked, Category category, double known_fetch_radius) {
  PrivateNnResult result;
  if (known_fetch_radius > 0.0) {
    result.fetch_radius = known_fetch_radius;
  } else {
    auto fetch = NnFetchRadius(store, cloaked, category);
    if (!fetch.ok()) return fetch.status();
    result.fetch_radius = fetch.value();
  }
  // An isolated candidate satisfies MinDist <= fetch_radius, which already
  // implies membership in the expanded MBR — one predicate suffices here.
  std::vector<PublicObject> hits;
  for (const PublicObject& o : superset) {
    if (MinDist(o.location, cloaked) <= result.fetch_radius)
      hits.push_back(o);
  }
  result.dominance_pruned = DominancePrune(&hits, cloaked);
  result.candidates = std::move(hits);
  return result;
}

Result<PrivateKnnResult> PrivateKnnFromSuperset(
    const ObjectStore& store, const std::vector<PublicObject>& superset,
    const Rect& cloaked, size_t k, Category category,
    double known_fetch_radius) {
  PrivateKnnResult result;
  if (known_fetch_radius > 0.0) {
    result.fetch_radius = known_fetch_radius;
  } else {
    auto fetch = KnnFetchRadius(store, cloaked, k, category);
    if (!fetch.ok()) return fetch.status();
    if (fetch.value() == 0.0) {
      // <= k objects in the category: the bounded superset cannot prove
      // completeness, so take the pigeonhole path against the index itself.
      return PrivateKnnQuery(store, cloaked, k, category);
    }
    result.fetch_radius = fetch.value();
  }
  std::vector<PublicObject> hits;
  for (const PublicObject& o : superset) {
    if (MinDist(o.location, cloaked) <= result.fetch_radius)
      hits.push_back(o);
  }
  result.dominance_pruned = KDominancePrune(&hits, cloaked, k);
  result.candidates = std::move(hits);
  return result;
}

std::vector<PublicObject> RefineKnnCandidates(
    const std::vector<PublicObject>& candidates, const Point& true_location,
    size_t k) {
  std::vector<PublicObject> sorted = candidates;
  std::sort(sorted.begin(), sorted.end(),
            [&](const PublicObject& a, const PublicObject& b) {
              double da = DistanceSquared(a.location, true_location);
              double db = DistanceSquared(b.location, true_location);
              if (da != db) return da < db;
              return a.id < b.id;
            });
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

std::vector<PublicObject> RefineRangeCandidates(
    const std::vector<PublicObject>& candidates, const Point& true_location,
    double radius) {
  std::vector<PublicObject> out;
  for (const auto& c : candidates) {
    if (Distance(c.location, true_location) <= radius) out.push_back(c);
  }
  return out;
}

Result<PublicObject> RefineNnCandidates(
    const std::vector<PublicObject>& candidates, const Point& true_location) {
  if (candidates.empty())
    return Status::NotFound("empty candidate list");
  const PublicObject* best = &candidates.front();
  double best_d = DistanceSquared(best->location, true_location);
  for (const auto& c : candidates) {
    double d = DistanceSquared(c.location, true_location);
    if (d < best_d || (d == best_d && c.id < best->id)) {
      best = &c;
      best_d = d;
    }
  }
  return *best;
}

}  // namespace cloakdb
