#include "server/private_private.h"

#include <algorithm>
#include <limits>

#include "geom/distance.h"

namespace cloakdb {

namespace {

// Uniform sample inside a (possibly degenerate) rectangle.
Point SampleIn(const Rect& r, Rng* rng) {
  return {r.max_x > r.min_x ? rng->Uniform(r.min_x, r.max_x) : r.min_x,
          r.max_y > r.min_y ? rng->Uniform(r.min_y, r.max_y) : r.min_y};
}

}  // namespace

Result<PrivatePrivateRangeResult> PrivatePrivateRangeQuery(
    const ObjectStore& store, const Rect& querier, double radius,
    const PrivatePrivateOptions& options) {
  if (querier.IsEmpty())
    return Status::InvalidArgument("querier region must be non-empty");
  if (!(radius > 0.0))
    return Status::InvalidArgument("query radius must be positive");

  PrivatePrivateRangeResult result;
  // Sound candidate filter: a target can be within range iff the regions
  // can be within `radius` of each other.
  auto candidates =
      store.private_index().IntersectingRects(querier.Expanded(radius));
  Rng rng(options.seed);
  for (const auto& entry : candidates) {
    if (entry.id == options.exclude) continue;
    if (MinDist(entry.rect, querier) > radius) continue;
    PrivateRangeMatch match;
    match.pseudonym = entry.id;
    match.region = entry.rect;
    match.certain = MaxDist(entry.rect, querier) <= radius;
    if (match.certain) {
      match.probability = 1.0;
    } else if (options.mc_samples > 0) {
      size_t hits = 0;
      for (size_t t = 0; t < options.mc_samples; ++t) {
        Point q = SampleIn(querier, &rng);
        Point u = SampleIn(entry.rect, &rng);
        if (Distance(q, u) <= radius) ++hits;
      }
      match.probability =
          static_cast<double>(hits) / static_cast<double>(options.mc_samples);
    }
    result.expected_count += match.probability;
    if (match.certain) ++result.min_count;
    ++result.max_count;
    result.matches.push_back(std::move(match));
  }
  return result;
}

Result<PrivatePrivateNnResult> PrivatePrivateNnQuery(
    const ObjectStore& store, const Rect& querier,
    const PrivatePrivateOptions& options) {
  if (querier.IsEmpty())
    return Status::InvalidArgument("querier region must be non-empty");

  std::vector<PrivateNnMatch> all;
  store.private_index().ForEach([&](const RectEntry& entry) {
    if (entry.id == options.exclude) return;
    PrivateNnMatch match;
    match.pseudonym = entry.id;
    match.region = entry.rect;
    match.min_dist = MinDist(entry.rect, querier);
    match.max_dist = MaxDist(entry.rect, querier);
    all.push_back(std::move(match));
  });
  if (all.empty())
    return Status::NotFound("no other private data stored");

  // Prune targets some other target beats for every location pair.
  double min_max = std::numeric_limits<double>::infinity();
  for (const auto& m : all) min_max = std::min(min_max, m.max_dist);
  PrivatePrivateNnResult result;
  for (auto& m : all) {
    if (m.min_dist <= min_max) {
      result.candidates.push_back(std::move(m));
    } else {
      ++result.pruned;
    }
  }

  if (result.candidates.size() == 1) {
    result.candidates.front().probability = 1.0;
  } else if (options.mc_samples > 0) {
    Rng rng(options.seed);
    std::vector<uint64_t> wins(result.candidates.size(), 0);
    for (size_t t = 0; t < options.mc_samples; ++t) {
      Point q = SampleIn(querier, &rng);
      double best = std::numeric_limits<double>::infinity();
      size_t winner = 0;
      for (size_t i = 0; i < result.candidates.size(); ++i) {
        Point u = SampleIn(result.candidates[i].region, &rng);
        double d = DistanceSquared(q, u);
        if (d < best) {
          best = d;
          winner = i;
        }
      }
      ++wins[winner];
    }
    for (size_t i = 0; i < result.candidates.size(); ++i) {
      result.candidates[i].probability =
          static_cast<double>(wins[i]) /
          static_cast<double>(options.mc_samples);
    }
  }

  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const PrivateNnMatch& a, const PrivateNnMatch& b) {
              if (a.probability != b.probability)
                return a.probability > b.probability;
              return a.pseudonym < b.pseudonym;
            });
  if (!result.candidates.empty())
    result.most_likely = result.candidates.front().pseudonym;
  return result;
}

}  // namespace cloakdb
