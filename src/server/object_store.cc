#include "server/object_store.h"

#include <algorithm>

namespace cloakdb {

ObjectStore::ObjectStore(const Rect& space, uint32_t rect_grid_cells,
                         const PublicCategoryIndex::Config& public_index)
    : space_(space),
      public_index_(public_index),
      private_index_(space, rect_grid_cells) {}

Status ObjectStore::AddPublicObject(const PublicObject& object) {
  if (public_meta_.count(object.id) > 0)
    return Status::AlreadyExists("public object id already stored");
  auto [it, inserted] = public_indexes_.try_emplace(
      object.category, PublicCategoryIndex(public_index_));
  (void)inserted;
  CLOAKDB_RETURN_IF_ERROR(it->second.Insert(object.id, object.location));
  public_meta_.emplace(object.id, object);
  return Status::OK();
}

Status ObjectStore::RemovePublicObject(ObjectId id) {
  auto it = public_meta_.find(id);
  if (it == public_meta_.end())
    return Status::NotFound("public object id not stored");
  PublicCategoryIndex& index = public_indexes_.at(it->second.category);
  CLOAKDB_RETURN_IF_ERROR(index.Remove(id));
  if (index.size() == 0) public_indexes_.erase(it->second.category);
  public_meta_.erase(it);
  return Status::OK();
}

Status ObjectStore::MovePublicObject(ObjectId id, const Point& new_location) {
  auto it = public_meta_.find(id);
  if (it == public_meta_.end())
    return Status::NotFound("public object id not stored");
  PublicCategoryIndex& index = public_indexes_.at(it->second.category);
  CLOAKDB_RETURN_IF_ERROR(index.Remove(id));
  CLOAKDB_RETURN_IF_ERROR(index.Insert(id, new_location));
  it->second.location = new_location;
  return Status::OK();
}

Status ObjectStore::BulkLoadCategory(Category category,
                                     std::vector<PublicObject> objects) {
  // Reject ids that already exist in *other* categories.
  for (const auto& o : objects) {
    auto it = public_meta_.find(o.id);
    if (it != public_meta_.end() && it->second.category != category)
      return Status::AlreadyExists(
          "bulk-load id already stored under another category");
  }
  // Drop the old category content.
  for (auto it = public_meta_.begin(); it != public_meta_.end();) {
    if (it->second.category == category) {
      it = public_meta_.erase(it);
    } else {
      ++it;
    }
  }
  std::vector<PointEntry> entries;
  entries.reserve(objects.size());
  for (const auto& o : objects) entries.push_back({o.id, o.location});
  PublicCategoryIndex tree{public_index_};
  CLOAKDB_RETURN_IF_ERROR(tree.BulkLoad(std::move(entries)));
  if (tree.size() == 0) {
    public_indexes_.erase(category);
  } else {
    public_indexes_.insert_or_assign(category, std::move(tree));
  }
  for (auto& o : objects) {
    PublicObject copy = std::move(o);
    copy.category = category;
    ObjectId id = copy.id;
    public_meta_.insert_or_assign(id, std::move(copy));
  }
  return Status::OK();
}

Status ObjectStore::AdoptCategorySealed(
    Category category, StaticRTree sealed,
    const std::vector<PublicObject>& objects) {
  if (public_index_.mode != PublicIndexMode::kStatic)
    return Status::FailedPrecondition(
        "adoption requires static public-index mode");
  for (const auto& o : objects) {
    auto it = public_meta_.find(o.id);
    if (it != public_meta_.end() && it->second.category != category)
      return Status::AlreadyExists(
          "adopted id already stored under another category");
  }
  std::vector<PointEntry> expect;
  expect.reserve(objects.size());
  for (const auto& o : objects) expect.push_back({o.id, o.location});
  PublicCategoryIndex tree{public_index_};
  // Verify + reconcile before touching the store, so a rejected sidecar
  // leaves everything as it was.
  CLOAKDB_RETURN_IF_ERROR(tree.AdoptSealed(std::move(sealed), expect));
  for (auto it = public_meta_.begin(); it != public_meta_.end();) {
    if (it->second.category == category) {
      it = public_meta_.erase(it);
    } else {
      ++it;
    }
  }
  if (tree.size() == 0) {
    public_indexes_.erase(category);
  } else {
    public_indexes_.insert_or_assign(category, std::move(tree));
  }
  for (const auto& o : objects) {
    PublicObject copy = o;
    copy.category = category;
    public_meta_.insert_or_assign(copy.id, std::move(copy));
  }
  return Status::OK();
}

Result<PublicObject> ObjectStore::GetPublicObject(ObjectId id) const {
  auto it = public_meta_.find(id);
  if (it == public_meta_.end())
    return Status::NotFound("public object id not stored");
  return it->second;
}

Result<const PublicCategoryIndex*> ObjectStore::CategoryIndex(
    Category category) const {
  auto it = public_indexes_.find(category);
  if (it == public_indexes_.end())
    return Status::NotFound("no public objects in category");
  return &it->second;
}

PublicCategoryIndex* ObjectStore::MutableCategoryIndex(Category category) {
  auto it = public_indexes_.find(category);
  return it == public_indexes_.end() ? nullptr : &it->second;
}

std::vector<Category> ObjectStore::Categories() const {
  std::vector<Category> out;
  out.reserve(public_indexes_.size());
  for (const auto& [cat, tree] : public_indexes_) out.push_back(cat);
  return out;
}

Status ObjectStore::UpsertPrivateRegion(ObjectId pseudonym,
                                        const Rect& region) {
  if (region.IsEmpty())
    return Status::InvalidArgument("cloaked region must be non-empty");
  return private_index_.Upsert(pseudonym, region);
}

Status ObjectStore::RemovePrivateRegion(ObjectId pseudonym) {
  return private_index_.Remove(pseudonym);
}

Result<Rect> ObjectStore::GetPrivateRegion(ObjectId pseudonym) const {
  return private_index_.Get(pseudonym);
}

std::vector<PublicObject> ObjectStore::AllPublicObjects() const {
  std::vector<PublicObject> out;
  out.reserve(public_meta_.size());
  for (const auto& [id, object] : public_meta_) out.push_back(object);
  std::sort(out.begin(), out.end(),
            [](const PublicObject& a, const PublicObject& b) {
              return a.id < b.id;
            });
  return out;
}

std::vector<std::pair<ObjectId, Rect>> ObjectStore::AllPrivateRegions() const {
  std::vector<std::pair<ObjectId, Rect>> out;
  out.reserve(private_index_.size());
  private_index_.ForEach(
      [&out](const RectEntry& e) { out.emplace_back(e.id, e.rect); });
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace cloakdb
