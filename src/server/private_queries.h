// Private queries over public data (paper Section 6.2.1, Fig. 5).
//
// The querying user is known to the server only as a cloaked rectangle R.
// The server returns a *candidate list* that is guaranteed to contain the
// exact answer for every possible location inside R; the mobile client then
// refines the list locally against her true location. The server-side
// guarantee / client-side refinement split is the paper's trade-off between
// transmission cost and privacy.

#ifndef CLOAKDB_SERVER_PRIVATE_QUERIES_H_
#define CLOAKDB_SERVER_PRIVATE_QUERIES_H_

#include <vector>

#include "server/object_store.h"
#include "util/status.h"

namespace cloakdb {

/// Result of a private range query (Fig. 5a): "all objects within `radius`
/// of my location".
struct PrivateRangeResult {
  /// Candidate objects: every object that can be within `radius` of *some*
  /// point of the cloaked region.
  std::vector<PublicObject> candidates;
  /// The extended search region actually used (cloaked region expanded by
  /// the radius — the MBR approximation of the paper's rounded rectangle).
  Rect extended_region;
  /// Number of objects fetched from the extended MBR but discarded by the
  /// exact rounded-rectangle test.
  size_t rounded_rect_pruned = 0;
  /// Set by the service layer when the fan-out was cut short (deadline,
  /// overload budget, or shard failure). The candidate list is then a
  /// correct superset only for objects on the shards marked in
  /// `covered_shards`; it never silently drops coverage without the flag.
  bool degraded = false;
  /// Service-layer coverage bitmap: bit i set iff shard i's contribution is
  /// fully reflected (the shard answered, or provably holds no qualifying
  /// object). All-ones (on the shards that exist) when !degraded.
  uint64_t covered_shards = 0;
};

/// Options for private range queries.
struct PrivateRangeOptions {
  /// When true (default), candidates are filtered with the exact rounded-
  /// rectangle test MinDist(object, R) <= radius; when false, the MBR
  /// approximation the paper mentions for real implementations is returned.
  bool exact_rounded_rect = true;
};

/// Executes a private range query for cloaked region `cloaked` and radius
/// `radius` over category `category`. Fails with InvalidArgument on an
/// empty region or non-positive radius and NotFound on an empty category.
Result<PrivateRangeResult> PrivateRangeQuery(
    const ObjectStore& store, const Rect& cloaked, double radius,
    Category category, const PrivateRangeOptions& options = {});

/// Result of a private nearest-neighbor query (Fig. 5b).
struct PrivateNnResult {
  /// Candidate objects: for every point p in the cloaked region, the true
  /// nearest neighbor of p is one of these.
  std::vector<PublicObject> candidates;
  /// The conservative fetch radius used before pruning.
  double fetch_radius = 0.0;
  /// Number of fetched objects eliminated by dominance pruning (an object
  /// o is dominated when some o' satisfies MaxDist(o', R) < MinDist(o, R),
  /// i.e. o' is guaranteed nearer for every possible user location — the
  /// paper's "target A is eliminated" argument).
  size_t dominance_pruned = 0;
  /// Degradation markers filled by the service layer; see
  /// PrivateRangeResult::degraded / covered_shards.
  bool degraded = false;
  uint64_t covered_shards = 0;
};

/// Executes a private NN query for cloaked region `cloaked` over category
/// `category`. Fails with InvalidArgument on an empty region and NotFound
/// on an empty category.
Result<PrivateNnResult> PrivateNnQuery(const ObjectStore& store,
                                       const Rect& cloaked,
                                       Category category);

/// Result of a private k-nearest-neighbor query (the natural k > 1
/// generalization of Fig. 5b: "find my 3 nearest gas stations").
struct PrivateKnnResult {
  /// Candidates guaranteed to contain the true k nearest neighbors of
  /// every point in the cloaked region.
  std::vector<PublicObject> candidates;
  double fetch_radius = 0.0;
  /// Objects eliminated because at least k others are guaranteed nearer
  /// for every possible user location.
  size_t dominance_pruned = 0;
  /// Degradation markers filled by the service layer; see
  /// PrivateRangeResult::degraded / covered_shards.
  bool degraded = false;
  uint64_t covered_shards = 0;
};

/// Executes a private k-NN query. Fails with InvalidArgument on an empty
/// region or k = 0, and NotFound on an empty category. When the category
/// holds fewer than k objects, all of them are returned.
Result<PrivateKnnResult> PrivateKnnQuery(const ObjectStore& store,
                                         const Rect& cloaked, size_t k,
                                         Category category);

// --- Shared execution (one probe serving many queries) --------------------
//
// The service's shared-execution engine runs ONE widened index probe for a
// cluster of overlapping cloaked queries and refines every member's
// candidate list from the shared superset with the functions below. They
// apply the same predicates as the isolated queries, and every isolated
// candidate o satisfies MinDist(o, R) <= reach — which places o inside
// R.Expanded(reach) — so whenever the probe rectangle contains
// R.Expanded(reach), refining from the superset returns exactly the
// isolated answer. Sharing can only widen what is *fetched*, never shrink
// what is *kept*: pruning stays per-query, so the paper's candidate-list
// guarantee is unaffected.

/// Fetches every `category` object inside `probe_region`, materialized once
/// for a cluster of queries. Fails with InvalidArgument on an empty probe
/// region and NotFound on an absent category.
Result<std::vector<PublicObject>> SharedProbeQuery(const ObjectStore& store,
                                                   const Rect& probe_region,
                                                   Category category);

/// The conservative NN fetch radius of `cloaked` (max corner-NN distance
/// plus half the diagonal): the reach a shared probe must cover for
/// PrivateNnFromSuperset to be exact. Fails like PrivateNnQuery.
Result<double> NnFetchRadius(const ObjectStore& store, const Rect& cloaked,
                             Category category);

/// The conservative k-NN fetch radius; returns 0.0 when the category holds
/// at most k objects (the probe is bypassed — everything is a candidate).
/// Fails like PrivateKnnQuery.
Result<double> KnnFetchRadius(const ObjectStore& store, const Rect& cloaked,
                              size_t k, Category category);

/// PrivateRangeQuery refined from a shared superset. Exact iff `superset`
/// contains every `category` object inside cloaked.Expanded(radius).
Result<PrivateRangeResult> PrivateRangeFromSuperset(
    const ObjectStore& store, const std::vector<PublicObject>& superset,
    const Rect& cloaked, double radius, Category category,
    const PrivateRangeOptions& options = {});

/// PrivateNnQuery refined from a shared superset. Exact iff `superset`
/// contains every `category` object o with MinDist(o, cloaked) <= the
/// NnFetchRadius of `cloaked`. A caller that already computed that radius
/// (e.g. to build a cache key) passes it as `known_fetch_radius` to skip
/// the corner probes; 0.0 means "compute it here".
Result<PrivateNnResult> PrivateNnFromSuperset(
    const ObjectStore& store, const std::vector<PublicObject>& superset,
    const Rect& cloaked, Category category, double known_fetch_radius = 0.0);

/// PrivateKnnQuery refined from a shared superset (same exactness contract
/// with KnnFetchRadius; the <= k pigeonhole case re-fetches the whole
/// category from the index and ignores `superset`). `known_fetch_radius`
/// as in PrivateNnFromSuperset — 0.0 recomputes, which also re-detects the
/// pigeonhole case.
Result<PrivateKnnResult> PrivateKnnFromSuperset(
    const ObjectStore& store, const std::vector<PublicObject>& superset,
    const Rect& cloaked, size_t k, Category category,
    double known_fetch_radius = 0.0);

/// Picks the true k nearest neighbors from k-NN candidates, sorted by
/// distance (ties by id). Returns fewer when the list is shorter than k.
std::vector<PublicObject> RefineKnnCandidates(
    const std::vector<PublicObject>& candidates, const Point& true_location,
    size_t k);

// --- Client-side refinement (runs on the mobile device) -------------------

/// Filters range-query candidates down to the exact answer for the client's
/// true location.
std::vector<PublicObject> RefineRangeCandidates(
    const std::vector<PublicObject>& candidates, const Point& true_location,
    double radius);

/// Picks the true nearest neighbor from NN candidates (ties broken by id);
/// fails with NotFound on an empty candidate list.
Result<PublicObject> RefineNnCandidates(
    const std::vector<PublicObject>& candidates, const Point& true_location);

}  // namespace cloakdb

#endif  // CLOAKDB_SERVER_PRIVATE_QUERIES_H_
