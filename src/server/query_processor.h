// The privacy-aware query processor: the server facade of paper Fig. 1.
//
// Receives cloaked updates from the Location Anonymizer, stores public
// objects, and dispatches the two novel query classes (private-over-public,
// public-over-private) while keeping per-query cost statistics (candidate
// counts and an estimate of bytes shipped to mobile clients — the
// transmission-cost side of the paper's privacy/QoS trade-off).

#ifndef CLOAKDB_SERVER_QUERY_PROCESSOR_H_
#define CLOAKDB_SERVER_QUERY_PROCESSOR_H_

#include <vector>

#include "server/object_store.h"
#include "server/private_private.h"
#include "server/private_queries.h"
#include "server/public_queries.h"
#include "util/stats.h"
#include "util/status.h"

namespace cloakdb {

/// Wire-size model: bytes to ship one public object to a client
/// (id + location + category, ignoring names).
constexpr size_t kBytesPerObject = 8 + 16 + 4;

/// Query-processing counters.
struct ServerStats {
  uint64_t cloaked_updates = 0;
  uint64_t private_range_queries = 0;
  uint64_t private_nn_queries = 0;
  uint64_t private_knn_queries = 0;
  uint64_t private_private_queries = 0;
  uint64_t public_count_queries = 0;
  uint64_t public_nn_queries = 0;
  RunningStats range_candidates;   ///< Candidates per private range query.
  RunningStats nn_candidates;      ///< Candidates per private NN query.
  uint64_t bytes_to_clients = 0;   ///< Modeled candidate-list traffic.
};

/// The location-based database server.
class QueryProcessor {
 public:
  /// `space` bounds the private-region index.
  explicit QueryProcessor(const Rect& space, uint32_t rect_grid_cells = 64);

  /// Data management (delegates to the ObjectStore).
  ObjectStore& store() { return store_; }
  const ObjectStore& store() const { return store_; }

  /// Ingests one anonymized location update: the server learns only
  /// (pseudonym, region).
  Status ApplyCloakedUpdate(ObjectId pseudonym, const Rect& region);

  /// Drops a pseudonym (user went passive / unsubscribed).
  Status DropPseudonym(ObjectId pseudonym);

  /// Private range query over public data (Fig. 5a).
  Result<PrivateRangeResult> PrivateRange(const Rect& cloaked, double radius,
                                          Category category,
                                          const PrivateRangeOptions& opts = {});

  /// Private NN query over public data (Fig. 5b).
  Result<PrivateNnResult> PrivateNn(const Rect& cloaked, Category category);

  /// Private k-NN query over public data (k > 1 extension of Fig. 5b).
  Result<PrivateKnnResult> PrivateKnn(const Rect& cloaked, size_t k,
                                      Category category);

  /// Private range query over private data (both sides cloaked).
  Result<PrivatePrivateRangeResult> PrivatePrivateRange(
      const Rect& querier, double radius,
      const PrivatePrivateOptions& opts = {});

  /// Private NN query over private data (both sides cloaked).
  Result<PrivatePrivateNnResult> PrivatePrivateNn(
      const Rect& querier, const PrivatePrivateOptions& opts = {});

  /// Public count query over private data (Fig. 6a).
  Result<PublicCountResult> PublicCount(const Rect& window);

  /// Public NN query over private data (Fig. 6b).
  Result<PublicNnResult> PublicNn(const Point& from,
                                  const PublicNnOptions& opts = {});

  /// Expected-density heatmap over private data (Fig. 6a generalized).
  Result<HeatmapResult> Heatmap(uint32_t resolution);

  const ServerStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ServerStats{}; }

 private:
  ObjectStore store_;
  ServerStats stats_;
};

}  // namespace cloakdb

#endif  // CLOAKDB_SERVER_QUERY_PROCESSOR_H_
