// The privacy-aware query processor: the server facade of paper Fig. 1.
//
// Receives cloaked updates from the Location Anonymizer, stores public
// objects, and dispatches the two novel query classes (private-over-public,
// public-over-private) while keeping per-query cost statistics (candidate
// counts and an estimate of bytes shipped to mobile clients — the
// transmission-cost side of the paper's privacy/QoS trade-off).
//
// Thread safety: data-management entry points (ApplyCloakedUpdate,
// DropPseudonym, store() mutation) require exclusive access. All query
// methods are const and touch only immutable store state plus the
// internally-locked stats block, so any number of threads may run queries
// concurrently as long as no writer is in flight — the read path the
// sharded service layer (src/service/) relies on.

#ifndef CLOAKDB_SERVER_QUERY_PROCESSOR_H_
#define CLOAKDB_SERVER_QUERY_PROCESSOR_H_

#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "server/object_store.h"
#include "server/private_private.h"
#include "server/private_queries.h"
#include "server/public_queries.h"
#include "util/stats.h"
#include "util/status.h"

namespace cloakdb {

/// Wire-size model for the candidate lists shipped to mobile clients.
/// Experiments vary payload size (richer records, compression) by passing a
/// different model to the QueryProcessor constructor instead of
/// recompiling.
struct WireCostModel {
  /// Bytes to ship one public object (id + location + category by default,
  /// ignoring names).
  size_t bytes_per_object = 8 + 16 + 4;
};

/// Query-processing counters.
struct ServerStats {
  uint64_t cloaked_updates = 0;
  uint64_t private_range_queries = 0;
  uint64_t private_nn_queries = 0;
  uint64_t private_knn_queries = 0;
  uint64_t private_private_queries = 0;
  uint64_t public_count_queries = 0;
  uint64_t public_nn_queries = 0;
  uint64_t heatmap_queries = 0;
  RunningStats range_candidates;   ///< Candidates per private range query.
  RunningStats nn_candidates;      ///< Candidates per private NN query.
  uint64_t bytes_to_clients = 0;   ///< Modeled candidate-list traffic.
};

/// Folds `from` into `into` (counter sums; candidate stats merged) — the
/// reduction used to aggregate per-shard stats into ServiceStats.
void MergeServerStats(ServerStats* into, const ServerStats& from);

/// Optional per-query-kind index-probe latency sinks (microseconds). The
/// sharded service points every shard's processor at one set of shared
/// histograms from its MetricsRegistry; standalone processors leave them
/// null and pay nothing. "Probe" covers the full single-processor query —
/// index lookup plus local dominance pruning — i.e. everything below the
/// service's fan-in merge.
struct QueryProcessorObs {
  obs::ShardedHistogram* range_probe_us = nullptr;
  obs::ShardedHistogram* nn_probe_us = nullptr;
  obs::ShardedHistogram* knn_probe_us = nullptr;
  obs::ShardedHistogram* count_probe_us = nullptr;
  obs::ShardedHistogram* heatmap_probe_us = nullptr;
};

/// The location-based database server.
class QueryProcessor {
 public:
  /// `space` bounds the private-region index; `wire_cost` prices the
  /// candidate lists charged to bytes_to_clients; `public_index` selects
  /// the per-category public-data structure (index/public_index.h).
  explicit QueryProcessor(const Rect& space, uint32_t rect_grid_cells = 64,
                          const WireCostModel& wire_cost = {},
                          const PublicCategoryIndex::Config& public_index = {});

  /// Data management (delegates to the ObjectStore).
  ObjectStore& store() { return store_; }
  const ObjectStore& store() const { return store_; }

  /// Ingests one anonymized location update: the server learns only
  /// (pseudonym, region).
  Status ApplyCloakedUpdate(ObjectId pseudonym, const Rect& region);

  /// Drops a pseudonym (user went passive / unsubscribed).
  Status DropPseudonym(ObjectId pseudonym);

  /// Private range query over public data (Fig. 5a).
  Result<PrivateRangeResult> PrivateRange(
      const Rect& cloaked, double radius, Category category,
      const PrivateRangeOptions& opts = {}) const;

  /// Private NN query over public data (Fig. 5b).
  Result<PrivateNnResult> PrivateNn(const Rect& cloaked,
                                    Category category) const;

  /// Private k-NN query over public data (k > 1 extension of Fig. 5b).
  Result<PrivateKnnResult> PrivateKnn(const Rect& cloaked, size_t k,
                                      Category category) const;

  // --- Shared execution (src/service/ probe sharing) ----------------------
  // One widened probe fetched via SharedProbe can serve a whole cluster of
  // overlapping cloaked queries; the *Shared entry points refine a member's
  // exact answer from that superset and keep the same per-kind statistics
  // as the isolated queries (counted only when the query is accepted, so
  // cached and uncached runs stay comparable).

  /// Materializes every `category` object inside `probe_region`.
  Result<std::vector<PublicObject>> SharedProbe(const Rect& probe_region,
                                                Category category) const;

  /// Conservative NN / k-NN fetch radii (the reach a shared probe must
  /// cover); thin wrappers over server/private_queries.h, no stats.
  Result<double> NnFetchReach(const Rect& cloaked, Category category) const;
  Result<double> KnnFetchReach(const Rect& cloaked, size_t k,
                               Category category) const;

  /// PrivateRange refined from a shared probe superset.
  Result<PrivateRangeResult> PrivateRangeShared(
      const std::vector<PublicObject>& superset, const Rect& cloaked,
      double radius, Category category,
      const PrivateRangeOptions& opts = {}) const;

  /// PrivateNn refined from a shared probe superset. `known_fetch_radius`
  /// (when > 0) is a fetch radius the caller already computed via
  /// NnFetchReach, skipping a second round of corner probes.
  Result<PrivateNnResult> PrivateNnShared(
      const std::vector<PublicObject>& superset, const Rect& cloaked,
      Category category, double known_fetch_radius = 0.0) const;

  /// PrivateKnn refined from a shared probe superset; `known_fetch_radius`
  /// as in PrivateNnShared.
  Result<PrivateKnnResult> PrivateKnnShared(
      const std::vector<PublicObject>& superset, const Rect& cloaked,
      size_t k, Category category, double known_fetch_radius = 0.0) const;

  /// Counts a public-count query served verbatim from the service's
  /// candidate cache, so ServerStats stays comparable with uncached runs.
  void NotePublicCountFromCache() const;

  /// Private range query over private data (both sides cloaked).
  Result<PrivatePrivateRangeResult> PrivatePrivateRange(
      const Rect& querier, double radius,
      const PrivatePrivateOptions& opts = {}) const;

  /// Private NN query over private data (both sides cloaked).
  Result<PrivatePrivateNnResult> PrivatePrivateNn(
      const Rect& querier, const PrivatePrivateOptions& opts = {}) const;

  /// Public count query over private data (Fig. 6a).
  Result<PublicCountResult> PublicCount(const Rect& window) const;

  /// Public NN query over private data (Fig. 6b).
  Result<PublicNnResult> PublicNn(const Point& from,
                                  const PublicNnOptions& opts = {}) const;

  /// Expected-density heatmap over private data (Fig. 6a generalized).
  Result<HeatmapResult> Heatmap(uint32_t resolution) const;

  const WireCostModel& wire_cost() const { return wire_cost_; }

  /// Snapshot of the counters (copied under the stats lock).
  ServerStats stats() const;
  void ResetStats();

  /// Installs probe-latency sinks (histograms are internally synchronized,
  /// so concurrent const queries may record freely). Call before queries
  /// start; the handles must outlive the processor.
  void SetObs(const QueryProcessorObs& obs) { obs_ = obs; }

 private:
  /// Books one *accepted* private query: kind counter, candidate-count
  /// stream, modeled wire bytes. Rejected queries must never reach this.
  void CountPrivateQuery(uint64_t ServerStats::*counter,
                         RunningStats ServerStats::*candidates,
                         size_t num_candidates) const;

  ObjectStore store_;
  WireCostModel wire_cost_;
  QueryProcessorObs obs_;
  /// Query methods are logically read-only; the counters they bump live
  /// behind this lock so concurrent const queries stay race-free.
  mutable std::mutex stats_mu_;
  mutable ServerStats stats_;
};

// --- Fan-in merge helpers -------------------------------------------------
//
// The sharded service layer partitions public objects across shards and
// hash-routes private users, then fans one query out to several
// QueryProcessors and merges the partial results with these helpers. Merged
// candidate lists are sorted by object id (deterministic regardless of
// shard count); merged Range/Count results are *identical* to a
// single-shard oracle over the union of the data, and merged NN/kNN results
// preserve the candidate-list guarantee (the true answer for every possible
// querier location survives the merge).

/// Merges private-range partials: candidate union (sorted by id), summed
/// prune counters. `parts` must stem from the same (cloaked, radius) query
/// over disjoint object sets.
PrivateRangeResult MergePrivateRangeResults(
    std::vector<PrivateRangeResult> parts);

/// Merges private-NN partials for `cloaked`: candidate union re-pruned by
/// global dominance (keep o iff MinDist(o, R) <= min over the union of
/// MaxDist(o', R)).
PrivateNnResult MergePrivateNnResults(const Rect& cloaked,
                                      std::vector<PrivateNnResult> parts);

/// Merges private-kNN partials for `cloaked`: candidate union re-pruned by
/// global k-dominance (drop o when at least k union members are guaranteed
/// nearer for every location in R).
PrivateKnnResult MergePrivateKnnResults(const Rect& cloaked, size_t k,
                                        std::vector<PrivateKnnResult> parts);

/// Merges public-count partials: contributions concatenated (sorted by
/// pseudonym) and the three paper answer formats recomputed from the merged
/// per-object probabilities — bit-identical to the single-shard answer.
Result<PublicCountResult> MergePublicCountResults(
    std::vector<PublicCountResult> parts);

/// Merges heatmaps of identical resolution/space by summing expected mass.
Result<HeatmapResult> MergeHeatmapResults(std::vector<HeatmapResult> parts);

}  // namespace cloakdb

#endif  // CLOAKDB_SERVER_QUERY_PROCESSOR_H_
