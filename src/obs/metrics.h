// Query-path observability primitives: named monotonic counters, gauges,
// and mergeable log-scale latency histograms behind one thread-safe
// registry, with text and JSON exporters.
//
// Recording is designed to stay off the contended path: every counter and
// histogram is striped across cache-line-aligned slots selected by a hash
// of the recording thread, so concurrent writers from the service's worker
// pool and client threads touch disjoint cache lines. Reads (snapshots and
// exports) merge the stripes; they are wait-free for writers.
//
// The registry hands out stable pointers (get-or-create by name) that stay
// valid for the registry's lifetime, so hot paths resolve their metrics
// once at startup and record through raw pointers afterwards.

#ifndef CLOAKDB_OBS_METRICS_H_
#define CLOAKDB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cloakdb::obs {

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// control characters). Shared by every JSON producer in the observability
/// layer (metrics export, trace export, status dumps) so user-supplied
/// strings — metric labels, category names, query kinds — can never break
/// a document.
void AppendJsonEscaped(std::string* out, std::string_view s);

/// Appends a JSON-safe number (non-finite values rendered as 0).
void AppendJsonNumber(std::string* out, double value);

/// Number of write stripes per metric (power of two; selected by thread).
inline constexpr size_t kMetricStripes = 8;

/// Stripe owned by the calling thread (stable per thread).
size_t StripeOfThisThread();

/// Monotonic counter, striped so concurrent increments never share a cache
/// line. Value() is the sum over stripes.
class Counter {
 public:
  void Increment(uint64_t delta = 1);
  uint64_t Value() const;

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> value{0};
  };
  std::array<Slot, kMetricStripes> slots_;
};

/// Last-writer-wins scalar with an atomic-max update for high-water marks.
class Gauge {
 public:
  void Set(double value);
  void Add(double delta);
  /// Raises the gauge to `value` when larger (high-water-mark semantics).
  void UpdateMax(double value);
  double Value() const;

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time merge of a histogram's stripes: bucket counts plus the
/// streaming moments needed for mean/min/max and quantile estimation.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when empty.
  double max = 0.0;  ///< 0 when empty.
  std::vector<uint64_t> buckets;

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  /// Estimated q-quantile (q clamped to [0,1]); 0 when empty. Linear
  /// interpolation inside the owning log-scale bucket, clamped to the
  /// observed min/max.
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }

  /// Folds another snapshot in (bucket-wise sum; min/max/moments merged).
  void Merge(const HistogramSnapshot& other);
};

/// Interval between two cumulative snapshots of the same histogram:
/// `newer - older`, bucket-wise. Bucket counts, count, and sum are exact.
/// The interval's true min/max are not recoverable from cumulative
/// snapshots, so the delta carries the tightest provable bounds instead:
/// when the interval set a new lifetime extreme the bound is exact;
/// otherwise it is the edge of the interval's outermost populated bucket
/// (so quantiles are off by at most one sub-bucket width at the tails).
/// Returns an empty snapshot when `newer` holds no new samples.
HistogramSnapshot HistogramDelta(const HistogramSnapshot& newer,
                                 const HistogramSnapshot& older);

/// Lock-free log-linear histogram for non-negative values (latencies in
/// microseconds, batch sizes, candidate counts, ...). Buckets cover
/// [2^o * (1 + s/8), 2^o * (1 + (s+1)/8)) — 8 sub-buckets per power of
/// two, so quantile estimates carry at most ~6% relative bucketing error.
/// Recording is a relaxed fetch_add on the caller's stripe; snapshots
/// merge all stripes.
class ShardedHistogram {
 public:
  static constexpr size_t kSubBuckets = 8;
  static constexpr size_t kOctaves = 36;  ///< Up to ~2^36 (~19h in us).
  static constexpr size_t kNumBuckets = 1 + kOctaves * kSubBuckets;

  void Record(double value);
  HistogramSnapshot Snapshot() const;

  /// Bucket owning `value` (values < 1 land in bucket 0; huge values clamp
  /// to the last bucket).
  static size_t BucketOf(double value);
  /// Inclusive lower edge of a bucket.
  static double BucketLowerBound(size_t bucket);

 private:
  struct alignas(64) Stripe {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  };
  std::array<Stripe, kMetricStripes> stripes_;
};

/// Point-in-time copy of every metric in a registry, stamped with the
/// wall clock. Cheap to diff: counter/gauge maps plus full histogram
/// snapshots, so an exporter can turn two of these into interval rates
/// and interval percentiles.
struct RegistrySnapshot {
  int64_t unix_us = 0;  ///< Wall-clock microseconds at snapshot time.
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Thread-safe name -> metric registry with get-or-create semantics.
/// Counters, gauges, and histograms live in separate namespaces. Returned
/// pointers stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  ShardedHistogram* histogram(const std::string& name);

  /// Snapshot of one histogram by name; empty snapshot when unknown.
  HistogramSnapshot SnapshotHistogram(const std::string& name) const;

  /// Current value of one counter by name; 0 when unknown.
  uint64_t CounterValue(const std::string& name) const;

  /// "name value" / "name count=.. mean=.. p50=.. p95=.. p99=.." lines,
  /// sorted by name — for logs and CLI output.
  std::string ExportText() const;

  /// One JSON object: {"counters": {..}, "gauges": {..}, "histograms":
  /// {"name": {"count","mean","min","max","p50","p95","p99"}, ..}}.
  std::string ExportJson() const;

  // --- Windowed snapshots ------------------------------------------------
  // The registry keeps a ring of timestamped full snapshots so exporters
  // can report last-interval rates and interval percentiles instead of
  // lifetime-cumulative numbers. A sampler (CloakServer's ticker, cloaksim's
  // tick loop) calls PushWindowSnapshot periodically; readers diff
  // neighbouring entries with HistogramDelta / counter subtraction.

  /// Default number of snapshots retained (at a 1 s cadence: ~16 s back).
  static constexpr size_t kDefaultWindowCapacity = 16;

  /// Full copy of every metric, stamped with the current wall clock.
  RegistrySnapshot SnapshotAll() const;

  /// Resizes the snapshot ring (minimum 2; drops oldest entries).
  void SetWindowCapacity(size_t capacity);

  /// Takes a snapshot and appends it to the ring (evicting the oldest).
  void PushWindowSnapshot();

  /// The retained snapshots, oldest first. Shared pointers: entries stay
  /// valid even if the ring rotates after the call.
  std::vector<std::shared_ptr<const RegistrySnapshot>> WindowSnapshots()
      const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<ShardedHistogram>> histograms_;

  mutable std::mutex window_mu_;  ///< Guards the snapshot ring.
  size_t window_capacity_ = kDefaultWindowCapacity;
  std::vector<std::shared_ptr<const RegistrySnapshot>> window_;
};

}  // namespace cloakdb::obs

#endif  // CLOAKDB_OBS_METRICS_H_
