// Wall-clock stage timing for the query/ingest paths: a RAII ScopedTimer
// that records its lifetime into a ShardedHistogram, and a StageSpan that
// splits one request into consecutive named stages.
//
// Both accept a null sink, in which case they skip the clock reads
// entirely — instrumented code paths stay free when metrics are not wired.

#ifndef CLOAKDB_OBS_SCOPED_TIMER_H_
#define CLOAKDB_OBS_SCOPED_TIMER_H_

#include <chrono>

#include "obs/metrics.h"

namespace cloakdb::obs {

/// Microseconds between two steady_clock points.
inline double MicrosBetween(std::chrono::steady_clock::time_point from,
                            std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Records the time from construction to Stop() (or destruction) into the
/// sink histogram, in microseconds. Records exactly once.
class ScopedTimer {
 public:
  explicit ScopedTimer(ShardedHistogram* sink)
      : sink_(sink),
        start_(sink == nullptr ? std::chrono::steady_clock::time_point{}
                               : std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { Stop(); }

  /// Ends the measurement and records it; returns the elapsed microseconds
  /// (0 when the sink is null or the timer was already stopped).
  double Stop() {
    if (sink_ == nullptr) return 0.0;
    double elapsed = MicrosBetween(start_, std::chrono::steady_clock::now());
    sink_->Record(elapsed);
    sink_ = nullptr;
    return elapsed;
  }

  /// Abandons the measurement without recording.
  void Cancel() { sink_ = nullptr; }

 private:
  ShardedHistogram* sink_;
  std::chrono::steady_clock::time_point start_;
};

/// Splits one request into consecutive stages: each EndStage(sink) records
/// the time since the previous boundary into `sink` and starts the next
/// stage. Example:
///
///   StageSpan span;
///   ... fan out to shards ...
///   span.EndStage(probe_us);
///   ... merge partials ...
///   span.EndStage(merge_us);
class StageSpan {
 public:
  StageSpan() : last_(std::chrono::steady_clock::now()) {}

  /// Closes the current stage into `sink` (null: stage time is dropped)
  /// and returns its duration in microseconds.
  double EndStage(ShardedHistogram* sink) {
    auto now = std::chrono::steady_clock::now();
    double elapsed = MicrosBetween(last_, now);
    last_ = now;
    if (sink != nullptr) sink->Record(elapsed);
    return elapsed;
  }

 private:
  std::chrono::steady_clock::time_point last_;
};

}  // namespace cloakdb::obs

#endif  // CLOAKDB_OBS_SCOPED_TIMER_H_
