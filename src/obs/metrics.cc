#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

namespace cloakdb::obs {

namespace {

/// CAS add for atomic<double> (fetch_add on floating atomics is C++20 but
/// not universally lock-free; the loop compiles to the same code where it
/// is).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double expected = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(expected, expected + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double expected = target->load(std::memory_order_relaxed);
  while (value < expected &&
         !target->compare_exchange_weak(expected, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double expected = target->load(std::memory_order_relaxed);
  while (value > expected &&
         !target->compare_exchange_weak(expected, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
}

void AppendJsonNumber(std::string* out, double value) {
  if (!std::isfinite(value)) value = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  *out += buf;
}

size_t StripeOfThisThread() {
  static thread_local const size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) &
      (kMetricStripes - 1);
  return stripe;
}

void Counter::Increment(uint64_t delta) {
  slots_[StripeOfThisThread()].value.fetch_add(delta,
                                               std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Slot& slot : slots_)
    total += slot.value.load(std::memory_order_relaxed);
  return total;
}

void Gauge::Set(double value) {
  value_.store(value, std::memory_order_relaxed);
}

void Gauge::Add(double delta) { AtomicAdd(&value_, delta); }

void Gauge::UpdateMax(double value) { AtomicMax(&value_, value); }

double Gauge::Value() const { return value_.load(std::memory_order_relaxed); }

size_t ShardedHistogram::BucketOf(double value) {
  if (!(value >= 1.0)) return 0;  // also catches NaN
  int octave = std::ilogb(value);
  if (octave >= static_cast<int>(kOctaves)) return kNumBuckets - 1;
  double scaled = std::ldexp(value, -octave) - 1.0;  // [0, 1)
  size_t sub = std::min(static_cast<size_t>(scaled * kSubBuckets),
                        kSubBuckets - 1);
  return 1 + static_cast<size_t>(octave) * kSubBuckets + sub;
}

double ShardedHistogram::BucketLowerBound(size_t bucket) {
  if (bucket == 0) return 0.0;
  size_t octave = (bucket - 1) / kSubBuckets;
  size_t sub = (bucket - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets,
                    static_cast<int>(octave));
}

void ShardedHistogram::Record(double value) {
  if (std::isnan(value)) return;
  if (value < 0.0) value = 0.0;
  Stripe& stripe = stripes_[StripeOfThisThread()];
  stripe.buckets[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  stripe.count.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&stripe.sum, value);
  AtomicMin(&stripe.min, value);
  AtomicMax(&stripe.max, value);
}

HistogramSnapshot ShardedHistogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.buckets.assign(kNumBuckets, 0);
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  for (const Stripe& stripe : stripes_) {
    for (size_t b = 0; b < kNumBuckets; ++b)
      snapshot.buckets[b] += stripe.buckets[b].load(std::memory_order_relaxed);
    snapshot.count += stripe.count.load(std::memory_order_relaxed);
    snapshot.sum += stripe.sum.load(std::memory_order_relaxed);
    min = std::min(min, stripe.min.load(std::memory_order_relaxed));
    max = std::max(max, stripe.max.load(std::memory_order_relaxed));
  }
  snapshot.min = snapshot.count == 0 ? 0.0 : min;
  snapshot.max = snapshot.count == 0 ? 0.0 : max;
  return snapshot;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    double next = cum + static_cast<double>(buckets[b]);
    if (target <= next) {
      double frac = (target - cum) / static_cast<double>(buckets[b]);
      if (frac < 0.0) frac = 0.0;
      double lo = ShardedHistogram::BucketLowerBound(b);
      double hi = b + 1 < buckets.size()
                      ? ShardedHistogram::BucketLowerBound(b + 1)
                      : lo * (1.0 + 1.0 / ShardedHistogram::kSubBuckets);
      if (b == 0) hi = 1.0;
      return std::clamp(lo + frac * (hi - lo), min, max);
    }
    cum = next;
  }
  return max;
}

HistogramSnapshot HistogramDelta(const HistogramSnapshot& newer,
                                 const HistogramSnapshot& older) {
  HistogramSnapshot delta;
  if (newer.count <= older.count) return delta;  // empty interval
  const size_t buckets =
      std::max(newer.buckets.size(), older.buckets.size());
  delta.buckets.assign(buckets, 0);
  size_t lowest = buckets;
  size_t highest = buckets;  // sentinel: none
  for (size_t b = 0; b < buckets; ++b) {
    const uint64_t n = b < newer.buckets.size() ? newer.buckets[b] : 0;
    const uint64_t o = b < older.buckets.size() ? older.buckets[b] : 0;
    const uint64_t d = n > o ? n - o : 0;
    delta.buckets[b] = d;
    if (d > 0) {
      if (lowest == buckets) lowest = b;
      highest = b;
    }
  }
  delta.count = newer.count - older.count;
  delta.sum = newer.sum - older.sum;
  if (highest == buckets) {
    // Counts moved but no bucket grew (possible only on corrupt input);
    // fall back to the lifetime bounds.
    delta.min = newer.min;
    delta.max = newer.max;
    return delta;
  }
  // Tightest provable bounds (see header): exact when the interval set a
  // new lifetime extreme, otherwise the populated-bucket edge.
  if (older.count == 0 || newer.min < older.min) {
    delta.min = newer.min;
  } else {
    delta.min = std::max(ShardedHistogram::BucketLowerBound(lowest),
                         newer.min);
  }
  if (older.count == 0 || newer.max > older.max) {
    delta.max = newer.max;
  } else {
    const double upper =
        highest + 1 < ShardedHistogram::kNumBuckets
            ? ShardedHistogram::BucketLowerBound(highest + 1)
            : newer.max;
    delta.max = std::min(highest == 0 ? 1.0 : upper, newer.max);
  }
  if (delta.max < delta.min) delta.max = delta.min;
  return delta;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  if (buckets.size() < other.buckets.size())
    buckets.resize(other.buckets.size(), 0);
  for (size_t b = 0; b < other.buckets.size(); ++b)
    buckets[b] += other.buckets[b];
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

ShardedHistogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<ShardedHistogram>();
  return slot.get();
}

HistogramSnapshot MetricsRegistry::SnapshotHistogram(
    const std::string& name) const {
  const ShardedHistogram* histogram = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) histogram = it->second.get();
  }
  return histogram == nullptr ? HistogramSnapshot{} : histogram->Snapshot();
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  const Counter* counter = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it != counters_.end()) counter = it->second.get();
  }
  return counter == nullptr ? 0 : counter->Value();
}

RegistrySnapshot MetricsRegistry::SnapshotAll() const {
  RegistrySnapshot snapshot;
  snapshot.unix_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_)
    snapshot.counters[name] = counter->Value();
  for (const auto& [name, gauge] : gauges_)
    snapshot.gauges[name] = gauge->Value();
  for (const auto& [name, histogram] : histograms_)
    snapshot.histograms[name] = histogram->Snapshot();
  return snapshot;
}

void MetricsRegistry::SetWindowCapacity(size_t capacity) {
  if (capacity < 2) capacity = 2;
  std::lock_guard<std::mutex> lock(window_mu_);
  window_capacity_ = capacity;
  if (window_.size() > capacity)
    window_.erase(window_.begin(),
                  window_.begin() +
                      static_cast<ptrdiff_t>(window_.size() - capacity));
}

void MetricsRegistry::PushWindowSnapshot() {
  auto snapshot = std::make_shared<RegistrySnapshot>(SnapshotAll());
  std::lock_guard<std::mutex> lock(window_mu_);
  if (window_.size() >= window_capacity_)
    window_.erase(window_.begin(),
                  window_.begin() + static_cast<ptrdiff_t>(
                                        window_.size() - window_capacity_ + 1));
  window_.push_back(std::move(snapshot));
}

std::vector<std::shared_ptr<const RegistrySnapshot>>
MetricsRegistry::WindowSnapshots() const {
  std::lock_guard<std::mutex> lock(window_mu_);
  return window_;
}

std::string MetricsRegistry::ExportText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[256];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(buf, sizeof(buf), "%s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter->Value()));
    out += buf;
  }
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(buf, sizeof(buf), "%s %.6g\n", name.c_str(),
                  gauge->Value());
    out += buf;
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot s = histogram->Snapshot();
    std::snprintf(buf, sizeof(buf),
                  "%s count=%llu mean=%.6g min=%.6g max=%.6g p50=%.6g "
                  "p95=%.6g p99=%.6g\n",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  s.mean(), s.min, s.max, s.p50(), s.p95(), s.p99());
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(&out, name);
    // 64 bytes: the widest uint64 is 20 digits, and a truncated snprintf
    // here would emit invalid JSON.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\":%llu",
                  static_cast<unsigned long long>(counter->Value()));
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(&out, name);
    out += "\":";
    AppendJsonNumber(&out, gauge->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot s = histogram->Snapshot();
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(&out, name);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\":{\"count\":%llu,\"mean\":",
                  static_cast<unsigned long long>(s.count));
    out += buf;
    AppendJsonNumber(&out, s.mean());
    out += ",\"min\":";
    AppendJsonNumber(&out, s.min);
    out += ",\"max\":";
    AppendJsonNumber(&out, s.max);
    out += ",\"p50\":";
    AppendJsonNumber(&out, s.p50());
    out += ",\"p95\":";
    AppendJsonNumber(&out, s.p95());
    out += ",\"p99\":";
    AppendJsonNumber(&out, s.p99());
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace cloakdb::obs
