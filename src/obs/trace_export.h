// Exporters for completed trace spans.
//
// Two formats, one serializer:
//   - ExportChromeTrace: the chrome://tracing / Perfetto JSON object format
//     ({"traceEvents": [...]}), complete "X" events with ts/dur in
//     microseconds. pid encodes nothing (always 1); tid is the tracer's
//     per-thread ring index, so lanes in the viewer correspond to recording
//     threads. Span identity, hierarchy, links, attributes, and audit
//     payloads ride in "args".
//   - ExportJsonl: one flat JSON object per line per span — grep/jq-friendly
//     and concatenation-safe for streaming collection.
//
// Both are pure functions over SpanRecord vectors (as returned by
// Tracer::TakeCompletedSpans) so tests and tools can serialize snapshots
// without touching a live tracer.

#ifndef CLOAKDB_OBS_TRACE_EXPORT_H_
#define CLOAKDB_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "obs/trace.h"

namespace cloakdb::obs {

/// Appends one span as a flat JSON object (no trailing newline). The shared
/// serializer behind both exporters; exposed for status dumps.
void AppendSpanJson(std::string* out, const SpanRecord& span);

/// Chrome trace-event JSON: {"traceEvents":[{"ph":"X",...}, ...]}.
/// Load the result in chrome://tracing or ui.perfetto.dev.
std::string ExportChromeTrace(const std::vector<SpanRecord>& spans);

/// One JSON object per line, one line per span.
std::string ExportJsonl(const std::vector<SpanRecord>& spans);

}  // namespace cloakdb::obs

#endif  // CLOAKDB_OBS_TRACE_EXPORT_H_
