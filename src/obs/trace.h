// End-to-end query tracing: causally-linked per-request span trees with
// stage timings, shard fan-out detail, cache disposition, and privacy-audit
// events, so "why was *this* query slow?" and "did *this* cloak satisfy the
// user's (k, A_min, A_max) profile?" are answerable from one record.
//
// Design:
//   - a process-wide Tracer assigns 64-bit trace ids at admission and owns
//     one lock-free SPSC span ring per recording thread: the owning thread
//     is the only writer (relaxed write + release publish), the collector
//     the only reader, so recording never takes a lock and never contends;
//   - a TraceContext travels with the request — explicitly through the
//     QueryBatcher (leader/follower adoption is recorded as a span link)
//     and through a thread-local scope for the layers below the service
//     facade (shard probes, candidate cache, index probes);
//   - sampling is hybrid: a head decision (probabilistic, by trace id) is
//     made at admission, and a tail decision at completion keeps every
//     slow or audit-failing trace regardless. All spans are recorded into
//     the rings either way; the keep/drop decision ring resolves them at
//     drain time, so tail-kept traces are complete.
//
// Overhead: with no Tracer wired, spans are inert (no clock reads). With
// tracing on, a span costs two steady_clock reads plus one ring store.

#ifndef CLOAKDB_OBS_TRACE_H_
#define CLOAKDB_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace cloakdb::obs {

class FlightRecorder;

/// Tracing configuration (embedded into CloakDbServiceOptions).
struct TraceOptions {
  /// Master switch; off means the service creates no Tracer at all.
  bool enabled = false;

  /// Head-sampling probability in [0, 1]: the fraction of traces kept
  /// independent of their outcome (decided at admission by trace id).
  double sample_probability = 1.0;

  /// Tail keep: a trace whose root latency reaches this many microseconds
  /// is kept even when head sampling dropped it. 0 disables the slow rule
  /// (audit-failing traces are always kept).
  double slow_trace_us = 1000.0;

  /// Capacity (spans) of each per-thread ring. When a ring is full, new
  /// spans are dropped and counted, never blocked on.
  size_t span_buffer_capacity = 1 << 14;

  /// In-flight traces the collector holds spans for while their keep/drop
  /// decision is pending; beyond this the oldest pending trace is dropped.
  size_t max_pending_traces = 4096;

  /// Retained exported spans; collection drops (and counts) beyond this.
  size_t max_completed_spans = 1 << 20;

  /// Most recent audit violations retained for live monitoring.
  size_t max_recent_violations = 64;
};

class Tracer;

/// The propagation handle: which trace the current work belongs to and
/// which span is its parent. Copyable and cheap; an inactive context (null
/// tracer) makes every span built from it a no-op.
struct TraceContext {
  Tracer* tracer = nullptr;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  ///< Parent span for children built from this.
  bool sampled = false;  ///< Head-sampling decision of the trace.

  bool active() const { return tracer != nullptr; }
};

/// Privacy-audit payload of one cloak: what the user asked for, what the
/// cloaking algorithm achieved, and whether the region is exposed to the
/// paper's Section 5 reverse-engineering attacks.
struct AuditEvent {
  uint32_t requested_k = 0;
  uint32_t achieved_k = 0;
  double area = 0.0;      ///< Achieved cloaked-region area.
  double min_area = 0.0;  ///< Profile A_min.
  double max_area = 0.0;  ///< Profile A_max (+inf = unconstrained).
  bool k_satisfied = true;
  bool min_area_satisfied = true;
  bool max_area_satisfied = true;
  /// Center/boundary reverse-engineering risk (core/attack.h checks): the
  /// deterministic adversary guess lands within epsilon of the true spot.
  bool center_risk = false;
  bool boundary_risk = false;
  uint8_t cloaking_kind = 0;  ///< static_cast of cloakdb::CloakingKind.

  /// True when any constraint was missed or an attack compromises the
  /// region — the tail-sampling "audit failing" condition.
  bool Violation() const {
    return !k_satisfied || !min_area_satisfied || !max_area_satisfied ||
           center_risk || boundary_risk;
  }
};

/// Numeric span attribute (keys are static strings; spans stay POD).
struct SpanAttr {
  const char* key = nullptr;
  double value = 0.0;
};

inline constexpr size_t kMaxSpanAttrs = 6;

/// One completed span, as stored in the rings and handed to exporters.
/// Fixed-size and trivially copyable by design.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 = root of its trace.
  uint64_t link_id = 0;    ///< Cross-tree causal link (batch adoption); 0 = none.
  const char* name = "";   ///< Static string.
  double start_us = 0.0;   ///< Microseconds since the tracer epoch.
  double dur_us = 0.0;
  uint32_t tid = 0;  ///< Small per-tracer thread index.
  uint8_t num_attrs = 0;
  bool has_audit = false;
  SpanAttr attrs[kMaxSpanAttrs];
  AuditEvent audit;
};

/// One audit violation retained for live monitoring (cloakmon).
struct AuditViolationRecord {
  uint64_t trace_id = 0;
  uint64_t pseudonym = 0;  ///< Server-side id only — never the user id.
  AuditEvent event;
};

/// RAII span: measures construction-to-End() and records itself into the
/// parent context's tracer. Inert (no clock reads) when the parent context
/// is inactive. Movable so spans can be declared early and armed later.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(const TraceContext& parent, const char* name);

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  TraceSpan(TraceSpan&& other) noexcept;
  TraceSpan& operator=(TraceSpan&& other) noexcept;

  ~TraceSpan() { End(); }

  bool active() const { return tracer_ != nullptr; }
  uint64_t span_id() const { return record_.span_id; }

  /// Context whose children parent under this span.
  TraceContext context() const;

  /// Attaches a numeric attribute (silently dropped past kMaxSpanAttrs).
  void AddAttr(const char* key, double value);
  /// Records a causal link to another span (e.g. the batch leader's span).
  void SetLink(uint64_t span_id);
  /// Attaches the privacy-audit payload.
  void SetAudit(const AuditEvent& event);

  /// Ends the span and records it; returns the duration in microseconds
  /// (0 when inactive or already ended). Records exactly once.
  double End();

 private:
  Tracer* tracer_ = nullptr;
  bool sampled_ = false;
  SpanRecord record_;
};

/// The process-wide trace collector. Thread-safe: BeginTrace/FinishTrace
/// and span recording may be called from any thread; collection
/// (TakeCompletedSpans) may run concurrently with recording.
class Tracer {
 public:
  explicit Tracer(const TraceOptions& options);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  const TraceOptions& options() const { return options_; }

  /// Admits one request: assigns the trace id and the head-sampling
  /// decision. The returned context is the root parent (span_id 0).
  TraceContext BeginTrace(const char* name);

  /// Completes a trace and stores its keep/drop decision: kept when head
  /// sampled, when `latency_us` reaches options().slow_trace_us, or when
  /// `audit_violation` is set (the tail-sampling rules).
  void FinishTrace(const TraceContext& context, double latency_us,
                   bool audit_violation);

  /// Remembers an audit violation for live monitoring (bounded ring) and
  /// marks the trace for keeping: when its FinishTrace arrives — from any
  /// layer, even one that never saw the violation — the trace is retained.
  void NoteAuditViolation(uint64_t trace_id, uint64_t pseudonym,
                          const AuditEvent& event);

  /// Drains every thread ring and returns the spans of all traces decided
  /// "keep" since the last call, grouped by trace id (stable order:
  /// completion order within a trace). Spans of dropped traces are
  /// discarded; spans of still-undecided traces are held for later calls.
  std::vector<SpanRecord> TakeCompletedSpans();

  /// Most recent audit violations, newest last.
  std::vector<AuditViolationRecord> RecentAuditViolations() const;

  /// Optional flight-recorder sink: NoteAuditViolation also records a
  /// kAuditViolation event so the ring's post-mortem view includes
  /// privacy incidents.
  void set_flight_recorder(FlightRecorder* recorder) {
    flight_recorder_ = recorder;
  }

  // --- Introspection (tests, monitors) -----------------------------------
  uint64_t dropped_spans() const {
    return dropped_spans_.load(std::memory_order_relaxed);
  }
  uint64_t kept_traces() const {
    return kept_traces_.load(std::memory_order_relaxed);
  }
  uint64_t dropped_traces() const {
    return dropped_traces_.load(std::memory_order_relaxed);
  }
  uint64_t audit_violations_total() const {
    return violations_total_.load(std::memory_order_relaxed);
  }

  // --- Span plumbing (used by TraceSpan) ---------------------------------
  uint64_t NextSpanId() {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Microseconds since the tracer epoch (steady clock).
  double NowUs() const;
  /// Pushes one finished span into the calling thread's ring (lock-free;
  /// drops and counts when the ring is full).
  void Record(const SpanRecord& record);

 private:
  /// Single-producer single-consumer ring: the owning thread writes, the
  /// collector (under collect_mu_) reads.
  struct ThreadBuffer {
    explicit ThreadBuffer(size_t capacity, uint32_t tid_in)
        : slots(capacity), tid(tid_in) {}
    std::vector<SpanRecord> slots;
    std::atomic<size_t> head{0};  ///< Next write index (monotonic).
    std::atomic<size_t> tail{0};  ///< Next read index (monotonic).
    uint32_t tid = 0;
  };

  ThreadBuffer* BufferOfThisThread();
  /// Moves ring contents into pending_, resolves decided traces into
  /// completed_. Caller holds collect_mu_.
  void DrainLocked();

  const TraceOptions options_;
  const uint64_t uid_;  ///< Process-unique tracer id (thread cache key).
  const std::chrono::steady_clock::time_point epoch_;

  std::atomic<uint64_t> next_trace_{1};
  std::atomic<uint64_t> next_span_{1};
  std::atomic<uint64_t> dropped_spans_{0};
  std::atomic<uint64_t> kept_traces_{0};
  std::atomic<uint64_t> dropped_traces_{0};
  std::atomic<uint64_t> violations_total_{0};
  FlightRecorder* flight_recorder_ = nullptr;

  mutable std::mutex registry_mu_;  ///< Guards buffers_ (registration only).
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;

  mutable std::mutex decide_mu_;  ///< Guards decisions + violations ring.
  std::unordered_map<uint64_t, bool> decisions_;  ///< trace id -> keep.
  std::deque<uint64_t> decision_fifo_;            ///< Eviction order.
  std::deque<AuditViolationRecord> violations_;
  /// Traces force-kept by NoteAuditViolation, consumed at FinishTrace.
  std::unordered_set<uint64_t> forced_keep_;

  mutable std::mutex collect_mu_;  ///< Guards pending_/completed_ (readers).
  std::unordered_map<uint64_t, std::vector<SpanRecord>> pending_;
  std::deque<uint64_t> pending_fifo_;
  std::vector<SpanRecord> completed_;
};

/// The thread's current trace context (inactive when no scope is open).
/// This is how layers without an explicit context parameter (shards, the
/// candidate cache, the query processor) find the active trace.
const TraceContext& CurrentTraceContext();

/// Installs `context` as the thread's current trace context for the scope
/// of this object's lifetime, restoring the previous one on destruction.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& context);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

}  // namespace cloakdb::obs

#endif  // CLOAKDB_OBS_TRACE_H_
