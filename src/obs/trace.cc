#include "obs/trace.h"

#include <algorithm>
#include <utility>

#include "obs/flight_recorder.h"

namespace cloakdb::obs {

namespace {

// splitmix64 — mixes the sequential trace ids into the head-sampling
// decision so "every 100th trace" biases cannot correlate with workload
// periodicity.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::atomic<uint64_t> g_next_tracer_uid{1};

// Per-thread cache of (tracer uid -> that tracer's ring for this thread).
// Keyed by the process-unique uid, never the pointer, so a destroyed
// tracer's slot can never be confused with a new tracer reusing the
// address. Capped: an evicted entry only costs a re-registration.
struct TlBufferEntry {
  uint64_t tracer_uid = 0;
  void* buffer = nullptr;
};
constexpr size_t kTlBufferCacheCap = 64;
thread_local std::vector<TlBufferEntry> tl_buffer_cache;

thread_local TraceContext tl_current_context;

}  // namespace

// --- TraceSpan -------------------------------------------------------------

TraceSpan::TraceSpan(const TraceContext& parent, const char* name) {
  if (parent.tracer == nullptr) return;
  tracer_ = parent.tracer;
  sampled_ = parent.sampled;
  record_.trace_id = parent.trace_id;
  record_.parent_id = parent.span_id;
  record_.span_id = tracer_->NextSpanId();
  record_.name = name;
  record_.start_us = tracer_->NowUs();
}

TraceSpan::TraceSpan(TraceSpan&& other) noexcept
    : tracer_(other.tracer_),
      sampled_(other.sampled_),
      record_(other.record_) {
  other.tracer_ = nullptr;
}

TraceSpan& TraceSpan::operator=(TraceSpan&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    sampled_ = other.sampled_;
    record_ = other.record_;
    other.tracer_ = nullptr;
  }
  return *this;
}

TraceContext TraceSpan::context() const {
  if (tracer_ == nullptr) return TraceContext{};
  return TraceContext{tracer_, record_.trace_id, record_.span_id, sampled_};
}

void TraceSpan::AddAttr(const char* key, double value) {
  if (tracer_ == nullptr) return;
  if (record_.num_attrs >= kMaxSpanAttrs) return;
  record_.attrs[record_.num_attrs++] = SpanAttr{key, value};
}

void TraceSpan::SetLink(uint64_t span_id) {
  if (tracer_ == nullptr) return;
  record_.link_id = span_id;
}

void TraceSpan::SetAudit(const AuditEvent& event) {
  if (tracer_ == nullptr) return;
  record_.has_audit = true;
  record_.audit = event;
}

double TraceSpan::End() {
  if (tracer_ == nullptr) return 0.0;
  record_.dur_us = tracer_->NowUs() - record_.start_us;
  tracer_->Record(record_);
  tracer_ = nullptr;
  return record_.dur_us;
}

// --- Tracer ----------------------------------------------------------------

Tracer::Tracer(const TraceOptions& options)
    : options_(options),
      uid_(g_next_tracer_uid.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

double Tracer::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceContext Tracer::BeginTrace(const char* name) {
  (void)name;  // Reserved for per-name sampling policies.
  TraceContext context;
  context.tracer = this;
  context.trace_id = next_trace_.fetch_add(1, std::memory_order_relaxed);
  context.span_id = 0;
  if (options_.sample_probability >= 1.0) {
    context.sampled = true;
  } else if (options_.sample_probability <= 0.0) {
    context.sampled = false;
  } else {
    // Deterministic per-trace coin: the top 53 mixed bits as a uniform in
    // [0, 1). Reproducible across runs with the same admission order.
    const double u =
        static_cast<double>(Mix64(context.trace_id) >> 11) * 0x1.0p-53;
    context.sampled = u < options_.sample_probability;
  }
  return context;
}

void Tracer::FinishTrace(const TraceContext& context, double latency_us,
                         bool audit_violation) {
  if (context.tracer != this || context.trace_id == 0) return;
  const bool slow =
      options_.slow_trace_us > 0.0 && latency_us >= options_.slow_trace_us;
  bool keep = context.sampled || slow || audit_violation;
  {
    std::lock_guard<std::mutex> lock(decide_mu_);
    if (forced_keep_.erase(context.trace_id) > 0) keep = true;
    decisions_[context.trace_id] = keep;
    decision_fifo_.push_back(context.trace_id);
    // Decisions outlive the pending window by 4x so spans drained late
    // (from a ring the collector visits after the decision) still resolve.
    const size_t bound = options_.max_pending_traces * 4;
    while (decision_fifo_.size() > bound) {
      decisions_.erase(decision_fifo_.front());
      decision_fifo_.pop_front();
    }
  }
  if (keep) {
    kept_traces_.fetch_add(1, std::memory_order_relaxed);
  } else {
    dropped_traces_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Tracer::NoteAuditViolation(uint64_t trace_id, uint64_t pseudonym,
                                const AuditEvent& event) {
  violations_total_.fetch_add(1, std::memory_order_relaxed);
  if (flight_recorder_ != nullptr)
    flight_recorder_->Record(FlightEventKind::kAuditViolation, trace_id,
                             pseudonym);
  std::lock_guard<std::mutex> lock(decide_mu_);
  violations_.push_back(AuditViolationRecord{trace_id, pseudonym, event});
  while (violations_.size() > options_.max_recent_violations)
    violations_.pop_front();
  if (trace_id != 0) {
    // Backstop for traces whose FinishTrace never comes (should not
    // happen): the set cannot grow without bound.
    if (forced_keep_.size() >= options_.max_pending_traces * 4)
      forced_keep_.clear();
    forced_keep_.insert(trace_id);
  }
}

std::vector<AuditViolationRecord> Tracer::RecentAuditViolations() const {
  std::lock_guard<std::mutex> lock(decide_mu_);
  return {violations_.begin(), violations_.end()};
}

Tracer::ThreadBuffer* Tracer::BufferOfThisThread() {
  for (const TlBufferEntry& entry : tl_buffer_cache) {
    if (entry.tracer_uid == uid_)
      return static_cast<ThreadBuffer*>(entry.buffer);
  }
  ThreadBuffer* buffer = nullptr;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers_.push_back(std::make_unique<ThreadBuffer>(
        options_.span_buffer_capacity,
        static_cast<uint32_t>(buffers_.size() + 1)));
    buffer = buffers_.back().get();
  }
  if (tl_buffer_cache.size() >= kTlBufferCacheCap)
    tl_buffer_cache.erase(tl_buffer_cache.begin());
  tl_buffer_cache.push_back(TlBufferEntry{uid_, buffer});
  return buffer;
}

void Tracer::Record(const SpanRecord& record) {
  ThreadBuffer* buffer = BufferOfThisThread();
  const size_t capacity = buffer->slots.size();
  const size_t head = buffer->head.load(std::memory_order_relaxed);
  if (head - buffer->tail.load(std::memory_order_acquire) >= capacity) {
    dropped_spans_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer->slots[head % capacity] = record;
  buffer->slots[head % capacity].tid = buffer->tid;
  buffer->head.store(head + 1, std::memory_order_release);
}

void Tracer::DrainLocked() {
  // Snapshot the ring registry (stable pointers; only appended to).
  std::vector<ThreadBuffer*> rings;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    rings.reserve(buffers_.size());
    for (const auto& buffer : buffers_) rings.push_back(buffer.get());
  }
  for (ThreadBuffer* ring : rings) {
    const size_t capacity = ring->slots.size();
    const size_t head = ring->head.load(std::memory_order_acquire);
    size_t tail = ring->tail.load(std::memory_order_relaxed);
    for (; tail != head; ++tail) {
      const SpanRecord& span = ring->slots[tail % capacity];
      auto [it, inserted] = pending_.try_emplace(span.trace_id);
      if (inserted) pending_fifo_.push_back(span.trace_id);
      it->second.push_back(span);
    }
    ring->tail.store(head, std::memory_order_release);
  }
  // Resolve every pending trace with a known decision.
  {
    std::lock_guard<std::mutex> lock(decide_mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      auto decided = decisions_.find(it->first);
      if (decided == decisions_.end()) {
        ++it;
        continue;
      }
      if (decided->second) {
        for (SpanRecord& span : it->second) {
          if (completed_.size() >= options_.max_completed_spans) {
            dropped_spans_.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          completed_.push_back(span);
        }
      }
      it = pending_.erase(it);
    }
  }
  // Bound the undecided backlog (a trace whose FinishTrace never came, or
  // whose spans raced in just after its decision was evicted).
  while (pending_.size() > options_.max_pending_traces &&
         !pending_fifo_.empty()) {
    const uint64_t oldest = pending_fifo_.front();
    pending_fifo_.pop_front();
    auto it = pending_.find(oldest);
    if (it != pending_.end()) {
      dropped_spans_.fetch_add(it->second.size(), std::memory_order_relaxed);
      pending_.erase(it);
    }
  }
  // Compact the fifo of ids already resolved above.
  while (!pending_fifo_.empty() && pending_.count(pending_fifo_.front()) == 0)
    pending_fifo_.pop_front();
}

std::vector<SpanRecord> Tracer::TakeCompletedSpans() {
  std::lock_guard<std::mutex> lock(collect_mu_);
  DrainLocked();
  // Group by trace id (stable within a trace) so exporters and tests see
  // each trace's spans contiguously.
  std::stable_sort(completed_.begin(), completed_.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.trace_id < b.trace_id;
                   });
  return std::exchange(completed_, {});
}

// --- Thread-local context --------------------------------------------------

const TraceContext& CurrentTraceContext() { return tl_current_context; }

ScopedTraceContext::ScopedTraceContext(const TraceContext& context)
    : saved_(tl_current_context) {
  tl_current_context = context;
}

ScopedTraceContext::~ScopedTraceContext() { tl_current_context = saved_; }

}  // namespace cloakdb::obs
