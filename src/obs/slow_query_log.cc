#include "obs/slow_query_log.h"

#include <algorithm>
#include <utility>

namespace cloakdb::obs {

namespace {

bool SlowerThan(const SlowQueryRecord& a, const SlowQueryRecord& b) {
  return a.latency_us > b.latency_us;
}

}  // namespace

SlowQueryLog::SlowQueryLog(size_t capacity) : capacity_(capacity) {
  heap_.reserve(capacity);
}

void SlowQueryLog::Record(SlowQueryRecord record) {
  if (capacity_ == 0) return;
  // Fast reject: once full, anything at or below the floor cannot displace
  // a retained entry. The floor only ever rises, so a stale read rejects
  // strictly less than the lock would — never more.
  double floor = floor_.load(std::memory_order_relaxed);
  if (floor >= 0.0 && record.latency_us <= floor) return;

  std::lock_guard<std::mutex> lock(mu_);
  if (heap_.size() < capacity_) {
    heap_.push_back(std::move(record));
    std::push_heap(heap_.begin(), heap_.end(), SlowerThan);
  } else {
    if (record.latency_us <= heap_.front().latency_us) return;
    std::pop_heap(heap_.begin(), heap_.end(), SlowerThan);
    heap_.back() = std::move(record);
    std::push_heap(heap_.begin(), heap_.end(), SlowerThan);
  }
  if (heap_.size() == capacity_)
    floor_.store(heap_.front().latency_us, std::memory_order_relaxed);
}

std::vector<SlowQueryRecord> SlowQueryLog::TopN() const {
  std::vector<SlowQueryRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = heap_;
  }
  std::sort(out.begin(), out.end(), SlowerThan);
  return out;
}

}  // namespace cloakdb::obs
