#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace cloakdb::obs {

namespace {

int64_t NowUnixMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

size_t RoundUpPow2(size_t n) {
  size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

// ---- async-signal-safe formatting helpers -------------------------------
// No snprintf in the dump path: it is not on the async-signal-safe list.

/// Appends the decimal form of `v` to `buf` at `*pos` (bounded by `cap`).
void AppendU64(char* buf, size_t cap, size_t* pos, uint64_t v) {
  char digits[20];
  size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0 && *pos < cap) buf[(*pos)++] = digits[--n];
}

void AppendI64(char* buf, size_t cap, size_t* pos, int64_t v) {
  uint64_t mag;
  if (v < 0) {
    if (*pos < cap) buf[(*pos)++] = '-';
    mag = ~static_cast<uint64_t>(v) + 1;  // safe for INT64_MIN
  } else {
    mag = static_cast<uint64_t>(v);
  }
  AppendU64(buf, cap, pos, mag);
}

void AppendStr(char* buf, size_t cap, size_t* pos, const char* s) {
  while (*s != '\0' && *pos < cap) buf[(*pos)++] = *s++;
}

void WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<size_t>(n);
  }
}

}  // namespace

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kNone:
      return "none";
    case FlightEventKind::kQueryShed:
      return "shed";
    case FlightEventKind::kQueryDegraded:
      return "degraded";
    case FlightEventKind::kDeadlineHit:
      return "deadline-hit";
    case FlightEventKind::kAuditViolation:
      return "audit-violation";
    case FlightEventKind::kWalSyncStall:
      return "wal-sync-stall";
    case FlightEventKind::kFaultProbeFail:
      return "fault-probe-fail";
    case FlightEventKind::kFaultProbeDelay:
      return "fault-probe-delay";
    case FlightEventKind::kFaultQueueStall:
      return "fault-queue-stall";
    case FlightEventKind::kCrashPoint:
      return "crash-point";
    case FlightEventKind::kPipelineShed:
      return "pipeline-shed";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : slots_(RoundUpPow2(capacity)) {
  mask_ = slots_.size() - 1;
}

void FlightRecorder::Record(FlightEventKind kind, uint64_t a, uint64_t b,
                            const char* detail) {
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & mask_];
  // Claim the slot: readers seeing an odd stamp skip it.
  slot.stamp.store(2 * seq + 1, std::memory_order_release);
  slot.unix_us.store(NowUnixMicros(), std::memory_order_relaxed);
  slot.kind.store(static_cast<uint8_t>(kind), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  // Pack detail (NUL-padded) into the slot's words, little-endian.
  char packed[sizeof(uint64_t) * 5] = {0};
  if (detail != nullptr) {
    size_t len = std::strlen(detail);
    if (len > sizeof(packed) - 1) len = sizeof(packed) - 1;
    std::memcpy(packed, detail, len);
  }
  for (size_t w = 0; w < slot.detail.size(); ++w) {
    uint64_t word = 0;
    std::memcpy(&word, packed + w * sizeof(uint64_t), sizeof(uint64_t));
    slot.detail[w].store(word, std::memory_order_relaxed);
  }
  // Publish: an even stamp matching 2*seq+2 marks the payload complete.
  slot.stamp.store(2 * seq + 2, std::memory_order_release);
  if (counter_ != nullptr) counter_->Increment();
}

bool FlightRecorder::ReadSlot(size_t index, uint64_t seq,
                              FlightEvent* out) const {
  const Slot& slot = slots_[index];
  const uint64_t want = 2 * seq + 2;
  if (slot.stamp.load(std::memory_order_acquire) != want) return false;
  out->seq = seq;
  out->unix_us = slot.unix_us.load(std::memory_order_relaxed);
  out->kind =
      static_cast<FlightEventKind>(slot.kind.load(std::memory_order_relaxed));
  out->a = slot.a.load(std::memory_order_relaxed);
  out->b = slot.b.load(std::memory_order_relaxed);
  char packed[sizeof(uint64_t) * 5];
  for (size_t w = 0; w < slot.detail.size(); ++w) {
    uint64_t word = slot.detail[w].load(std::memory_order_relaxed);
    std::memcpy(packed + w * sizeof(uint64_t), &word, sizeof(uint64_t));
  }
  // Re-check the stamp: if a writer reused the slot mid-copy, discard.
  if (slot.stamp.load(std::memory_order_acquire) != want) return false;
  std::memcpy(out->detail, packed, sizeof(out->detail));
  out->detail[sizeof(out->detail) - 1] = '\0';
  return true;
}

std::vector<FlightEvent> FlightRecorder::Snapshot(size_t max_events) const {
  const uint64_t end = next_seq_.load(std::memory_order_acquire);
  uint64_t span = slots_.size();
  if (max_events != 0 && max_events < span) span = max_events;
  const uint64_t begin = end > span ? end - span : 0;
  std::vector<FlightEvent> events;
  events.reserve(static_cast<size_t>(end - begin));
  for (uint64_t seq = begin; seq < end; ++seq) {
    FlightEvent event;
    if (ReadSlot(seq & mask_, seq, &event)) events.push_back(event);
  }
  return events;
}

void FlightRecorder::DumpToFd(int fd) const {
  const uint64_t end = next_seq_.load(std::memory_order_acquire);
  const uint64_t begin = end > slots_.size() ? end - slots_.size() : 0;
  for (uint64_t seq = begin; seq < end; ++seq) {
    FlightEvent event;
    if (!ReadSlot(seq & mask_, seq, &event)) continue;
    char line[256];
    size_t pos = 0;
    AppendStr(line, sizeof(line), &pos, "seq=");
    AppendU64(line, sizeof(line), &pos, event.seq);
    AppendStr(line, sizeof(line), &pos, " unix_us=");
    AppendI64(line, sizeof(line), &pos, event.unix_us);
    AppendStr(line, sizeof(line), &pos, " kind=");
    AppendStr(line, sizeof(line), &pos, FlightEventKindName(event.kind));
    AppendStr(line, sizeof(line), &pos, " a=");
    AppendU64(line, sizeof(line), &pos, event.a);
    AppendStr(line, sizeof(line), &pos, " b=");
    AppendU64(line, sizeof(line), &pos, event.b);
    AppendStr(line, sizeof(line), &pos, " detail=");
    for (size_t i = 0; i < sizeof(event.detail) && event.detail[i] != '\0';
         ++i) {
      const char c = event.detail[i];
      if (pos < sizeof(line))
        line[pos++] = (c >= 0x20 && c < 0x7f && c != ' ') ? c : '.';
    }
    if (pos < sizeof(line)) line[pos++] = '\n';
    WriteAll(fd, line, pos);
  }
}

// ---- fatal-signal dump --------------------------------------------------

namespace {

std::atomic<FlightRecorder*> g_dump_recorder{nullptr};
char g_dump_path[4096] = {0};
constexpr int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};

void FatalSignalHandler(int signo) {
  FlightRecorder* recorder = g_dump_recorder.load(std::memory_order_acquire);
  if (recorder != nullptr && g_dump_path[0] != '\0') {
    int fd = ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      recorder->DumpToFd(fd);
      ::close(fd);
    }
  }
  // Restore the default disposition and re-raise so the process still dies
  // with the original signal (core dumps, WIFSIGNALED status intact).
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

void InstallFatalSignalDump(FlightRecorder* recorder, const char* path) {
  if (recorder == nullptr || path == nullptr || path[0] == '\0') {
    g_dump_recorder.store(nullptr, std::memory_order_release);
    for (int signo : kFatalSignals) ::signal(signo, SIG_DFL);
    return;
  }
  size_t len = std::strlen(path);
  if (len > sizeof(g_dump_path) - 1) len = sizeof(g_dump_path) - 1;
  std::memcpy(g_dump_path, path, len);
  g_dump_path[len] = '\0';
  g_dump_recorder.store(recorder, std::memory_order_release);
  for (int signo : kFatalSignals) ::signal(signo, FatalSignalHandler);
}

}  // namespace cloakdb::obs
