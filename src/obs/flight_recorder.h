// FlightRecorder: a small lock-free ring of notable service events (sheds,
// degraded answers, audit violations, WAL sync stalls, fault-injector
// trips) kept so that every crash or brown-out leaves a self-contained
// "what happened in the last few seconds" record.
//
// Recording is one atomic increment plus a handful of relaxed stores into
// a per-slot seqlock — cheap enough to sit on the admission path. Readers
// (the admin channel, the fatal-signal dump) never block writers: a slot
// overwritten mid-read fails its stamp check and is skipped. Every field
// of a slot is an atomic, so concurrent record/snapshot is race-free under
// TSan, and the dump path uses only async-signal-safe calls (relaxed
// atomic loads + write(2)), so it can run from a SIGSEGV handler.

#ifndef CLOAKDB_OBS_FLIGHT_RECORDER_H_
#define CLOAKDB_OBS_FLIGHT_RECORDER_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace cloakdb::obs {

/// What happened. Names (FlightEventKindName) are stable wire/dump tokens.
enum class FlightEventKind : uint8_t {
  kNone = 0,
  kQueryShed,        ///< Admission control shed a query (a = trace id).
  kQueryDegraded,    ///< A degraded answer went out (a = trace id, b = covered_shards).
  kDeadlineHit,      ///< A query ran past its deadline (a = trace id).
  kAuditViolation,   ///< Privacy audit violation (a = trace id, b = pseudonym).
  kWalSyncStall,     ///< A WAL fsync ran long (a = shard, b = micros).
  kFaultProbeFail,   ///< Injected probe failure fired (a = fire count).
  kFaultProbeDelay,  ///< Injected probe delay fired (a = fire count).
  kFaultQueueStall,  ///< Injected drain stall fired (a = fire count).
  kCrashPoint,       ///< Armed crash point fired (a = storage::CrashPoint).
  kPipelineShed,     ///< Wire layer shed a pipelined request (a = request id).
};

/// Stable lowercase token for a kind ("shed", "wal-sync-stall", ...).
/// Returns a static string; async-signal-safe.
const char* FlightEventKindName(FlightEventKind kind);

/// One recorded event, as read back out of the ring.
struct FlightEvent {
  uint64_t seq = 0;      ///< Monotonic sequence number (process-wide order).
  int64_t unix_us = 0;   ///< Wall-clock microseconds since the epoch.
  FlightEventKind kind = FlightEventKind::kNone;
  uint64_t a = 0;        ///< Kind-specific payload (see enum comments).
  uint64_t b = 0;
  char detail[40] = {0};  ///< NUL-terminated free text (possibly truncated).
};

/// Fixed-capacity lock-free event ring. Thread-safe for any mix of
/// concurrent Record/Snapshot/DumpToFd calls.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  /// Capacity is rounded up to a power of two (minimum 8).
  explicit FlightRecorder(size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one event. Lock-free; truncates `detail` to fit the slot.
  /// `detail == nullptr` means empty.
  void Record(FlightEventKind kind, uint64_t a = 0, uint64_t b = 0,
              const char* detail = nullptr);

  /// Events currently in the ring, oldest first. Slots being overwritten
  /// during the scan are skipped (never torn). `max_events == 0` means all;
  /// otherwise the newest `max_events` are returned.
  std::vector<FlightEvent> Snapshot(size_t max_events = 0) const;

  /// Total events ever recorded (including ones the ring has dropped).
  uint64_t events_total() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return slots_.size(); }

  /// Optional registry counter bumped on every Record (recorder.events_total).
  void set_counter(Counter* counter) { counter_ = counter; }

  /// Writes a plain-text dump of the ring to `fd`, oldest first, one event
  /// per line:  "seq=<n> unix_us=<t> kind=<token> a=<n> b=<n> detail=<s>".
  /// Async-signal-safe: only relaxed atomic loads, stack buffers and
  /// write(2); non-printable detail bytes are replaced with '.'.
  void DumpToFd(int fd) const;

 private:
  /// One ring slot. stamp = 2*seq+1 while the writer owns it, 2*seq+2 once
  /// the payload for `seq` is fully published, 0 when never written.
  struct alignas(64) Slot {
    std::atomic<uint64_t> stamp{0};
    std::atomic<int64_t> unix_us{0};
    std::atomic<uint8_t> kind{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    /// `detail` packed little-endian into 64-bit words so readers can copy
    /// it with relaxed atomic loads (race-free under TSan).
    std::array<std::atomic<uint64_t>, 5> detail{};
  };

  /// Reads slot `index` expecting sequence `seq`; false when the slot was
  /// reused or mid-write.
  bool ReadSlot(size_t index, uint64_t seq, FlightEvent* out) const;

  std::vector<Slot> slots_;  ///< Power-of-two size.
  size_t mask_ = 0;
  std::atomic<uint64_t> next_seq_{0};
  Counter* counter_ = nullptr;
};

/// Installs fatal-signal handlers (SIGSEGV, SIGBUS, SIGFPE, SIGILL,
/// SIGABRT) that dump `recorder` to `path` (created/truncated) and then
/// re-raise with the default disposition, preserving the crash signal for
/// the parent. One recorder per process: a second call replaces the first.
/// Pass nullptr to uninstall. `path` is copied into static storage
/// (truncated to fit PATH_MAX).
void InstallFatalSignalDump(FlightRecorder* recorder, const char* path);

}  // namespace cloakdb::obs

#endif  // CLOAKDB_OBS_FLIGHT_RECORDER_H_
