// Fixed-capacity slow-query log: keeps the top-N queries by wall-clock
// latency with enough context to diagnose them (query kind, cloaked-region
// area, shards touched, candidate-list size).
//
// Recording is cheap on the common path: once the log is full, a relaxed
// atomic floor (the smallest retained latency) rejects fast queries
// without taking the lock.

#ifndef CLOAKDB_OBS_SLOW_QUERY_LOG_H_
#define CLOAKDB_OBS_SLOW_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace cloakdb::obs {

/// One retained slow query.
struct SlowQueryRecord {
  std::string kind;            ///< "private_range", "public_count", ...
  double latency_us = 0.0;     ///< End-to-end service wall time.
  double region_area = 0.0;    ///< Cloaked-region / window area.
  uint32_t shards_touched = 0; ///< Fan-out width of the query.
  uint64_t candidates = 0;     ///< Candidate / contribution list size.
  /// Trace of this query when tracing was on (0 = untraced). Slow traces
  /// are tail-kept, so a slow entry's full span tree is in the export.
  uint64_t trace_id = 0;
  /// How the query ended. Deadline-exceeded and degraded-zero-coverage
  /// queries burn their whole budget, so they compete for slow-log slots
  /// like any successful slow query; print with to_string(error).
  ErrorCode error = ErrorCode::kOk;
};

/// Thread-safe top-N-by-latency ring (a min-heap under a mutex, guarded by
/// a lock-free admission floor).
class SlowQueryLog {
 public:
  /// `capacity` = 0 disables the log (every Record is a no-op).
  explicit SlowQueryLog(size_t capacity);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Admits `record` when it is among the `capacity` slowest seen so far.
  void Record(SlowQueryRecord record);

  /// The retained queries, slowest first.
  std::vector<SlowQueryRecord> TopN() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  /// Smallest retained latency once full; admission filter.
  std::atomic<double> floor_{-1.0};
  mutable std::mutex mu_;
  /// Min-heap on latency_us (front = cheapest retained query).
  std::vector<SlowQueryRecord> heap_;
};

}  // namespace cloakdb::obs

#endif  // CLOAKDB_OBS_SLOW_QUERY_LOG_H_
