#include "obs/trace_export.h"

#include <cinttypes>
#include <cstdio>

#include "obs/metrics.h"

namespace cloakdb::obs {

namespace {

void AppendU64(std::string* out, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  *out += buf;
}

void AppendAuditJson(std::string* out, const AuditEvent& audit) {
  *out += "{\"requested_k\":";
  AppendU64(out, audit.requested_k);
  *out += ",\"achieved_k\":";
  AppendU64(out, audit.achieved_k);
  *out += ",\"area\":";
  AppendJsonNumber(out, audit.area);
  *out += ",\"min_area\":";
  AppendJsonNumber(out, audit.min_area);
  *out += ",\"max_area\":";
  AppendJsonNumber(out, audit.max_area);
  *out += ",\"k_satisfied\":";
  *out += audit.k_satisfied ? "true" : "false";
  *out += ",\"min_area_satisfied\":";
  *out += audit.min_area_satisfied ? "true" : "false";
  *out += ",\"max_area_satisfied\":";
  *out += audit.max_area_satisfied ? "true" : "false";
  *out += ",\"center_risk\":";
  *out += audit.center_risk ? "true" : "false";
  *out += ",\"boundary_risk\":";
  *out += audit.boundary_risk ? "true" : "false";
  *out += ",\"cloaking_kind\":";
  AppendU64(out, audit.cloaking_kind);
  *out += ",\"violation\":";
  *out += audit.Violation() ? "true" : "false";
  *out += '}';
}

// The fields shared by both formats: identity, hierarchy, attributes, and
// the audit payload (timing differs per format and is emitted by callers).
void AppendSpanCommonFields(std::string* out, const SpanRecord& span) {
  *out += "\"trace_id\":";
  AppendU64(out, span.trace_id);
  *out += ",\"span_id\":";
  AppendU64(out, span.span_id);
  *out += ",\"parent_id\":";
  AppendU64(out, span.parent_id);
  if (span.link_id != 0) {
    *out += ",\"link_id\":";
    AppendU64(out, span.link_id);
  }
  for (uint8_t i = 0; i < span.num_attrs; ++i) {
    *out += ",\"";
    AppendJsonEscaped(out, span.attrs[i].key);
    *out += "\":";
    AppendJsonNumber(out, span.attrs[i].value);
  }
  if (span.has_audit) {
    *out += ",\"audit\":";
    AppendAuditJson(out, span.audit);
  }
}

}  // namespace

void AppendSpanJson(std::string* out, const SpanRecord& span) {
  *out += "{\"name\":\"";
  AppendJsonEscaped(out, span.name);
  *out += "\",\"ts\":";
  AppendJsonNumber(out, span.start_us);
  *out += ",\"dur\":";
  AppendJsonNumber(out, span.dur_us);
  *out += ",\"tid\":";
  AppendU64(out, span.tid);
  *out += ',';
  AppendSpanCommonFields(out, span);
  *out += '}';
}

std::string ExportChromeTrace(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, span.name);
    out += "\",\"cat\":\"";
    out += span.has_audit ? "cloak" : "query";
    out += "\",\"ph\":\"X\",\"ts\":";
    AppendJsonNumber(&out, span.start_us);
    out += ",\"dur\":";
    AppendJsonNumber(&out, span.dur_us);
    out += ",\"pid\":1,\"tid\":";
    AppendU64(&out, span.tid);
    out += ",\"args\":{";
    AppendSpanCommonFields(&out, span);
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string ExportJsonl(const std::vector<SpanRecord>& spans) {
  std::string out;
  for (const SpanRecord& span : spans) {
    AppendSpanJson(&out, span);
    out += '\n';
  }
  return out;
}

}  // namespace cloakdb::obs
