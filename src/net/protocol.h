// The CloakDB wire protocol: versioned, length-prefixed binary frames.
//
// Every frame is a fixed 20-byte header followed by a payload:
//
//   offset  size  field        notes
//   ------  ----  -----------  ----------------------------------------
//        0     4  magic        0x42444C43 — the bytes "CLDB" on the wire
//        4     2  version      kProtocolVersion (currently 1)
//        6     1  type         FrameType
//        7     1  reserved     must be written 0; ignored on read
//        8     8  request_id   echoed verbatim in the matching response
//       16     4  payload_len  payload bytes after the header
//
// All integers are little-endian fixed-width; doubles are IEEE-754 bits in
// a little-endian u64. Strings are a u32 length prefix plus raw bytes.
// Frame types: kQuery carries a QueryRequest, kResponse a full
// QueryResponse (including its in-band ErrorCode — a shed or degraded
// query is a typed response, not a dropped connection), kError a bare
// status for requests that never reached the service (malformed payload,
// pipeline overflow), and kPing/kPong are empty health/flush probes.
//
// Decoding is hardened: every read is bounds-checked, lengths are capped
// (kMaxPayloadBytes, kMaxStringBytes), and element counts are validated
// against the bytes actually present before any allocation — a hostile
// length field costs an error, never memory. Malformed *payloads* on an
// intact frame boundary are recoverable (the server answers with a typed
// kError frame and keeps the connection); a corrupt *header* means the
// stream is unframeable and the connection must close.

#ifndef CLOAKDB_NET_PROTOCOL_H_
#define CLOAKDB_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "service/api.h"
#include "util/status.h"

namespace cloakdb::net {

/// "CLDB" read as a little-endian u32.
inline constexpr uint32_t kMagic = 0x42444C43u;

/// Bumped on any change to the header or payload encodings.
inline constexpr uint16_t kProtocolVersion = 1;

/// Bytes of the fixed frame header.
inline constexpr size_t kFrameHeaderSize = 20;

/// Upper bound on payload_len: a 4 MiB frame already carries ~100k
/// candidates, far past any real candidate list. Anything larger is
/// treated as a corrupt or hostile header.
inline constexpr uint32_t kMaxPayloadBytes = 4u << 20;

/// Upper bound on one length-prefixed string (object names, messages).
inline constexpr uint32_t kMaxStringBytes = 64u << 10;

/// Upper bound on a kHeatmap request's per-side grid resolution. The
/// service allocates resolution^2 * 8 bytes per shard plus the merged
/// grid, so an unchecked value is a remote memory-exhaustion vector; 512
/// (~2 MiB of cells) also keeps the response inside kMaxPayloadBytes.
inline constexpr uint32_t kMaxHeatmapResolution = 512;

/// Upper bound on a kPrivateKnn request's k. Far past any real candidate
/// list, but small enough that a hostile k cannot drive per-shard heap
/// sizes or an unframeable response.
inline constexpr uint64_t kMaxKnnK = 4096;

/// Upper bound on an admin response body (JSON text). Larger than
/// kMaxStringBytes because a full metrics-window dump with interval
/// percentiles is legitimately bigger than an error message; still well
/// inside kMaxPayloadBytes.
inline constexpr uint32_t kMaxAdminBodyBytes = 1u << 20;

/// Upper bound on an admin request's `limit` argument (slow-query rows,
/// flight-recorder events, window snapshots). Sizes server-side work, so
/// it is validated at decode time like the query cost caps.
inline constexpr uint32_t kMaxAdminLimit = 4096;

/// Frame discriminator. Values are wire-stable.
enum class FrameType : uint8_t {
  kQuery = 1,
  kResponse = 2,
  kError = 3,
  kPing = 4,
  kPong = 5,
  kAdminRequest = 6,
  kAdminResponse = 7,
};

/// True for the values listed in FrameType.
bool IsValidFrameType(uint8_t raw);

/// Admin sub-commands carried by kAdminRequest frames. Values are
/// wire-stable. Every command answers with a JSON body in the matching
/// kAdminResponse frame.
enum class AdminCommand : uint8_t {
  kMetricsSnapshot = 1,  ///< Lifetime-cumulative metrics (full registry).
  kMetricsWindow = 2,    ///< Windowed snapshots: interval rates/percentiles.
  kStatus = 3,           ///< Service status/health (identity, stats, stages).
  kSlowQueries = 4,      ///< Top-N slow-query log.
  kRecentTraces = 5,     ///< Trace accounting + recent audit violations.
  kFlightRecorder = 6,   ///< Flight-recorder event dump.
};

/// True for the values listed in AdminCommand.
bool IsValidAdminCommand(uint8_t raw);

/// A decoded frame header.
struct FrameHeader {
  FrameType type = FrameType::kQuery;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
};

// --- Encoding ------------------------------------------------------------
// Encoders append one complete frame (header + payload) to `out`.

void AppendQueryFrame(uint64_t request_id, const QueryRequest& request,
                      std::string* out);
/// Appends the response as a kResponse frame. If the encoded payload would
/// exceed kMaxPayloadBytes — a frame the receiver's own header validation
/// must reject — a kError frame (kResourceExhausted) is substituted so the
/// stream stays frameable.
void AppendResponseFrame(uint64_t request_id, const QueryResponse& response,
                         std::string* out);
/// A bare typed status for a request that never produced a QueryResponse.
void AppendErrorFrame(uint64_t request_id, ErrorCode code,
                      const std::string& message, std::string* out);
void AppendPingFrame(uint64_t request_id, std::string* out);
void AppendPongFrame(uint64_t request_id, std::string* out);
/// Appends a kAdminRequest frame. `limit` bounds the result set (0 means
/// the command's default); values above kMaxAdminLimit are clamped.
void AppendAdminRequestFrame(uint64_t request_id, AdminCommand command,
                             uint32_t limit, std::string* out);
/// Appends a kAdminResponse frame echoing `command` with a JSON `body`.
/// A body over kMaxAdminBodyBytes becomes a kError (kResourceExhausted)
/// frame instead, mirroring AppendResponseFrame's unframeable-frame guard.
void AppendAdminResponseFrame(uint64_t request_id, AdminCommand command,
                              const std::string& body, std::string* out);

// --- Decoding ------------------------------------------------------------

/// Decodes and validates a frame header from `data` (at least
/// kFrameHeaderSize bytes). kMalformedRequest on bad magic, wrong
/// version, unknown type, or an oversize payload length — all of which
/// mean the stream can no longer be framed.
Status DecodeFrameHeader(const uint8_t* data, size_t len, FrameHeader* out);

/// Payload decoders; `len` is exactly the header's payload_len. Return
/// kMalformedRequest on truncation, trailing garbage, or invalid values.
Status DecodeQueryPayload(const uint8_t* data, size_t len,
                          QueryRequest* out);
Status DecodeResponsePayload(const uint8_t* data, size_t len,
                             QueryResponse* out);
Status DecodeErrorPayload(const uint8_t* data, size_t len, ErrorCode* code,
                          std::string* message);
Status DecodeAdminRequestPayload(const uint8_t* data, size_t len,
                                 AdminCommand* command, uint32_t* limit);
Status DecodeAdminResponsePayload(const uint8_t* data, size_t len,
                                  AdminCommand* command, std::string* body);

}  // namespace cloakdb::net

#endif  // CLOAKDB_NET_PROTOCOL_H_
