#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/protocol.h"
#include "obs/flight_recorder.h"
#include "service/admin.h"

namespace cloakdb::net {
namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    return Errno("fcntl(O_NONBLOCK)");
  return Status::OK();
}

/// One readiness event from a poller backend.
struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

/// Readiness-multiplexing backend: level-triggered, one interest set per
/// fd. Two implementations — epoll (Linux) and portable poll(2).
class Poller {
 public:
  virtual ~Poller() = default;
  virtual Status Add(int fd, bool want_read, bool want_write) = 0;
  virtual Status Mod(int fd, bool want_read, bool want_write) = 0;
  virtual void Del(int fd) = 0;
  /// Blocks up to `timeout_ms` (-1 = forever); fills `events`.
  virtual Status Wait(std::vector<PollEvent>* events, int timeout_ms) = 0;
};

/// poll(2) backend: the interest list is a flat pollfd vector. O(n) per
/// wait, which is fine for the connection counts the fallback serves.
class PollPoller : public Poller {
 public:
  Status Add(int fd, bool want_read, bool want_write) override {
    index_[fd] = fds_.size();
    fds_.push_back({fd, Events(want_read, want_write), 0});
    return Status::OK();
  }

  Status Mod(int fd, bool want_read, bool want_write) override {
    auto it = index_.find(fd);
    if (it == index_.end()) return Status::NotFound("fd not registered");
    fds_[it->second].events = Events(want_read, want_write);
    return Status::OK();
  }

  void Del(int fd) override {
    auto it = index_.find(fd);
    if (it == index_.end()) return;
    const size_t pos = it->second;
    index_.erase(it);
    fds_[pos] = fds_.back();
    fds_.pop_back();
    if (pos < fds_.size()) index_[fds_[pos].fd] = pos;
  }

  Status Wait(std::vector<PollEvent>* events, int timeout_ms) override {
    events->clear();
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status::OK();
      return Errno("poll");
    }
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      PollEvent event;
      event.fd = p.fd;
      event.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      event.writable = (p.revents & POLLOUT) != 0;
      event.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      events->push_back(event);
      if (static_cast<int>(events->size()) == n) break;
    }
    return Status::OK();
  }

 private:
  static short Events(bool want_read, bool want_write) {
    short events = 0;
    if (want_read) events |= POLLIN;
    if (want_write) events |= POLLOUT;
    return events;
  }

  std::vector<pollfd> fds_;
  std::unordered_map<int, size_t> index_;
};

#ifdef __linux__
class EpollPoller : public Poller {
 public:
  Status Init() {
    epfd_ = epoll_create1(EPOLL_CLOEXEC);
    if (epfd_ < 0) return Errno("epoll_create1");
    return Status::OK();
  }

  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  Status Add(int fd, bool want_read, bool want_write) override {
    return Ctl(EPOLL_CTL_ADD, fd, want_read, want_write);
  }

  Status Mod(int fd, bool want_read, bool want_write) override {
    return Ctl(EPOLL_CTL_MOD, fd, want_read, want_write);
  }

  void Del(int fd) override {
    epoll_event unused{};
    epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &unused);
  }

  Status Wait(std::vector<PollEvent>* events, int timeout_ms) override {
    events->clear();
    epoll_event raw[128];
    const int n = epoll_wait(epfd_, raw, 128, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status::OK();
      return Errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      PollEvent event;
      event.fd = raw[i].data.fd;
      event.readable = (raw[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      event.writable = (raw[i].events & EPOLLOUT) != 0;
      event.error = (raw[i].events & EPOLLERR) != 0;
      events->push_back(event);
    }
    return Status::OK();
  }

 private:
  Status Ctl(int op, int fd, bool want_read, bool want_write) {
    epoll_event event{};
    if (want_read) event.events |= EPOLLIN;
    if (want_write) event.events |= EPOLLOUT;
    event.data.fd = fd;
    if (epoll_ctl(epfd_, op, fd, &event) < 0) return Errno("epoll_ctl");
    return Status::OK();
  }

  int epfd_ = -1;
};
#endif  // __linux__

Result<std::unique_ptr<Poller>> MakePoller(bool force_poll) {
#ifdef __linux__
  if (!force_poll) {
    auto poller = std::make_unique<EpollPoller>();
    CLOAKDB_RETURN_IF_ERROR(poller->Init());
    return std::unique_ptr<Poller>(std::move(poller));
  }
#else
  (void)force_poll;
#endif
  return std::unique_ptr<Poller>(std::make_unique<PollPoller>());
}

}  // namespace

class CloakServer::Impl {
 public:
  Impl(CloakDbService* service, const CloakServerOptions& options)
      : service_(service), options_(options) {}

  ~Impl() { Stop(); }

  uint16_t port() const { return port_; }

  Status Init() {
    // Eager metric creation: the catalog is complete before any traffic.
    auto& metrics = service_->metrics();
    connections_opened_ = metrics.counter("net.connections_opened_total");
    connections_closed_ = metrics.counter("net.connections_closed_total");
    active_connections_ = metrics.gauge("net.active_connections");
    frames_read_ = metrics.counter("net.frames_read_total");
    frames_written_ = metrics.counter("net.frames_written_total");
    decode_errors_ = metrics.counter("net.decode_errors_total");
    bytes_read_ = metrics.counter("net.bytes_read_total");
    bytes_written_ = metrics.counter("net.bytes_written_total");
    write_buffer_hwm_ = metrics.gauge("net.write_buffer_hwm_bytes");
    read_stalls_ = metrics.counter("net.read_stalls_total");
    pipeline_shed_ = metrics.counter("net.pipeline_shed_total");
    admin_requests_ = metrics.counter("admin.requests_total");
    admin_errors_ = metrics.counter("admin.errors_total");
    admin_request_us_ = metrics.histogram("admin.request_us");

    auto poller = MakePoller(options_.force_poll);
    if (!poller.ok()) return poller.status();
    poller_ = std::move(poller).value();

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Errno("socket");
    const int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1)
      return Status::InvalidArgument("unparseable host address: " +
                                     options_.host);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0)
      return Errno("bind");
    if (::listen(listen_fd_, options_.backlog) < 0) return Errno("listen");
    CLOAKDB_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0)
      return Errno("getsockname");
    port_ = ntohs(bound.sin_port);

    if (::pipe(wake_fds_) < 0) return Errno("pipe");
    CLOAKDB_RETURN_IF_ERROR(SetNonBlocking(wake_fds_[0]));
    CLOAKDB_RETURN_IF_ERROR(SetNonBlocking(wake_fds_[1]));

    CLOAKDB_RETURN_IF_ERROR(
        poller_->Add(listen_fd_, /*want_read=*/true, /*want_write=*/false));
    CLOAKDB_RETURN_IF_ERROR(
        poller_->Add(wake_fds_[0], /*want_read=*/true, /*want_write=*/false));

    uint32_t workers = options_.query_threads;
    if (workers == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      workers = hw == 0 ? 2 : (hw > 8 ? 8 : hw);
    }
    for (uint32_t i = 0; i < workers; ++i)
      workers_.emplace_back([this] { WorkerThread(); });
    loop_ = std::thread([this] { LoopThread(); });
    if (options_.metrics_window_interval_ms > 0)
      ticker_ = std::thread([this] { WindowTickerThread(); });
    return Status::OK();
  }

  void Stop() {
    bool expected = false;
    if (!stopped_.compare_exchange_strong(expected, true)) return;
    Wakeup();
    {
      std::lock_guard<std::mutex> lock(ticker_mu_);
    }
    ticker_cv_.notify_all();
    if (ticker_.joinable()) ticker_.join();
    if (loop_.joinable()) loop_.join();
    {
      std::lock_guard<std::mutex> lock(task_mu_);
      tasks_closed_ = true;
    }
    task_cv_.notify_all();
    for (auto& worker : workers_) worker.join();
    workers_.clear();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    for (int i : {0, 1}) {
      if (wake_fds_[i] >= 0) ::close(wake_fds_[i]);
      wake_fds_[i] = -1;
    }
  }

 private:
  struct Connection {
    int fd = -1;
    uint64_t gen = 0;
    std::string inbuf;
    std::string outbuf;
    size_t out_off = 0;  ///< Sent prefix of outbuf (compacted on drain).
    size_t inflight = 0;  ///< Queries at the workers, not yet answered.
    bool want_read = true;  ///< Last read interest handed to the poller.
    bool want_write = false;
    bool read_paused = false;
    bool peer_closed = false;      ///< Read side saw EOF.
    bool close_after_flush = false;  ///< Fatal framing error: flush + close.
  };

  struct Task {
    enum class Kind : uint8_t { kQuery, kAdmin };
    int fd = -1;
    uint64_t gen = 0;
    uint64_t request_id = 0;
    Kind kind = Kind::kQuery;
    QueryRequest request;           ///< Valid when kind == kQuery.
    AdminCommand admin_command = AdminCommand::kStatus;  ///< kind == kAdmin.
    uint32_t admin_limit = 0;       ///< kind == kAdmin.
  };

  struct Completion {
    int fd = -1;
    uint64_t gen = 0;
    std::string bytes;
  };

  // --- Event loop --------------------------------------------------------

  void LoopThread() {
    std::vector<PollEvent> events;
    while (!stopped_.load(std::memory_order_acquire)) {
      if (!poller_->Wait(&events, /*timeout_ms=*/200).ok()) break;
      // Retry a paused accept on the idle timeout: fds may have been
      // freed by something other than a connection close.
      if (events.empty()) ResumeAccept();
      for (const PollEvent& event : events) {
        if (event.fd == listen_fd_) {
          HandleAccept();
          continue;
        }
        if (event.fd == wake_fds_[0]) {
          DrainWakePipe();
          continue;
        }
        auto it = connections_.find(event.fd);
        if (it == connections_.end()) continue;
        Connection& conn = it->second;
        if (event.error) {
          CloseConnection(conn.fd);
          continue;
        }
        if (event.writable) HandleWritable(conn);
        // HandleWritable may close; re-find before reading.
        auto again = connections_.find(event.fd);
        if (again == connections_.end()) continue;
        if (event.readable) HandleReadable(again->second);
      }
      DrainCompletions();
    }
    // Shutdown: close every connection; workers drain separately.
    std::vector<int> fds;
    fds.reserve(connections_.size());
    for (const auto& [fd, conn] : connections_) fds.push_back(fd);
    for (int fd : fds) CloseConnection(fd);
  }

  void HandleAccept() {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        // Out of file descriptors: the listen fd stays level-triggered
        // readable, so keeping read interest would busy-spin the loop.
        // Drop it and resume when a connection closes (or on the next
        // idle poll timeout, in case fds free up elsewhere).
        if (errno == EMFILE || errno == ENFILE) PauseAccept();
        return;  // EAGAIN or transient error: back to the loop.
      }
      if (!SetNonBlocking(fd).ok()) {
        ::close(fd);
        continue;
      }
      const int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      Connection conn;
      conn.fd = fd;
      conn.gen = next_gen_++;
      if (!poller_->Add(fd, /*want_read=*/true, /*want_write=*/false).ok()) {
        ::close(fd);
        continue;
      }
      connections_.emplace(fd, std::move(conn));
      connections_opened_->Increment();
      active_connections_->Set(static_cast<double>(connections_.size()));
    }
  }

  void HandleReadable(Connection& conn) {
    if (conn.read_paused || conn.close_after_flush) return;
    char buffer[64 * 1024];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buffer, sizeof(buffer), 0);
      if (n > 0) {
        bytes_read_->Increment(static_cast<uint64_t>(n));
        conn.inbuf.append(buffer, static_cast<size_t>(n));
        if (static_cast<size_t>(n) < sizeof(buffer)) break;
        continue;
      }
      if (n == 0) {
        conn.peer_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConnection(conn.fd);
      return;
    }
    // FlushWrites may close the connection and erase it from connections_,
    // so capture the fd now — `conn` is dangling after a close.
    const int fd = conn.fd;
    if (!ParseFrames(conn)) {
      // Unframeable stream: the error frame (if any) is already queued;
      // flush it, then close.
      conn.close_after_flush = true;
      FlushWrites(conn);
      auto it = connections_.find(fd);
      if (it != connections_.end()) UpdateInterest(it->second);
      return;
    }
    if (conn.peer_closed && conn.inflight == 0 &&
        conn.out_off == conn.outbuf.size()) {
      CloseConnection(fd);
      return;
    }
    FlushWrites(conn);
    auto it = connections_.find(fd);
    if (it != connections_.end()) UpdateInterest(it->second);
  }

  /// Frames the input buffer; false means the stream is corrupt and the
  /// connection must close (a best-effort error frame is queued first).
  bool ParseFrames(Connection& conn) {
    size_t off = 0;
    while (conn.inbuf.size() - off >= kFrameHeaderSize) {
      const uint8_t* base =
          reinterpret_cast<const uint8_t*>(conn.inbuf.data()) + off;
      FrameHeader header;
      Status status =
          DecodeFrameHeader(base, conn.inbuf.size() - off, &header);
      if (!status.ok()) {
        decode_errors_->Increment();
        std::string frame;
        AppendErrorFrame(0, ErrorCode::kMalformedRequest, status.message(),
                         &frame);
        QueueWrite(conn, frame);
        conn.inbuf.clear();
        return false;
      }
      const size_t total = kFrameHeaderSize + header.payload_len;
      if (conn.inbuf.size() - off < total) break;  // Partial frame: wait.
      frames_read_->Increment();
      const uint8_t* payload = base + kFrameHeaderSize;
      switch (header.type) {
        case FrameType::kQuery: {
          QueryRequest request;
          Status decoded =
              DecodeQueryPayload(payload, header.payload_len, &request);
          if (!decoded.ok()) {
            // The frame boundary is intact: answer with a typed error and
            // keep the connection.
            decode_errors_->Increment();
            std::string frame;
            AppendErrorFrame(header.request_id, ErrorCode::kMalformedRequest,
                             decoded.message(), &frame);
            QueueWrite(conn, frame);
            break;
          }
          if (conn.inflight >= options_.max_pipeline) {
            ShedPipelined(conn, header.request_id);
            break;
          }
          ++conn.inflight;
          Task task;
          task.fd = conn.fd;
          task.gen = conn.gen;
          task.request_id = header.request_id;
          task.kind = Task::Kind::kQuery;
          task.request = std::move(request);
          SubmitTask(std::move(task));
          break;
        }
        case FrameType::kAdminRequest: {
          AdminCommand command = AdminCommand::kStatus;
          uint32_t limit = 0;
          Status decoded = DecodeAdminRequestPayload(
              payload, header.payload_len, &command, &limit);
          if (!decoded.ok()) {
            // Intact frame boundary: typed error, keep the connection —
            // identical treatment to a malformed query payload.
            decode_errors_->Increment();
            std::string frame;
            AppendErrorFrame(header.request_id, ErrorCode::kMalformedRequest,
                             decoded.message(), &frame);
            QueueWrite(conn, frame);
            break;
          }
          if (conn.inflight >= options_.max_pipeline) {
            ShedPipelined(conn, header.request_id);
            break;
          }
          ++conn.inflight;
          Task task;
          task.fd = conn.fd;
          task.gen = conn.gen;
          task.request_id = header.request_id;
          task.kind = Task::Kind::kAdmin;
          task.admin_command = command;
          task.admin_limit = limit;
          SubmitTask(std::move(task));
          break;
        }
        case FrameType::kPing: {
          std::string frame;
          AppendPongFrame(header.request_id, &frame);
          QueueWrite(conn, frame);
          break;
        }
        default: {
          // Clients must not send response/error/pong frames.
          decode_errors_->Increment();
          std::string frame;
          AppendErrorFrame(header.request_id, ErrorCode::kMalformedRequest,
                           "unexpected frame type from client", &frame);
          QueueWrite(conn, frame);
          conn.inbuf.clear();
          return false;
        }
      }
      off += total;
    }
    if (off > 0) conn.inbuf.erase(0, off);
    return true;
  }

  /// Answers a request that overflowed the pipeline cap with a typed
  /// kShed error frame and leaves a flight-recorder breadcrumb.
  void ShedPipelined(Connection& conn, uint64_t request_id) {
    pipeline_shed_->Increment();
    service_->flight_recorder()->Record(obs::FlightEventKind::kPipelineShed,
                                        request_id);
    std::string frame;
    AppendErrorFrame(request_id, ErrorCode::kShed, "pipeline limit exceeded",
                     &frame);
    QueueWrite(conn, frame);
  }

  void HandleWritable(Connection& conn) {
    const int fd = conn.fd;  // FlushWrites may destroy `conn` on close.
    FlushWrites(conn);
    auto it = connections_.find(fd);
    if (it != connections_.end()) UpdateInterest(it->second);
  }

  void QueueWrite(Connection& conn, const std::string& bytes) {
    conn.outbuf.append(bytes);
    frames_written_->Increment();
    write_buffer_hwm_->UpdateMax(
        static_cast<double>(conn.outbuf.size() - conn.out_off));
  }

  /// Sends as much of outbuf as the socket accepts; may close the
  /// connection (on hard error, or when a flagged close finished its
  /// flush) — callers must re-find the connection afterwards.
  void FlushWrites(Connection& conn) {
    while (conn.out_off < conn.outbuf.size()) {
      const ssize_t n =
          ::send(conn.fd, conn.outbuf.data() + conn.out_off,
                 conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        bytes_written_->Increment(static_cast<uint64_t>(n));
        conn.out_off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      CloseConnection(conn.fd);
      return;
    }
    if (conn.out_off == conn.outbuf.size()) {
      conn.outbuf.clear();
      conn.out_off = 0;
      if (conn.close_after_flush ||
          (conn.peer_closed && conn.inflight == 0)) {
        CloseConnection(conn.fd);
        return;
      }
    } else if (conn.out_off > (1u << 20)) {
      // Compact the sent prefix so a long-lived slow connection does not
      // pin peak-size buffers.
      conn.outbuf.erase(0, conn.out_off);
      conn.out_off = 0;
    }
  }

  /// Recomputes poller interest: write interest iff bytes are pending;
  /// read interest drops while the peer is behind on draining responses
  /// (backpressure) and resumes below half the limit.
  void UpdateInterest(Connection& conn) {
    const size_t pending = conn.outbuf.size() - conn.out_off;
    const bool want_write = pending > 0;
    bool read_paused = conn.read_paused;
    if (!read_paused && pending > options_.write_buffer_limit) {
      read_paused = true;
      read_stalls_->Increment();
    } else if (read_paused && pending <= options_.write_buffer_limit / 2) {
      read_paused = false;
    }
    const bool want_read =
        !read_paused && !conn.close_after_flush && !conn.peer_closed;
    // want_read can flip on its own (peer_closed / close_after_flush with
    // no buffered writes); missing that Mod leaves an EOF socket
    // readable-forever and busy-spins the loop.
    if (want_write != conn.want_write || read_paused != conn.read_paused ||
        want_read != conn.want_read) {
      conn.want_read = want_read;
      conn.want_write = want_write;
      conn.read_paused = read_paused;
      poller_->Mod(conn.fd, want_read, want_write);
    }
  }

  void CloseConnection(int fd) {
    auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    poller_->Del(fd);
    ::close(fd);
    connections_.erase(it);
    connections_closed_->Increment();
    active_connections_->Set(static_cast<double>(connections_.size()));
    ResumeAccept();  // A freed fd makes accept worth retrying.
  }

  void PauseAccept() {
    if (accept_paused_) return;
    accept_paused_ = true;
    poller_->Mod(listen_fd_, /*want_read=*/false, /*want_write=*/false);
  }

  void ResumeAccept() {
    if (!accept_paused_) return;
    accept_paused_ = false;
    poller_->Mod(listen_fd_, /*want_read=*/true, /*want_write=*/false);
  }

  // --- Worker pool -------------------------------------------------------

  void SubmitTask(Task task) {
    {
      std::lock_guard<std::mutex> lock(task_mu_);
      tasks_.push_back(std::move(task));
    }
    task_cv_.notify_one();
  }

  void WorkerThread() {
    for (;;) {
      Task task;
      {
        std::unique_lock<std::mutex> lock(task_mu_);
        task_cv_.wait(lock,
                      [this] { return tasks_closed_ || !tasks_.empty(); });
        if (tasks_.empty()) return;  // Closed and drained.
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      Completion completion;
      completion.fd = task.fd;
      completion.gen = task.gen;
      if (task.kind == Task::Kind::kAdmin) {
        ServeAdmin(task, &completion.bytes);
      } else {
        const QueryResponse response = service_->ExecuteQuery(task.request);
        AppendResponseFrame(task.request_id, response, &completion.bytes);
      }
      {
        std::lock_guard<std::mutex> lock(completion_mu_);
        completions_.push_back(std::move(completion));
      }
      Wakeup();
    }
  }

  /// Runs one admin command on a worker thread and encodes the reply —
  /// a kAdminResponse on success, a typed kError otherwise.
  void ServeAdmin(const Task& task, std::string* bytes) {
    admin_requests_->Increment();
    const auto t0 = std::chrono::steady_clock::now();
    const Result<std::string> body =
        HandleAdminCommand(*service_, task.admin_command, task.admin_limit);
    admin_request_us_->Record(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count());
    if (body.ok()) {
      AppendAdminResponseFrame(task.request_id, task.admin_command,
                               body.value(), bytes);
    } else {
      admin_errors_->Increment();
      AppendErrorFrame(task.request_id,
                       static_cast<ErrorCode>(body.status().code()),
                       body.status().message(), bytes);
    }
  }

  /// Pushes a windowed-metrics snapshot into the service registry on a
  /// fixed cadence, so kMetricsWindow always has fresh intervals. Runs on
  /// its own thread; the condition variable makes shutdown prompt.
  void WindowTickerThread() {
    std::unique_lock<std::mutex> lock(ticker_mu_);
    const auto interval =
        std::chrono::milliseconds(options_.metrics_window_interval_ms);
    while (!stopped_.load(std::memory_order_acquire)) {
      if (ticker_cv_.wait_for(lock, interval, [this] {
            return stopped_.load(std::memory_order_acquire);
          }))
        return;
      service_->metrics().PushWindowSnapshot();
    }
  }

  void DrainCompletions() {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(completion_mu_);
      batch.swap(completions_);
    }
    for (Completion& completion : batch) {
      auto it = connections_.find(completion.fd);
      // The generation check drops completions for a connection that died
      // mid-query (its fd may already belong to a new connection).
      if (it == connections_.end() || it->second.gen != completion.gen)
        continue;
      Connection& conn = it->second;
      if (conn.inflight > 0) --conn.inflight;
      QueueWrite(conn, completion.bytes);
      FlushWrites(conn);
      auto again = connections_.find(completion.fd);
      if (again != connections_.end()) UpdateInterest(again->second);
    }
  }

  void Wakeup() {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
  }

  void DrainWakePipe() {
    char buffer[256];
    while (::read(wake_fds_[0], buffer, sizeof(buffer)) > 0) {
    }
  }

  CloakDbService* const service_;
  const CloakServerOptions options_;

  obs::Counter* connections_opened_ = nullptr;
  obs::Counter* connections_closed_ = nullptr;
  obs::Gauge* active_connections_ = nullptr;
  obs::Counter* frames_read_ = nullptr;
  obs::Counter* frames_written_ = nullptr;
  obs::Counter* decode_errors_ = nullptr;
  obs::Counter* bytes_read_ = nullptr;
  obs::Counter* bytes_written_ = nullptr;
  obs::Gauge* write_buffer_hwm_ = nullptr;
  obs::Counter* read_stalls_ = nullptr;
  obs::Counter* pipeline_shed_ = nullptr;
  obs::Counter* admin_requests_ = nullptr;
  obs::Counter* admin_errors_ = nullptr;
  obs::ShardedHistogram* admin_request_us_ = nullptr;

  std::unique_ptr<Poller> poller_;
  int listen_fd_ = -1;
  bool accept_paused_ = false;  ///< Listen fd interest dropped on EMFILE.
  int wake_fds_[2] = {-1, -1};
  uint16_t port_ = 0;
  uint64_t next_gen_ = 1;
  std::unordered_map<int, Connection> connections_;

  std::mutex task_mu_;
  std::condition_variable task_cv_;
  std::deque<Task> tasks_;
  bool tasks_closed_ = false;

  std::mutex completion_mu_;
  std::vector<Completion> completions_;

  std::mutex ticker_mu_;
  std::condition_variable ticker_cv_;
  std::thread ticker_;

  std::vector<std::thread> workers_;
  std::thread loop_;
  std::atomic<bool> stopped_{false};
};

CloakServer::CloakServer(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

CloakServer::~CloakServer() = default;

uint16_t CloakServer::port() const { return impl_->port(); }

void CloakServer::Stop() { impl_->Stop(); }

Result<std::unique_ptr<CloakServer>> CloakServer::Create(
    CloakDbService* service, const CloakServerOptions& options) {
  if (service == nullptr)
    return Status::InvalidArgument("service must not be null");
  auto impl = std::make_unique<Impl>(service, options);
  CLOAKDB_RETURN_IF_ERROR(impl->Init());
  return std::unique_ptr<CloakServer>(new CloakServer(std::move(impl)));
}

}  // namespace cloakdb::net
