#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace cloakdb::net {
namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

CloakClient::CloakClient(int fd) : fd_(fd) {}

CloakClient::~CloakClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<CloakClient>> CloakClient::Connect(
    const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = Errno("connect");
    ::close(fd);
    return status;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<CloakClient>(new CloakClient(fd));
}

Status CloakClient::WriteAll(const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Status CloakClient::ReadFrame(FrameHeader* header, std::string* payload) {
  // Fill until a full header is buffered, validate it, then fill until
  // the payload is complete.
  char buffer[64 * 1024];
  for (;;) {
    if (readbuf_.size() >= kFrameHeaderSize) {
      CLOAKDB_RETURN_IF_ERROR(DecodeFrameHeader(
          reinterpret_cast<const uint8_t*>(readbuf_.data()),
          readbuf_.size(), header));
      const size_t total = kFrameHeaderSize + header->payload_len;
      if (readbuf_.size() >= total) {
        payload->assign(readbuf_, kFrameHeaderSize, header->payload_len);
        readbuf_.erase(0, total);
        return Status::OK();
      }
    }
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      readbuf_.append(buffer, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::Internal("connection closed by server");
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

Result<uint64_t> CloakClient::Send(const QueryRequest& request) {
  const uint64_t id = next_request_id_++;
  std::string frame;
  AppendQueryFrame(id, request, &frame);
  CLOAKDB_RETURN_IF_ERROR(WriteAll(frame));
  return id;
}

Result<QueryResponse> CloakClient::Await(uint64_t request_id) {
  for (;;) {
    auto parked = parked_.find(request_id);
    if (parked != parked_.end()) {
      Result<QueryResponse> result = std::move(parked->second);
      parked_.erase(parked);
      return result;
    }
    FrameHeader header;
    std::string payload;
    CLOAKDB_RETURN_IF_ERROR(ReadFrame(&header, &payload));
    const uint8_t* data = reinterpret_cast<const uint8_t*>(payload.data());
    Result<QueryResponse> arrived = Status::Internal("unset");
    switch (header.type) {
      case FrameType::kResponse: {
        QueryResponse response;
        const Status decoded =
            DecodeResponsePayload(data, payload.size(), &response);
        arrived = decoded.ok() ? Result<QueryResponse>(std::move(response))
                               : Result<QueryResponse>(decoded);
        break;
      }
      case FrameType::kError: {
        ErrorCode code = ErrorCode::kInternal;
        std::string message;
        const Status decoded =
            DecodeErrorPayload(data, payload.size(), &code, &message);
        arrived = decoded.ok() ? Result<QueryResponse>(Status(code, message))
                               : Result<QueryResponse>(decoded);
        break;
      }
      case FrameType::kPong:
        // A pong mid-pipeline (from an interleaved Ping) is not a query
        // response; drop it.
        continue;
      default:
        return Status::Internal("unexpected frame type from server");
    }
    // An error frame with request_id 0 is the server's last word before
    // closing an unframeable stream — deliver it to whoever is waiting.
    if (header.request_id == request_id || header.request_id == 0)
      return arrived;
    parked_.emplace(header.request_id, std::move(arrived));
  }
}

Result<QueryResponse> CloakClient::Execute(const QueryRequest& request) {
  auto id = Send(request);
  if (!id.ok()) return id.status();
  return Await(id.value());
}

void CloakClient::ParkQueryFrame(const FrameHeader& header,
                                 const std::string& payload) {
  const uint8_t* data = reinterpret_cast<const uint8_t*>(payload.data());
  if (header.type == FrameType::kResponse) {
    QueryResponse response;
    const Status decoded =
        DecodeResponsePayload(data, payload.size(), &response);
    parked_.emplace(header.request_id,
                    decoded.ok() ? Result<QueryResponse>(std::move(response))
                                 : Result<QueryResponse>(decoded));
  } else if (header.type == FrameType::kError) {
    ErrorCode code = ErrorCode::kInternal;
    std::string message;
    const Status decoded =
        DecodeErrorPayload(data, payload.size(), &code, &message);
    parked_.emplace(header.request_id,
                    decoded.ok() ? Result<QueryResponse>(Status(code, message))
                                 : Result<QueryResponse>(decoded));
  }
}

Status CloakClient::Ping() {
  const uint64_t id = next_request_id_++;
  std::string frame;
  AppendPingFrame(id, &frame);
  CLOAKDB_RETURN_IF_ERROR(WriteAll(frame));
  for (;;) {
    FrameHeader header;
    std::string payload;
    CLOAKDB_RETURN_IF_ERROR(ReadFrame(&header, &payload));
    if (header.type == FrameType::kPong && header.request_id == id)
      return Status::OK();
    // Queued query responses may arrive first; park them for Await.
    ParkQueryFrame(header, payload);
  }
}

Result<std::string> CloakClient::Admin(AdminCommand command,
                                       uint32_t limit) {
  const uint64_t id = next_request_id_++;
  std::string frame;
  AppendAdminRequestFrame(id, command, limit, &frame);
  CLOAKDB_RETURN_IF_ERROR(WriteAll(frame));
  for (;;) {
    FrameHeader header;
    std::string payload;
    CLOAKDB_RETURN_IF_ERROR(ReadFrame(&header, &payload));
    const uint8_t* data = reinterpret_cast<const uint8_t*>(payload.data());
    if (header.type == FrameType::kAdminResponse && header.request_id == id) {
      AdminCommand echoed = AdminCommand::kStatus;
      std::string body;
      CLOAKDB_RETURN_IF_ERROR(
          DecodeAdminResponsePayload(data, payload.size(), &echoed, &body));
      if (echoed != command)
        return Status::Internal("admin response echoes the wrong command");
      return body;
    }
    if (header.type == FrameType::kError &&
        (header.request_id == id || header.request_id == 0)) {
      ErrorCode code = ErrorCode::kInternal;
      std::string message;
      CLOAKDB_RETURN_IF_ERROR(
          DecodeErrorPayload(data, payload.size(), &code, &message));
      return Status(code, message);
    }
    // Pipelined query traffic may land first; park it for Await.
    ParkQueryFrame(header, payload);
  }
}

}  // namespace cloakdb::net
