// cloakd's engine: a single-threaded event-loop TCP server.
//
// One event-loop thread owns every socket: it accepts, reads, frames, and
// writes — all non-blocking, multiplexed through epoll on Linux (a
// portable poll(2) backend exists as a fallback and for test coverage,
// selectable with CloakServerOptions::force_poll). Decoded queries are
// handed to a small pool of query workers that call
// CloakDbService::ExecuteQuery — the same entry point in-process callers
// use, so admission control, deadlines, tracing, and degradation behave
// identically over the wire. Workers never touch sockets: each finished
// response is encoded and posted to a completion queue; a self-pipe wakes
// the loop, which appends the bytes to the connection's write buffer and
// flushes opportunistically.
//
// Backpressure: a connection whose write buffer exceeds
// write_buffer_limit stops being read (its read interest is dropped)
// until the peer drains below half the limit — a slow reader throttles
// itself, never the loop. A connection pipelining more than max_pipeline
// unanswered requests gets typed kShed error frames instead of unbounded
// queueing. Malformed payloads on an intact frame boundary earn a typed
// kMalformedRequest error frame; an unframeable byte stream (bad magic,
// wrong version, oversize length) closes the connection.
//
// Admin frames (kAdminRequest) ride the same connection and the same
// worker pool as queries: the loop decodes the sub-command and submits an
// admin task, a worker renders the JSON body off the event loop, and the
// kAdminResponse flows back through the ordinary completion queue — an
// admin poll contends for a worker slot like any query and can never
// stall the loop. Admin requests share the per-connection pipeline cap
// with queries. A background ticker pushes a windowed-metrics snapshot
// into the service registry every metrics_window_interval_ms so
// kMetricsWindow has interval rates to serve.
//
// All net.* metrics land in the service's own MetricsRegistry, so one
// export carries service and wire observability together.

#ifndef CLOAKDB_NET_SERVER_H_
#define CLOAKDB_NET_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "service/cloak_db_service.h"
#include "util/status.h"

namespace cloakdb::net {

struct CloakServerOptions {
  /// Listen address; the default binds loopback only.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port (read it back with port()).
  uint16_t port = 0;
  /// Query workers calling CloakDbService::ExecuteQuery; 0 = one per
  /// hardware thread, capped at 8.
  uint32_t query_threads = 0;
  /// Accept backlog.
  int backlog = 128;
  /// Per-connection write-buffer bytes beyond which the connection's read
  /// interest is dropped until the peer drains half of it.
  size_t write_buffer_limit = 4u << 20;
  /// Unanswered pipelined requests per connection beyond which further
  /// queries are answered with typed kShed error frames.
  size_t max_pipeline = 1024;
  /// Use the portable poll(2) backend even where epoll is available.
  bool force_poll = false;
  /// Interval between windowed-metrics snapshots pushed into the service
  /// registry's ring (served by AdminCommand::kMetricsWindow). 0 disables
  /// the ticker — remote window queries then see only snapshots pushed by
  /// someone else (tests, the simulator loop).
  uint32_t metrics_window_interval_ms = 1000;
};

/// The server. Create() binds + listens + starts the loop and workers;
/// the destructor (or Stop()) shuts everything down and joins.
class CloakServer {
 public:
  /// `service` must outlive the server.
  static Result<std::unique_ptr<CloakServer>> Create(
      CloakDbService* service, const CloakServerOptions& options);

  ~CloakServer();

  CloakServer(const CloakServer&) = delete;
  CloakServer& operator=(const CloakServer&) = delete;

  /// The bound port (resolves port=0 to the kernel's pick).
  uint16_t port() const;

  /// Idempotent shutdown: stops accepting, closes every connection,
  /// drains the workers, joins all threads.
  void Stop();

 private:
  class Impl;
  explicit CloakServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace cloakdb::net

#endif  // CLOAKDB_NET_SERVER_H_
