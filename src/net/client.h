// Blocking client for the CloakDB wire protocol.
//
// One CloakClient owns one TCP connection. The simple path is
// Execute(): send a query, block for its response. The pipelined path
// splits that into Send() — which returns immediately with the request
// id — and Await(id), letting callers keep many requests in flight on
// one connection; responses may arrive in any order and are parked
// until their id is awaited.
//
// Errors surface uniformly as Result<QueryResponse>: a typed kError
// frame from the server (shed, malformed) becomes a Status with that
// code; transport failures become kInternal. The client is not
// thread-safe — use one client per thread, or external locking.

#ifndef CLOAKDB_NET_CLIENT_H_
#define CLOAKDB_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/protocol.h"
#include "service/api.h"
#include "util/status.h"

namespace cloakdb::net {

class CloakClient {
 public:
  /// Connects (blocking) to host:port.
  static Result<std::unique_ptr<CloakClient>> Connect(
      const std::string& host, uint16_t port);

  ~CloakClient();

  CloakClient(const CloakClient&) = delete;
  CloakClient& operator=(const CloakClient&) = delete;

  /// Send + Await in one call.
  Result<QueryResponse> Execute(const QueryRequest& request);

  /// Writes one query frame and returns its request id without waiting.
  Result<uint64_t> Send(const QueryRequest& request);

  /// Blocks until the response for `request_id` arrives. Out-of-order
  /// arrivals for other ids are parked for their own Await calls.
  Result<QueryResponse> Await(uint64_t request_id);

  /// Round-trips a ping frame; proves the connection and flushes the
  /// server's pipeline.
  Status Ping();

  /// Round-trips one admin command and returns the JSON body of its
  /// kAdminResponse. `limit` bounds list-shaped results (0 = the
  /// command's default). Query responses arriving mid-pipeline are
  /// parked for their own Await calls, so admin polls interleave freely
  /// with pipelined queries on the same connection.
  Result<std::string> Admin(AdminCommand command, uint32_t limit = 0);

 private:
  CloakClient(int fd);

  Status WriteAll(const std::string& bytes);
  /// Reads exactly one frame (header + payload) off the socket.
  Status ReadFrame(FrameHeader* header, std::string* payload);
  /// Decodes a kResponse/kError frame that arrived while waiting for
  /// something else and parks it for its own Await call.
  void ParkQueryFrame(const FrameHeader& header, const std::string& payload);

  int fd_;
  uint64_t next_request_id_ = 1;
  std::string readbuf_;
  /// Responses that arrived while awaiting a different id.
  std::unordered_map<uint64_t, Result<QueryResponse>> parked_;
};

}  // namespace cloakdb::net

#endif  // CLOAKDB_NET_CLIENT_H_
