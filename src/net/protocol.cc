#include "net/protocol.h"

#include <bit>
#include <cstring>

namespace cloakdb::net {
namespace {

// --- Little-endian append helpers ---------------------------------------

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU16(std::string* out, uint16_t v) {
  for (int i = 0; i < 2; ++i)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void AppendF64(std::string* out, double v) {
  AppendU64(out, std::bit_cast<uint64_t>(v));
}

void AppendRect(std::string* out, const Rect& r) {
  AppendF64(out, r.min_x);
  AppendF64(out, r.min_y);
  AppendF64(out, r.max_x);
  AppendF64(out, r.max_y);
}

void AppendString(std::string* out, const std::string& s) {
  // Encoders truncate instead of failing: an oversize error message is a
  // server-side artifact, never worth dropping the frame over.
  const uint32_t len =
      static_cast<uint32_t>(s.size() > kMaxStringBytes ? kMaxStringBytes
                                                       : s.size());
  AppendU32(out, len);
  out->append(s.data(), len);
}

void AppendHeader(std::string* out, FrameType type, uint64_t request_id,
                  uint32_t payload_len) {
  AppendU32(out, kMagic);
  AppendU16(out, kProtocolVersion);
  AppendU8(out, static_cast<uint8_t>(type));
  AppendU8(out, 0);  // reserved
  AppendU64(out, request_id);
  AppendU32(out, payload_len);
}

/// Encodes payload-producing frames: body is appended to a scratch string
/// first so the header can carry the exact payload length.
void AppendFrame(std::string* out, FrameType type, uint64_t request_id,
                 const std::string& payload) {
  AppendHeader(out, type, request_id,
               static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

// --- Bounds-checked reader ----------------------------------------------

/// Sequential reader over one payload. Every Read* checks bounds; after a
/// failure `ok` latches false and subsequent reads return zero values, so
/// decode loops can defer the error check to the end.
struct ByteReader {
  const uint8_t* data;
  size_t len;
  size_t pos = 0;
  bool ok = true;

  bool Ensure(size_t n) {
    if (!ok || len - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }

  uint8_t ReadU8() {
    if (!Ensure(1)) return 0;
    return data[pos++];
  }

  uint16_t ReadU16() {
    if (!Ensure(2)) return 0;
    uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
      v = static_cast<uint16_t>(v | (uint16_t{data[pos + i]} << (8 * i)));
    pos += 2;
    return v;
  }

  uint32_t ReadU32() {
    if (!Ensure(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t{data[pos + i]} << (8 * i);
    pos += 4;
    return v;
  }

  uint64_t ReadU64() {
    if (!Ensure(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t{data[pos + i]} << (8 * i);
    pos += 8;
    return v;
  }

  double ReadF64() { return std::bit_cast<double>(ReadU64()); }

  Rect ReadRect() {
    Rect r{0.0, 0.0, 0.0, 0.0};
    r.min_x = ReadF64();
    r.min_y = ReadF64();
    r.max_x = ReadF64();
    r.max_y = ReadF64();
    return r;
  }

  std::string ReadString() {
    const uint32_t n = ReadU32();
    if (n > kMaxStringBytes || !Ensure(n)) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return s;
  }

  /// True iff everything decoded and the payload was fully consumed
  /// (trailing bytes mean a framing bug or version skew — reject).
  bool Done() const { return ok && pos == len; }
};

Status Malformed(const char* what) {
  return Status::MalformedRequest(what);
}

bool IsValidErrorCode(uint8_t raw) {
  return raw <= static_cast<uint8_t>(StatusCode::kMalformedRequest);
}

}  // namespace

bool IsValidFrameType(uint8_t raw) {
  return raw >= static_cast<uint8_t>(FrameType::kQuery) &&
         raw <= static_cast<uint8_t>(FrameType::kAdminResponse);
}

bool IsValidAdminCommand(uint8_t raw) {
  return raw >= static_cast<uint8_t>(AdminCommand::kMetricsSnapshot) &&
         raw <= static_cast<uint8_t>(AdminCommand::kFlightRecorder);
}

void AppendQueryFrame(uint64_t request_id, const QueryRequest& request,
                      std::string* out) {
  std::string payload;
  AppendU8(&payload, static_cast<uint8_t>(request.kind));
  AppendU8(&payload, request.exact_rounded_rect ? 1 : 0);
  AppendU32(&payload, request.category);
  AppendU32(&payload, request.resolution);
  AppendRect(&payload, request.region);
  AppendF64(&payload, request.radius);
  AppendU64(&payload, request.k);
  AppendU64(&payload, static_cast<uint64_t>(request.deadline_us));
  AppendFrame(out, FrameType::kQuery, request_id, payload);
}

void AppendResponseFrame(uint64_t request_id, const QueryResponse& response,
                         std::string* out) {
  std::string payload;
  payload.reserve(96 + response.candidates.size() * 48 +
                  response.heat.size() * 8);
  AppendU8(&payload, static_cast<uint8_t>(response.kind));
  AppendU8(&payload, static_cast<uint8_t>(response.error));
  uint8_t flags = 0;
  if (response.degraded) flags |= 1;
  if (response.degraded_admission) flags |= 2;
  AppendU8(&payload, flags);
  AppendU8(&payload, 0);  // reserved
  AppendString(&payload, response.message);
  AppendU64(&payload, response.trace_id);
  AppendU64(&payload, response.server_latency_us);
  AppendU64(&payload, response.covered_shards);
  AppendRect(&payload, response.extended_region);
  AppendF64(&payload, response.fetch_radius);
  AppendU64(&payload, response.pruned);
  AppendF64(&payload, response.expected_count);
  AppendU64(&payload, response.count_min);
  AppendU64(&payload, response.count_max);
  AppendU32(&payload, response.resolution);
  AppendRect(&payload, response.space);
  AppendU32(&payload, static_cast<uint32_t>(response.candidates.size()));
  for (const PublicObject& object : response.candidates) {
    AppendU64(&payload, object.id);
    AppendF64(&payload, object.location.x);
    AppendF64(&payload, object.location.y);
    AppendU32(&payload, object.category);
    AppendString(&payload, object.name);
  }
  AppendU32(&payload, static_cast<uint32_t>(response.heat.size()));
  for (double cell : response.heat) AppendF64(&payload, cell);
  if (payload.size() > kMaxPayloadBytes) {
    // Never emit a frame our own header validation rejects: the receiver
    // would treat it as a corrupt header and kill the connection. A typed
    // error keeps the stream frameable and the request answered.
    AppendErrorFrame(request_id, ErrorCode::kResourceExhausted,
                     "response exceeds the frame payload limit", out);
    return;
  }
  AppendFrame(out, FrameType::kResponse, request_id, payload);
}

void AppendErrorFrame(uint64_t request_id, ErrorCode code,
                      const std::string& message, std::string* out) {
  std::string payload;
  AppendU8(&payload, static_cast<uint8_t>(code));
  AppendString(&payload, message);
  AppendFrame(out, FrameType::kError, request_id, payload);
}

void AppendPingFrame(uint64_t request_id, std::string* out) {
  AppendHeader(out, FrameType::kPing, request_id, 0);
}

void AppendPongFrame(uint64_t request_id, std::string* out) {
  AppendHeader(out, FrameType::kPong, request_id, 0);
}

void AppendAdminRequestFrame(uint64_t request_id, AdminCommand command,
                             uint32_t limit, std::string* out) {
  std::string payload;
  AppendU8(&payload, static_cast<uint8_t>(command));
  AppendU8(&payload, 0);   // reserved
  AppendU16(&payload, 0);  // reserved
  AppendU32(&payload, limit > kMaxAdminLimit ? kMaxAdminLimit : limit);
  AppendFrame(out, FrameType::kAdminRequest, request_id, payload);
}

void AppendAdminResponseFrame(uint64_t request_id, AdminCommand command,
                              const std::string& body, std::string* out) {
  if (body.size() > kMaxAdminBodyBytes) {
    AppendErrorFrame(request_id, ErrorCode::kResourceExhausted,
                     "admin response exceeds the body limit", out);
    return;
  }
  std::string payload;
  payload.reserve(8 + body.size());
  AppendU8(&payload, static_cast<uint8_t>(command));
  AppendU8(&payload, 0);   // reserved
  AppendU16(&payload, 0);  // reserved
  AppendU32(&payload, static_cast<uint32_t>(body.size()));
  payload.append(body);
  AppendFrame(out, FrameType::kAdminResponse, request_id, payload);
}

Status DecodeFrameHeader(const uint8_t* data, size_t len, FrameHeader* out) {
  ByteReader r{data, len};
  if (len < kFrameHeaderSize) return Malformed("truncated frame header");
  const uint32_t magic = r.ReadU32();
  if (magic != kMagic) return Malformed("bad frame magic");
  const uint16_t version = r.ReadU16();
  if (version != kProtocolVersion)
    return Malformed("unsupported protocol version");
  const uint8_t type = r.ReadU8();
  if (!IsValidFrameType(type)) return Malformed("unknown frame type");
  r.ReadU8();  // reserved
  out->type = static_cast<FrameType>(type);
  out->request_id = r.ReadU64();
  out->payload_len = r.ReadU32();
  if (out->payload_len > kMaxPayloadBytes)
    return Malformed("frame payload exceeds limit");
  return Status::OK();
}

Status DecodeQueryPayload(const uint8_t* data, size_t len,
                          QueryRequest* out) {
  ByteReader r{data, len};
  const uint8_t kind = r.ReadU8();
  out->exact_rounded_rect = r.ReadU8() != 0;
  out->category = r.ReadU32();
  out->resolution = r.ReadU32();
  out->region = r.ReadRect();
  out->radius = r.ReadF64();
  out->k = r.ReadU64();
  out->deadline_us = static_cast<int64_t>(r.ReadU64());
  if (!r.Done()) return Malformed("truncated query payload");
  if (!IsValidQueryKind(kind)) return Malformed("unknown query kind");
  out->kind = static_cast<QueryKind>(kind);
  if (out->deadline_us < 0) return Malformed("negative deadline");
  // Cost caps: these fields size allocations on the server, so a hostile
  // value is rejected here, before the request reaches the service.
  if (out->kind == QueryKind::kHeatmap &&
      out->resolution > kMaxHeatmapResolution)
    return Malformed("heatmap resolution exceeds limit");
  if (out->kind == QueryKind::kPrivateKnn && out->k > kMaxKnnK)
    return Malformed("knn k exceeds limit");
  return Status::OK();
}

Status DecodeResponsePayload(const uint8_t* data, size_t len,
                             QueryResponse* out) {
  ByteReader r{data, len};
  const uint8_t kind = r.ReadU8();
  const uint8_t error = r.ReadU8();
  const uint8_t flags = r.ReadU8();
  r.ReadU8();  // reserved
  out->message = r.ReadString();
  out->trace_id = r.ReadU64();
  out->server_latency_us = r.ReadU64();
  out->covered_shards = r.ReadU64();
  out->extended_region = r.ReadRect();
  out->fetch_radius = r.ReadF64();
  out->pruned = r.ReadU64();
  out->expected_count = r.ReadF64();
  out->count_min = r.ReadU64();
  out->count_max = r.ReadU64();
  out->resolution = r.ReadU32();
  out->space = r.ReadRect();
  const uint32_t candidate_count = r.ReadU32();
  // Each candidate is at least 8+8+8+4+4 bytes; a count the remaining
  // payload cannot hold is rejected before the reserve.
  if (!r.ok || candidate_count > (len - r.pos) / 32)
    return Malformed("candidate count exceeds payload");
  out->candidates.clear();
  out->candidates.reserve(candidate_count);
  for (uint32_t i = 0; i < candidate_count; ++i) {
    PublicObject object;
    object.id = r.ReadU64();
    object.location.x = r.ReadF64();
    object.location.y = r.ReadF64();
    object.category = r.ReadU32();
    object.name = r.ReadString();
    if (!r.ok) return Malformed("truncated candidate list");
    out->candidates.push_back(std::move(object));
  }
  const uint32_t heat_count = r.ReadU32();
  if (!r.ok || heat_count > (len - r.pos) / 8)
    return Malformed("heatmap cell count exceeds payload");
  out->heat.clear();
  out->heat.reserve(heat_count);
  for (uint32_t i = 0; i < heat_count; ++i) out->heat.push_back(r.ReadF64());
  if (!r.Done()) return Malformed("truncated response payload");
  if (!IsValidQueryKind(kind)) return Malformed("unknown response kind");
  if (!IsValidErrorCode(error)) return Malformed("unknown error code");
  out->kind = static_cast<QueryKind>(kind);
  out->error = static_cast<ErrorCode>(error);
  out->degraded = (flags & 1) != 0;
  out->degraded_admission = (flags & 2) != 0;
  return Status::OK();
}

Status DecodeErrorPayload(const uint8_t* data, size_t len, ErrorCode* code,
                          std::string* message) {
  ByteReader r{data, len};
  const uint8_t raw = r.ReadU8();
  *message = r.ReadString();
  if (!r.Done()) return Malformed("truncated error payload");
  if (!IsValidErrorCode(raw) || raw == 0)
    return Malformed("invalid error code in error frame");
  *code = static_cast<ErrorCode>(raw);
  return Status::OK();
}

Status DecodeAdminRequestPayload(const uint8_t* data, size_t len,
                                 AdminCommand* command, uint32_t* limit) {
  ByteReader r{data, len};
  const uint8_t raw = r.ReadU8();
  r.ReadU8();   // reserved
  r.ReadU16();  // reserved
  *limit = r.ReadU32();
  if (!r.Done()) return Malformed("truncated admin request payload");
  if (!IsValidAdminCommand(raw)) return Malformed("unknown admin command");
  if (*limit > kMaxAdminLimit) return Malformed("admin limit exceeds cap");
  *command = static_cast<AdminCommand>(raw);
  return Status::OK();
}

Status DecodeAdminResponsePayload(const uint8_t* data, size_t len,
                                  AdminCommand* command, std::string* body) {
  ByteReader r{data, len};
  const uint8_t raw = r.ReadU8();
  r.ReadU8();   // reserved
  r.ReadU16();  // reserved
  const uint32_t n = r.ReadU32();
  if (n > kMaxAdminBodyBytes || !r.Ensure(n))
    return Malformed("admin body exceeds payload");
  body->assign(reinterpret_cast<const char*>(data + r.pos), n);
  r.pos += n;
  if (!r.Done()) return Malformed("truncated admin response payload");
  if (!IsValidAdminCommand(raw)) return Malformed("unknown admin command");
  *command = static_cast<AdminCommand>(raw);
  return Status::OK();
}

}  // namespace cloakdb::net
