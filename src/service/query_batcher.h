// Batching and clustering for the shared-execution engine.
//
// Concurrently submitted private queries are collected for a short window,
// then clustered by cloaked-region overlap on the signature grid: queries
// of the same kind and category whose snapped regions form a connected
// overlapping component share one cluster, and the cluster's cell-aligned
// union cover becomes the probe base every member keys its cache lookup
// with — so a cluster of N overlapping queries executes one widened index
// probe per shard instead of N.
//
// The batcher spends no threads of its own: the first submitter of a
// window becomes the leader, waits out the window (or the width cap),
// executes the whole batch on its own thread, and hands every follower its
// result. With a zero window each submission executes immediately.

#ifndef CLOAKDB_SERVICE_QUERY_BATCHER_H_
#define CLOAKDB_SERVICE_QUERY_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "obs/trace.h"
#include "service/api.h"
#include "service/candidate_cache.h"
#include "util/deadline.h"
#include "util/status.h"

namespace cloakdb {

/// One query of a batch: the unified envelope plus the service-internal
/// carriage (trace adoption, admission limits) the batch leader needs to
/// execute the member on the submitter's behalf. Only the private-over-
/// public kinds are batchable; others fail with kInvalidArgument.
struct BatchQuery {
  QueryRequest request;
  /// Trace of the submitting request; the batch leader executes this
  /// member under it (adoption is recorded as a span link), so a query's
  /// spans land in its own trace even when a different thread ran it.
  obs::TraceContext trace;
  /// Admission deadline of the submitting request. The batch leader caps
  /// its window wait by its own deadline, and the executor checks member
  /// deadlines between shard probes.
  Deadline deadline;
  /// Shard fan-out budget stamped at admission: 0 = unlimited; a degraded
  /// admission sets the configured degrade budget.
  uint32_t shard_budget = 0;
};

/// The result of one batched query is simply the envelope response: the
/// same tagged type the wire serializes, with errors in-band.
using BatchQueryResult = QueryResponse;

/// One shared-probe cluster: member indices into the batch plus the
/// cell-aligned union cover of their snapped cloaked regions.
struct QueryCluster {
  std::vector<size_t> members;
  Rect cover;
};

/// Clusters a batch: same (kind, category) and connected snapped-region
/// overlap. Queries with an empty cloaked region get a singleton cluster
/// (they fail validation downstream either way). Deterministic for a given
/// batch order.
std::vector<QueryCluster> ClusterBatch(const std::vector<BatchQuery>& queries,
                                       const CellSignature& signature);

/// Collects concurrent submissions into batches for a shared executor.
class QueryBatcher {
 public:
  using Executor = std::function<std::vector<BatchQueryResult>(
      const std::vector<BatchQuery>&)>;

  /// `window_us` is how long a batch leader waits for followers;
  /// `max_width` releases the leader early once that many queries are
  /// pending. `executor` runs the batch (on the leader's thread) and must
  /// return one result per query, in order.
  QueryBatcher(uint32_t window_us, size_t max_width, Executor executor);

  /// Submits one query and blocks until its batch has executed. Safe to
  /// call from any number of threads.
  BatchQueryResult Submit(const BatchQuery& query);

 private:
  struct Pending {
    const BatchQuery* query = nullptr;
    BatchQueryResult result;
    bool done = false;
  };

  const uint32_t window_us_;
  const size_t max_width_;
  const Executor executor_;
  std::mutex mu_;
  std::condition_variable leader_cv_;    ///< Wakes the leader at width cap.
  std::condition_variable followers_cv_; ///< Wakes followers on completion.
  std::vector<Pending*> pending_;
};

}  // namespace cloakdb

#endif  // CLOAKDB_SERVICE_QUERY_BATCHER_H_
