#include "service/continuous_registry.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "geom/distance.h"
#include "obs/trace.h"

namespace cloakdb {

namespace {

/// Half the diagonal of `r`: the farthest any point of the region is from
/// the nearest corner's perspective bound used by the NN/kNN fetch radius.
double HalfDiagonal(const Rect& r) {
  return 0.5 * std::sqrt(r.Width() * r.Width() + r.Height() * r.Height());
}

/// The closed ball around `center` lies inside `rect` (a ball is inside a
/// rectangle iff its bounding square is).
bool BallInside(const Point& center, double radius, const Rect& rect) {
  return center.x - radius >= rect.min_x && center.x + radius <= rect.max_x &&
         center.y - radius >= rect.min_y && center.y + radius <= rect.max_y;
}

/// The k-th smallest distance from `from` to the fetched objects (caller
/// guarantees fetched.size() >= k >= 1).
double KthCornerDist(const Point& from, const std::vector<PublicObject>& fetched,
                     size_t k) {
  std::vector<double> dists;
  dists.reserve(fetched.size());
  for (const auto& o : fetched) {
    const double dx = o.location.x - from.x;
    const double dy = o.location.y - from.y;
    dists.push_back(std::sqrt(dx * dx + dy * dy));
  }
  std::nth_element(dists.begin(), dists.begin() + (k - 1), dists.end());
  return dists[k - 1];
}

size_t EffectiveK(const ContinuousSpec& spec) {
  if (spec.kind == QueryKind::kPrivateNn) return 1;
  return spec.k == 0 ? 1 : spec.k;
}

/// Candidates entering plus leaving between two id-sorted answers.
uint64_t SymmetricDelta(const std::vector<PublicObject>& a,
                        const std::vector<PublicObject>& b) {
  size_t i = 0, j = 0;
  uint64_t delta = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].id == b[j].id) {
      ++i;
      ++j;
    } else if (a[i].id < b[j].id) {
      ++delta;
      ++i;
    } else {
      ++delta;
      ++j;
    }
  }
  return delta + (a.size() - i) + (b.size() - j);
}

}  // namespace

bool StandingCoverageHolds(const ContinuousSpec& spec, const Rect& region,
                           const StandingSnapshot& snap) {
  if (spec.kind == QueryKind::kPrivateRange) {
    return snap.coverage.Contains(region.Expanded(spec.radius));
  }
  const size_t k = EffectiveK(spec);
  if (snap.fetched.size() <= k) {
    // Pigeonhole snapshot (the fetch holds the whole category): every
    // object is a candidate for any region the coverage contains.
    return snap.coverage.Contains(region);
  }
  // The cached corner distances are exact only when each corner's k-th
  // candidate ball is fully fetched; the conservative reach built from
  // them must then also stay inside the coverage.
  double max_kth = 0.0;
  for (const Point& corner : region.Corners()) {
    const double d = KthCornerDist(corner, snap.fetched, k);
    if (!BallInside(corner, d, snap.coverage)) return false;
    max_kth = std::max(max_kth, d);
  }
  const double reach = max_kth + HalfDiagonal(region);
  return snap.coverage.Contains(region.Expanded(reach));
}

std::vector<PublicObject> ComputeStandingAnswer(
    const ContinuousSpec& spec, const Rect& region,
    const std::vector<PublicObject>& fetched, double* fetch_radius) {
  if (fetch_radius != nullptr) *fetch_radius = 0.0;
  std::vector<PublicObject> answer;
  if (spec.kind == QueryKind::kPrivateRange) {
    for (const auto& o : fetched) {
      if (MinDist(o.location, region) <= spec.radius) answer.push_back(o);
    }
    return answer;
  }
  const size_t k = EffectiveK(spec);
  if (fetched.size() <= k) return fetched;  // Everything is a candidate.
  double max_kth = 0.0;
  for (const Point& corner : region.Corners()) {
    max_kth = std::max(max_kth, KthCornerDist(corner, fetched, k));
  }
  const double reach = max_kth + HalfDiagonal(region);
  if (fetch_radius != nullptr) *fetch_radius = reach;
  // Conservative fetch, then k-dominance: o survives unless k fetched
  // objects are guaranteed nearer for every possible issuer location.
  // Every dominator of an in-reach object is itself in reach, so pruning
  // over the reach-filtered set equals pruning over the whole category.
  std::vector<const PublicObject*> cand;
  std::vector<double> min_dists;
  std::vector<double> max_dists;
  for (const auto& o : fetched) {
    if (MinDist(o.location, region) <= reach) {
      cand.push_back(&o);
      min_dists.push_back(MinDist(o.location, region));
      max_dists.push_back(MaxDist(o.location, region));
    }
  }
  for (size_t i = 0; i < cand.size(); ++i) {
    size_t dominators = 0;
    for (size_t j = 0; j < cand.size() && dominators < k; ++j) {
      if (max_dists[j] < min_dists[i]) ++dominators;
    }
    if (dominators < k) answer.push_back(*cand[i]);
  }
  return answer;
}

ContinuousShardRegistry::ContinuousShardRegistry(
    const Rect& space, const ContinuousRegistryOptions& options,
    const ContinuousObs& obs)
    : options_(options),
      obs_(obs),
      coverage_grid_(space, options.grid_cells == 0 ? 1 : options.grid_cells),
      window_grid_(space, options.grid_cells == 0 ? 1 : options.grid_cells) {}

void ContinuousShardRegistry::MarkStaleLocked(ContinuousQueryId id) {
  if (auto it = private_.find(id); it != private_.end()) {
    ++it->second.epoch;
    if (!it->second.stale) {
      it->second.stale = true;
      stale_queue_.push_back(id);
      if (obs_.stale_marked != nullptr) obs_.stale_marked->Increment();
    }
    return;
  }
  if (auto it = counts_.find(id); it != counts_.end()) {
    ++it->second.epoch;
    if (!it->second.stale) {
      it->second.stale = true;
      stale_queue_.push_back(id);
      if (obs_.stale_marked != nullptr) obs_.stale_marked->Increment();
    }
  }
}

Status ContinuousShardRegistry::InsertPrivate(ContinuousQueryId id,
                                              const ContinuousSpec& spec,
                                              const Rect& region,
                                              StandingSnapshot snap,
                                              uint64_t expected_version) {
  std::lock_guard<std::mutex> lock(mu_);
  if (private_.count(id) != 0 || counts_.count(id) != 0)
    return Status::AlreadyExists("continuous query id already registered");
  PrivateEntry entry;
  entry.spec = spec;
  entry.region = region;
  entry.snap = std::move(snap);
  const bool needs_repair =
      entry.snap.degraded ||
      public_version_.load(std::memory_order_acquire) != expected_version;
  private_.emplace(id, std::move(entry));
  by_user_[spec.issuer].push_back(id);
  (void)coverage_grid_.Upsert(id, private_[id].snap.coverage);
  total_.fetch_add(1, std::memory_order_relaxed);
  if (obs_.registered != nullptr) obs_.registered->Add(1.0);
  if (needs_repair) MarkStaleLocked(id);
  return Status::OK();
}

Status ContinuousShardRegistry::RefreshRegion(ContinuousQueryId id,
                                              const Rect& region) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = private_.find(id);
  if (it == private_.end())
    return Status::NotFound("unknown continuous query");
  if (it->second.region == region) return Status::OK();
  // A drain slipped a newer region in before the query was registered;
  // adopt it and let the sweep rebuild the answer.
  it->second.region = region;
  MarkStaleLocked(id);
  return Status::OK();
}

Status ContinuousShardRegistry::InsertCount(
    ContinuousQueryId id, const Rect& window,
    std::unordered_map<ObjectId, double> contributions) {
  std::lock_guard<std::mutex> lock(mu_);
  if (private_.count(id) != 0 || counts_.count(id) != 0)
    return Status::AlreadyExists("continuous query id already registered");
  CountEntry entry;
  entry.window = window;
  entry.contributions = std::move(contributions);
  entry.in_grid = window_grid_.Upsert(id, window).ok();
  counts_.emplace(id, std::move(entry));
  total_.fetch_add(1, std::memory_order_relaxed);
  if (obs_.registered != nullptr) obs_.registered->Add(1.0);
  return Status::OK();
}

Status ContinuousShardRegistry::Remove(ContinuousQueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = private_.find(id); it != private_.end()) {
    auto& ids = by_user_[it->second.spec.issuer];
    ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
    if (ids.empty()) by_user_.erase(it->second.spec.issuer);
    (void)coverage_grid_.Remove(id);
    private_.erase(it);
    total_.fetch_sub(1, std::memory_order_relaxed);
    if (obs_.registered != nullptr) obs_.registered->Add(-1.0);
    return Status::OK();
  }
  if (auto it = counts_.find(id); it != counts_.end()) {
    if (it->second.in_grid) (void)window_grid_.Remove(id);
    counts_.erase(it);
    total_.fetch_sub(1, std::memory_order_relaxed);
    if (obs_.registered != nullptr) obs_.registered->Add(-1.0);
    return Status::OK();
  }
  return Status::NotFound("unknown continuous query");
}

bool ContinuousShardRegistry::TouchPrivateLocked(ContinuousQueryId id,
                                                 PrivateEntry* entry,
                                                 const Rect& new_region) {
  if (entry->region == new_region) return false;  // Reused cloak: no-op.
  entry->region = new_region;
  ++entry->epoch;
  if (entry->stale) return true;  // Already queued; sweep sees new region.
  if (options_.force_full_reeval ||
      !StandingCoverageHolds(entry->spec, new_region, entry->snap)) {
    MarkStaleLocked(id);
    return true;
  }
  auto fresh = ComputeStandingAnswer(entry->spec, new_region,
                                     entry->snap.fetched,
                                     &entry->snap.fetch_radius);
  if (obs_.incremental_refilters != nullptr)
    obs_.incremental_refilters->Increment();
  const uint64_t delta = SymmetricDelta(entry->snap.current, fresh);
  if (delta > 0) {
    if (obs_.delta_candidates != nullptr)
      obs_.delta_candidates->Increment(delta);
    ++entry->generation;
    entry->snap.current = std::move(fresh);
  }
  return true;
}

void ContinuousShardRegistry::OnLocationUpdate(
    UserId user, ObjectId pseudonym, const std::optional<Rect>& old_region,
    const Rect& new_region) {
  std::lock_guard<std::mutex> lock(mu_);
  if (obs_.updates_seen != nullptr) obs_.updates_seen->Increment();
  uint64_t affected = 0;
  size_t refiltered = 0;
  size_t staled = 0;
  if (auto it = by_user_.find(user); it != by_user_.end()) {
    for (ContinuousQueryId id : it->second) {
      auto entry = private_.find(id);
      if (entry == private_.end()) continue;
      const bool was_stale = entry->second.stale;
      if (TouchPrivateLocked(id, &entry->second, new_region)) {
        ++affected;
        if (entry->second.stale && !was_stale) ++staled;
        else if (!entry->second.stale) ++refiltered;
      }
    }
  }
  if (!counts_.empty()) {
    // Only windows the move touches can change: look up the hull of the
    // old and new region in the window grid.
    Rect hull = new_region;
    if (old_region.has_value()) {
      hull = Rect{std::min(hull.min_x, old_region->min_x),
                  std::min(hull.min_y, old_region->min_y),
                  std::max(hull.max_x, old_region->max_x),
                  std::max(hull.max_y, old_region->max_y)};
    }
    for (const auto& w : window_grid_.IntersectingRects(hull)) {
      auto entry = counts_.find(w.id);
      if (entry == counts_.end()) continue;
      auto& contrib = entry->second.contributions;
      const double p = CountContributionOf(new_region, entry->second.window);
      auto existing = contrib.find(pseudonym);
      const double old_p =
          existing != contrib.end() ? existing->second : 0.0;
      if (p == old_p) continue;
      if (p > 0.0) {
        if (existing != contrib.end()) existing->second = p;
        else contrib.emplace(pseudonym, p);
      } else if (existing != contrib.end()) {
        contrib.erase(existing);
      }
      ++entry->second.generation;
      ++entry->second.epoch;
      ++affected;
      if (obs_.count_delta_updates != nullptr)
        obs_.count_delta_updates->Increment();
    }
  }
  if (obs_.affected_per_update != nullptr)
    obs_.affected_per_update->Record(static_cast<double>(affected));
  if (affected > 0) {
    obs::TraceSpan span(obs::CurrentTraceContext(), "cq.incremental");
    if (span.active()) {
      span.AddAttr("affected", static_cast<double>(affected));
      span.AddAttr("refiltered", static_cast<double>(refiltered));
      span.AddAttr("staled", static_cast<double>(staled));
    }
  }
}

void ContinuousShardRegistry::OnLocationRemoved(ObjectId pseudonym,
                                                const Rect& old_region) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counts_.empty()) return;
  for (const auto& w : window_grid_.IntersectingRects(old_region)) {
    auto entry = counts_.find(w.id);
    if (entry == counts_.end()) continue;
    if (entry->second.contributions.erase(pseudonym) > 0) {
      ++entry->second.generation;
      ++entry->second.epoch;
      if (obs_.count_delta_updates != nullptr)
        obs_.count_delta_updates->Increment();
    }
  }
}

void ContinuousShardRegistry::OnPublicChanged(const Point& location,
                                              Category category) {
  std::lock_guard<std::mutex> lock(mu_);
  public_version_.fetch_add(1, std::memory_order_acq_rel);
  if (private_.empty()) return;
  for (const auto& c : coverage_grid_.IntersectingRects(
           Rect::FromPoint(location))) {
    auto it = private_.find(c.id);
    if (it != private_.end() && it->second.spec.category == category)
      MarkStaleLocked(c.id);
  }
}

void ContinuousShardRegistry::OnCategoryReloaded(Category category) {
  std::lock_guard<std::mutex> lock(mu_);
  public_version_.fetch_add(1, std::memory_order_acq_rel);
  for (auto& [id, entry] : private_) {
    if (entry.spec.category == category) MarkStaleLocked(id);
  }
}

Result<StandingAnswer> ContinuousShardRegistry::Answer(
    ContinuousQueryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = private_.find(id);
  if (it == private_.end())
    return Status::NotFound("unknown continuous query");
  StandingAnswer answer;
  answer.kind = it->second.spec.kind;
  answer.candidates = it->second.snap.current;
  answer.generation = it->second.generation;
  answer.stale = it->second.stale;
  answer.degraded = it->second.snap.degraded;
  answer.covered_shards = it->second.snap.covered_shards;
  return answer;
}

Result<StandingCountPart> ContinuousShardRegistry::CountContributions(
    ContinuousQueryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counts_.find(id);
  if (it == counts_.end())
    return Status::NotFound("unknown continuous query");
  StandingCountPart part;
  part.contributions.reserve(it->second.contributions.size());
  for (const auto& [pseudonym, p] : it->second.contributions)
    part.contributions.push_back({pseudonym, p});
  std::sort(part.contributions.begin(), part.contributions.end(),
            [](const CountContribution& a, const CountContribution& b) {
              return a.pseudonym < b.pseudonym;
            });
  part.generation = it->second.generation;
  part.stale = it->second.stale;
  return part;
}

Result<ContinuousQueryInfo> ContinuousShardRegistry::Info(
    ContinuousQueryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  ContinuousQueryInfo info;
  if (auto it = private_.find(id); it != private_.end()) {
    info.spec = it->second.spec;
    info.region = it->second.region;
    info.coverage = it->second.snap.coverage;
    info.stale = it->second.stale;
    info.degraded = it->second.snap.degraded;
    info.generation = it->second.generation;
    info.answer_size = it->second.snap.current.size();
    return info;
  }
  if (auto it = counts_.find(id); it != counts_.end()) {
    info.spec.kind = QueryKind::kPublicCount;
    info.spec.window = it->second.window;
    info.stale = it->second.stale;
    info.generation = it->second.generation;
    info.answer_size = it->second.contributions.size();
    return info;
  }
  return Status::NotFound("unknown continuous query");
}

std::vector<std::pair<ContinuousQueryId, ContinuousSpec>>
ContinuousShardRegistry::RegisteredSpecs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<ContinuousQueryId, ContinuousSpec>> specs;
  specs.reserve(private_.size() + counts_.size());
  for (const auto& [id, entry] : private_) specs.emplace_back(id, entry.spec);
  for (const auto& [id, entry] : counts_) {
    ContinuousSpec spec;
    spec.kind = QueryKind::kPublicCount;
    spec.window = entry.window;
    specs.emplace_back(id, spec);
  }
  std::sort(specs.begin(), specs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return specs;
}

std::vector<StaleEntry> ContinuousShardRegistry::TakeStale(size_t max) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StaleEntry> taken;
  size_t kept = 0;
  for (size_t i = 0; i < stale_queue_.size(); ++i) {
    const ContinuousQueryId id = stale_queue_[i];
    if (taken.size() >= max) {
      stale_queue_[kept++] = id;
      continue;
    }
    if (auto it = private_.find(id); it != private_.end() &&
        it->second.stale) {
      it->second.stale = false;
      taken.push_back({id, it->second.spec, it->second.region,
                       it->second.epoch});
    } else if (auto ct = counts_.find(id); ct != counts_.end() &&
               ct->second.stale) {
      ct->second.stale = false;
      StaleEntry entry;
      entry.id = id;
      entry.spec.kind = QueryKind::kPublicCount;
      entry.spec.window = ct->second.window;
      entry.epoch = ct->second.epoch;
      taken.push_back(std::move(entry));
    }
  }
  stale_queue_.resize(kept);
  repairs_inflight_.fetch_add(taken.size(), std::memory_order_acq_rel);
  return taken;
}

void ContinuousShardRegistry::Restore(ContinuousQueryId id, uint64_t epoch,
                                      StandingSnapshot snap) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = private_.find(id);
  if (it == private_.end()) return;
  if (it->second.epoch != epoch || it->second.stale) return;  // Moved on.
  if (SymmetricDelta(it->second.snap.current, snap.current) > 0)
    ++it->second.generation;
  it->second.snap = std::move(snap);
  (void)coverage_grid_.Upsert(id, it->second.snap.coverage);
}

void ContinuousShardRegistry::RestoreCount(
    ContinuousQueryId id, uint64_t epoch,
    std::unordered_map<ObjectId, double> contributions) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counts_.find(id);
  if (it == counts_.end()) return;
  if (it->second.epoch != epoch || it->second.stale) return;
  it->second.contributions = std::move(contributions);
  ++it->second.generation;
}

void ContinuousShardRegistry::RepairFailed(ContinuousQueryId id,
                                           uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = private_.find(id);
  if (it == private_.end()) return;
  if (it->second.epoch != epoch || it->second.stale) return;
  it->second.snap.current.clear();
  it->second.snap.fetched.clear();
  it->second.snap.degraded = true;
  ++it->second.generation;
}

}  // namespace cloakdb
