#include "service/api.h"

#include <utility>

namespace cloakdb {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kPrivateRange:
      return "private_range";
    case QueryKind::kPrivateNn:
      return "private_nn";
    case QueryKind::kPrivateKnn:
      return "private_knn";
    case QueryKind::kPublicCount:
      return "public_count";
    case QueryKind::kHeatmap:
      return "heatmap";
  }
  return "unknown";
}

bool IsValidQueryKind(uint8_t raw) {
  return raw <= static_cast<uint8_t>(QueryKind::kHeatmap);
}

QueryRequest QueryRequest::Range(const Rect& cloaked, double radius,
                                 Category category,
                                 const PrivateRangeOptions& opts) {
  QueryRequest request;
  request.kind = QueryKind::kPrivateRange;
  request.region = cloaked;
  request.radius = radius;
  request.category = category;
  request.exact_rounded_rect = opts.exact_rounded_rect;
  return request;
}

QueryRequest QueryRequest::Nn(const Rect& cloaked, Category category) {
  QueryRequest request;
  request.kind = QueryKind::kPrivateNn;
  request.region = cloaked;
  request.category = category;
  return request;
}

QueryRequest QueryRequest::Knn(const Rect& cloaked, uint64_t k,
                               Category category) {
  QueryRequest request;
  request.kind = QueryKind::kPrivateKnn;
  request.region = cloaked;
  request.k = k;
  request.category = category;
  return request;
}

QueryRequest QueryRequest::Count(const Rect& window) {
  QueryRequest request;
  request.kind = QueryKind::kPublicCount;
  request.region = window;
  return request;
}

QueryRequest QueryRequest::HeatmapAt(uint32_t resolution) {
  QueryRequest request;
  request.kind = QueryKind::kHeatmap;
  request.resolution = resolution;
  return request;
}

PrivateRangeOptions QueryRequest::range_options() const {
  PrivateRangeOptions opts;
  opts.exact_rounded_rect = exact_rounded_rect;
  return opts;
}

QueryResponse MakeErrorResponse(QueryKind kind, const Status& status) {
  QueryResponse response;
  response.kind = kind;
  response.error = status.code();
  response.message = status.message();
  return response;
}

QueryResponse ResponseFromRange(PrivateRangeResult result) {
  QueryResponse response;
  response.kind = QueryKind::kPrivateRange;
  response.candidates = std::move(result.candidates);
  response.extended_region = result.extended_region;
  response.pruned = result.rounded_rect_pruned;
  response.degraded = result.degraded;
  response.covered_shards = result.covered_shards;
  return response;
}

QueryResponse ResponseFromNn(PrivateNnResult result) {
  QueryResponse response;
  response.kind = QueryKind::kPrivateNn;
  response.candidates = std::move(result.candidates);
  response.fetch_radius = result.fetch_radius;
  response.pruned = result.dominance_pruned;
  response.degraded = result.degraded;
  response.covered_shards = result.covered_shards;
  return response;
}

QueryResponse ResponseFromKnn(PrivateKnnResult result) {
  QueryResponse response;
  response.kind = QueryKind::kPrivateKnn;
  response.candidates = std::move(result.candidates);
  response.fetch_radius = result.fetch_radius;
  response.pruned = result.dominance_pruned;
  response.degraded = result.degraded;
  response.covered_shards = result.covered_shards;
  return response;
}

QueryResponse ResponseFromCount(const PublicCountResult& result) {
  QueryResponse response;
  response.kind = QueryKind::kPublicCount;
  response.expected_count = result.answer.expected;
  response.count_min = static_cast<uint64_t>(result.answer.min_count);
  response.count_max = static_cast<uint64_t>(result.answer.max_count);
  response.degraded = result.degraded;
  response.covered_shards = result.covered_shards;
  return response;
}

QueryResponse ResponseFromHeatmap(HeatmapResult result) {
  QueryResponse response;
  response.kind = QueryKind::kHeatmap;
  response.resolution = result.resolution;
  response.space = result.space;
  response.heat = std::move(result.expected);
  response.degraded = result.degraded;
  response.covered_shards = result.covered_shards;
  return response;
}

PrivateRangeResult RangeFromResponse(QueryResponse response) {
  PrivateRangeResult result;
  result.candidates = std::move(response.candidates);
  result.extended_region = response.extended_region;
  result.rounded_rect_pruned = static_cast<size_t>(response.pruned);
  result.degraded = response.degraded;
  result.covered_shards = response.covered_shards;
  return result;
}

PrivateNnResult NnFromResponse(QueryResponse response) {
  PrivateNnResult result;
  result.candidates = std::move(response.candidates);
  result.fetch_radius = response.fetch_radius;
  result.dominance_pruned = static_cast<size_t>(response.pruned);
  result.degraded = response.degraded;
  result.covered_shards = response.covered_shards;
  return result;
}

PrivateKnnResult KnnFromResponse(QueryResponse response) {
  PrivateKnnResult result;
  result.candidates = std::move(response.candidates);
  result.fetch_radius = response.fetch_radius;
  result.dominance_pruned = static_cast<size_t>(response.pruned);
  result.degraded = response.degraded;
  result.covered_shards = response.covered_shards;
  return result;
}

HeatmapResult HeatmapFromResponse(QueryResponse response) {
  HeatmapResult result;
  result.resolution = response.resolution;
  result.space = response.space;
  result.expected = std::move(response.heat);
  result.degraded = response.degraded;
  result.covered_shards = response.covered_shards;
  return result;
}

}  // namespace cloakdb
