#include "service/fault_injector.h"

namespace cloakdb {

namespace {

// splitmix64 finalizer: a cheap, well-mixed hash from (seed ^ index) to a
// 64-bit value. The same mix the service uses for user->shard routing.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

double FaultInjector::DrawAt(uint64_t n) const {
  const uint64_t bits = SplitMix64(options_.seed ^ (n * 0x2545f4914f6cdd1dULL));
  // Top 53 bits -> uniform double in [0, 1).
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

ProbeFault FaultInjector::NextProbeFault() {
  if (!options_.enabled) return ProbeFault::kNone;
  const double u = DrawAt(draws_.fetch_add(1, std::memory_order_relaxed));
  if (u < options_.probe_failure_probability) {
    probe_failures_.fetch_add(1, std::memory_order_relaxed);
    return ProbeFault::kFail;
  }
  if (u < options_.probe_failure_probability +
              options_.probe_delay_probability) {
    probe_delays_.fetch_add(1, std::memory_order_relaxed);
    return ProbeFault::kDelay;
  }
  return ProbeFault::kNone;
}

bool FaultInjector::NextQueueStall() {
  if (!options_.enabled) return false;
  const double u = DrawAt(draws_.fetch_add(1, std::memory_order_relaxed));
  if (u < options_.queue_stall_probability) {
    queue_stalls_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

}  // namespace cloakdb
