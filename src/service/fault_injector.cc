#include "service/fault_injector.h"

namespace cloakdb {

namespace {

// splitmix64 finalizer: a cheap, well-mixed hash from (seed ^ index) to a
// 64-bit value. The same mix the service uses for user->shard routing.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

double FaultInjector::DrawAt(uint64_t n) const {
  const uint64_t bits = SplitMix64(options_.seed ^ (n * 0x2545f4914f6cdd1dULL));
  // Top 53 bits -> uniform double in [0, 1).
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

ProbeFault FaultInjector::NextProbeFault() {
  if (!options_.enabled) return ProbeFault::kNone;
  const double u = DrawAt(draws_.fetch_add(1, std::memory_order_relaxed));
  if (u < options_.probe_failure_probability) {
    const uint64_t fired =
        probe_failures_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (recorder_ != nullptr)
      recorder_->Record(obs::FlightEventKind::kFaultProbeFail, fired);
    return ProbeFault::kFail;
  }
  if (u < options_.probe_failure_probability +
              options_.probe_delay_probability) {
    const uint64_t fired =
        probe_delays_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (recorder_ != nullptr)
      recorder_->Record(obs::FlightEventKind::kFaultProbeDelay, fired);
    return ProbeFault::kDelay;
  }
  return ProbeFault::kNone;
}

void FaultInjector::ArmCrash(storage::CrashPoint point,
                             uint64_t after_n_more_hits) {
  if (after_n_more_hits == 0) after_n_more_hits = 1;
  crash_fired_.store(false, std::memory_order_release);
  crash_countdown_.store(after_n_more_hits, std::memory_order_release);
  // Point last: once visible, hits start consuming the countdown.
  crash_point_.store(static_cast<uint8_t>(point), std::memory_order_release);
}

bool FaultInjector::ShouldCrash(storage::CrashPoint point) {
  if (point == storage::CrashPoint::kNone) return false;
  const uint8_t armed = crash_point_.load(std::memory_order_acquire);
  if (armed != static_cast<uint8_t>(point)) return false;
  // Count down atomically; exactly one caller observes the 1 -> 0 edge.
  uint64_t expected = crash_countdown_.load(std::memory_order_acquire);
  while (expected > 0) {
    if (crash_countdown_.compare_exchange_weak(expected, expected - 1,
                                               std::memory_order_acq_rel)) {
      if (expected == 1) {
        crash_fired_.store(true, std::memory_order_release);
        if (recorder_ != nullptr)
          recorder_->Record(obs::FlightEventKind::kCrashPoint,
                            static_cast<uint64_t>(point));
        return true;
      }
      return false;
    }
  }
  return false;
}

bool FaultInjector::NextQueueStall() {
  if (!options_.enabled) return false;
  const double u = DrawAt(draws_.fetch_add(1, std::memory_order_relaxed));
  if (u < options_.queue_stall_probability) {
    const uint64_t fired =
        queue_stalls_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (recorder_ != nullptr)
      recorder_->Record(obs::FlightEventKind::kFaultQueueStall, fired);
    return true;
  }
  return false;
}

}  // namespace cloakdb
