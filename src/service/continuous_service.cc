// Continuous-query members of CloakDbService: registration through the
// admission + trace path, the standing full evaluation (fan-out over the
// stripes a coverage rectangle overlaps), answer/introspection reads, and
// the stale-repair sweep that idle workers and Flush() drive.
//
// The split from cloak_db_service.cc is purely structural — same class,
// same locking rules (shard lock before registry mutex, sweep evaluates
// with no locks held).

#include <algorithm>
#include <utility>

#include "obs/scoped_timer.h"
#include "service/cloak_db_service.h"
#include "util/poisson_binomial.h"

namespace cloakdb {

namespace {

/// One traced request (mirror of the root helper in cloak_db_service.cc,
/// internal to each translation unit): owns the root span and completes
/// the trace also on early error returns. Inert without a tracer.
class RootTrace {
 public:
  RootTrace(obs::Tracer* tracer, const char* name) {
    if (tracer == nullptr) return;
    begin_ = tracer->BeginTrace(name);
    span_ = obs::TraceSpan(begin_, name);
  }

  RootTrace(const RootTrace&) = delete;
  RootTrace& operator=(const RootTrace&) = delete;

  ~RootTrace() {
    if (begin_.tracer == nullptr) return;
    begin_.tracer->FinishTrace(begin_, span_.End(),
                               /*audit_violation=*/false);
  }

  obs::TraceContext context() const { return span_.context(); }
  void AddAttr(const char* key, double value) { span_.AddAttr(key, value); }

 private:
  obs::TraceContext begin_;
  obs::TraceSpan span_;
};

/// The k a standing NN/kNN spec fetches for (NN is k-NN with k = 1).
size_t StandingK(const ContinuousSpec& spec) {
  if (spec.kind == QueryKind::kPrivateNn) return 1;
  return spec.k == 0 ? 1 : spec.k;
}

}  // namespace

Result<ContinuousQueryId> CloakDbService::RegisterContinuousRange(
    UserId user, double radius, Category category) {
  if (!(radius > 0.0))
    return Status::InvalidArgument("query radius must be positive");
  ContinuousSpec spec;
  spec.kind = QueryKind::kPrivateRange;
  spec.issuer = user;
  spec.radius = radius;
  spec.category = category;
  return RegisterContinuousImpl(spec);
}

Result<ContinuousQueryId> CloakDbService::RegisterContinuousNn(
    UserId user, Category category) {
  ContinuousSpec spec;
  spec.kind = QueryKind::kPrivateNn;
  spec.issuer = user;
  spec.k = 1;
  spec.category = category;
  return RegisterContinuousImpl(spec);
}

Result<ContinuousQueryId> CloakDbService::RegisterContinuousKnn(
    UserId user, size_t k, Category category) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  ContinuousSpec spec;
  spec.kind = QueryKind::kPrivateKnn;
  spec.issuer = user;
  spec.k = k;
  spec.category = category;
  return RegisterContinuousImpl(spec);
}

Result<ContinuousQueryId> CloakDbService::RegisterContinuousImpl(
    const ContinuousSpec& spec) {
  RootTrace trace(tracer_.get(), "cq.register");
  obs::ScopedTraceContext scope(trace.context());
  obs::ScopedTimer timer(cq_obs_.register_latency_us);
  Admission admission = AdmitQuery();
  if (!admission.status.ok()) return admission.status;
  if (admission.degraded_admission) trace.AddAttr("degraded_admission", 1.0);

  Shard& home = *shards_[ShardOfUser(spec.issuer)];
  auto region = home.CurrentRegionOfUser(spec.issuer);
  if (!region.ok()) return region.status();
  ContinuousShardRegistry& registry = home.continuous();

  // Capture the public version before evaluating: a public-data change
  // that lands mid-evaluation makes the snapshot unstamped-stale.
  const uint64_t version = registry.public_version();
  auto snap = EvaluateStanding(spec, region.value(), admission.deadline,
                               admission.shard_budget);
  if (!snap.ok()) return snap.status();

  const ContinuousQueryId id =
      next_cq_id_.fetch_add(1, std::memory_order_relaxed);
  trace.AddAttr("cq_id", static_cast<double>(id));
  CLOAKDB_RETURN_IF_ERROR(registry.InsertPrivate(
      id, spec, region.value(), std::move(snap).value(), version));
  // A drain may have applied a newer region between evaluation and
  // insertion (the registry was empty, so it was not notified): adopt it.
  auto region2 = home.CurrentRegionOfUser(spec.issuer);
  if (region2.ok()) (void)registry.RefreshRegion(id, region2.value());
  // Logged after the registration sticks: a crash in between loses an
  // unacknowledged registration, which the client retries anyway.
  (void)home.LogCqRegister(id, spec);

  {
    std::lock_guard<std::mutex> lock(cq_mu_);
    cq_routes_[id] = CqRoute{spec.kind, ShardOfUser(spec.issuer)};
  }
  if (cq_obs_.registrations != nullptr) cq_obs_.registrations->Increment();
  return id;
}

Result<ContinuousQueryId> CloakDbService::RegisterContinuousCount(
    const Rect& window) {
  if (window.IsEmpty())
    return Status::InvalidArgument("count window must be non-empty");
  if (!window.Intersects(options_.space))
    return Status::InvalidArgument(
        "count window must intersect the service space");
  RootTrace trace(tracer_.get(), "cq.register");
  obs::ScopedTraceContext scope(trace.context());
  obs::ScopedTimer timer(cq_obs_.register_latency_us);
  Admission admission = AdmitQuery();
  if (!admission.status.ok()) return admission.status;

  const ContinuousQueryId id =
      next_cq_id_.fetch_add(1, std::memory_order_relaxed);
  trace.AddAttr("cq_id", static_cast<double>(id));
  // Users are hash-scattered, so the window is maintained on every shard
  // and the parts merge exactly at read time.
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    Status status = shards_[s]->RegisterStandingCount(id, window);
    if (!status.ok()) {
      for (uint32_t r = 0; r < s; ++r)
        (void)shards_[r]->continuous().Remove(id);
      return status;
    }
  }
  // Logged on every shard so recovery of any one shard's WAL resurrects
  // the window there; the service-level union dedupes across shards.
  ContinuousSpec spec;
  spec.kind = QueryKind::kPublicCount;
  spec.window = window;
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    (void)shards_[s]->LogCqRegister(id, spec);
  }
  {
    std::lock_guard<std::mutex> lock(cq_mu_);
    cq_routes_[id] = CqRoute{QueryKind::kPublicCount, 0};
  }
  if (cq_obs_.registrations != nullptr) cq_obs_.registrations->Increment();
  return id;
}

Result<StandingSnapshot> CloakDbService::EvaluateStanding(
    const ContinuousSpec& spec, const Rect& region, Deadline deadline,
    uint32_t shard_budget) const {
  StandingSnapshot snap;
  double reach = 0.0;
  bool whole_space = false;
  if (spec.kind == QueryKind::kPrivateRange) {
    reach = spec.radius;
  } else {
    // Conservative k-NN fetch reach: any one shard that can cover k
    // category objects within r proves the global k-th neighbour lies
    // within r of the region, so the tightest per-shard reach bounds the
    // fetch. No shard reporting a positive reach means every shard holds
    // at most k objects — fetch the whole category (pigeonhole answer).
    const size_t k = StandingK(spec);
    bool category_seen = false;
    double best = 0.0;
    for (const auto& shard : shards_) {
      auto r = shard->KnnReach(region, k, spec.category);
      if (!r.ok()) continue;  // Category absent on this shard.
      category_seen = true;
      if (r.value() > 0.0 && (best == 0.0 || r.value() < best))
        best = r.value();
    }
    if (!category_seen) return Status::NotFound("unknown category");
    if (best == 0.0) {
      whole_space = true;
    } else {
      reach = best;
    }
  }
  snap.fetch_radius = reach;
  snap.coverage = whole_space
                      ? options_.space
                      : region.Expanded(reach + options_.continuous.slack_margin);

  // Fan out over the stripes the coverage overlaps; stripes beyond it hold
  // nothing the standing answer can ever need (their x-distance exceeds
  // the fetch reach), so they count as covered.
  uint64_t covered = 0;
  bool degraded = false;
  bool any_category = false;
  uint32_t probes = 0;
  auto [first, last] = StripeRangeOf(snap.coverage);
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    const uint64_t bit = s < 64 ? (1ULL << s) : 0;
    if (s < first || s > last) {
      covered |= bit;
      continue;
    }
    if (deadline.Expired() ||
        (shard_budget != 0 && probes >= shard_budget)) {
      degraded = true;
      continue;
    }
    ++probes;
    auto part = shards_[s]->ProbeRegion(snap.coverage, spec.category);
    if (!part.ok()) {
      if (part.status().code() == ErrorCode::kNotFound) {
        // Category absent on this stripe: nothing to fetch, still covered.
        covered |= bit;
      } else {
        degraded = true;
      }
      continue;
    }
    any_category = true;
    covered |= bit;
    snap.fetched.insert(snap.fetched.end(), part.value().begin(),
                        part.value().end());
  }
  if (!any_category && !degraded) {
    // Every probed stripe lacks the category; it may still exist beyond
    // the coverage (range queries with a short radius).
    bool exists_elsewhere = false;
    for (const auto& shard : shards_) {
      if (shard->HasCategory(spec.category)) {
        exists_elsewhere = true;
        break;
      }
    }
    if (!exists_elsewhere) return Status::NotFound("unknown category");
  }
  std::sort(snap.fetched.begin(), snap.fetched.end(),
            [](const PublicObject& a, const PublicObject& b) {
              return a.id < b.id;
            });
  snap.degraded = degraded;
  snap.covered_shards = covered;
  snap.current = ComputeStandingAnswer(spec, region, snap.fetched, nullptr);
  return snap;
}

Result<StandingAnswer> CloakDbService::AnswerContinuous(
    ContinuousQueryId id) const {
  CqRoute route;
  {
    std::lock_guard<std::mutex> lock(cq_mu_);
    auto it = cq_routes_.find(id);
    if (it == cq_routes_.end())
      return Status::NotFound("unknown continuous query id");
    route = it->second;
  }
  if (route.kind != QueryKind::kPublicCount)
    return shards_[route.shard]->continuous().Answer(id);

  StandingAnswer answer;
  answer.kind = QueryKind::kPublicCount;
  for (const auto& shard : shards_) {
    auto part = shard->continuous().CountContributions(id);
    if (!part.ok()) return part.status();
    answer.contributions.insert(answer.contributions.end(),
                                part.value().contributions.begin(),
                                part.value().contributions.end());
    answer.generation += part.value().generation;
    answer.stale = answer.stale || part.value().stale;
  }
  // Per-shard parts are pseudonym-sorted; the merge re-sorts so the answer
  // is bit-identical to a one-shot count over the same applied updates.
  std::sort(answer.contributions.begin(), answer.contributions.end(),
            [](const CountContribution& a, const CountContribution& b) {
              return a.pseudonym < b.pseudonym;
            });
  std::vector<double> ps;
  ps.reserve(answer.contributions.size());
  for (const auto& c : answer.contributions) ps.push_back(c.probability);
  auto count = MakeCountAnswer(ps);
  if (!count.ok()) return count.status();
  answer.count = std::move(count).value();
  return answer;
}

Result<ContinuousQueryInfo> CloakDbService::ContinuousInfo(
    ContinuousQueryId id) const {
  CqRoute route;
  {
    std::lock_guard<std::mutex> lock(cq_mu_);
    auto it = cq_routes_.find(id);
    if (it == cq_routes_.end())
      return Status::NotFound("unknown continuous query id");
    route = it->second;
  }
  if (route.kind != QueryKind::kPublicCount)
    return shards_[route.shard]->continuous().Info(id);
  ContinuousQueryInfo merged;
  for (const auto& shard : shards_) {
    auto info = shard->continuous().Info(id);
    if (!info.ok()) return info.status();
    merged.spec = info.value().spec;
    merged.stale = merged.stale || info.value().stale;
    merged.generation += info.value().generation;
    merged.answer_size += info.value().answer_size;
  }
  return merged;
}

Status CloakDbService::UnregisterContinuous(ContinuousQueryId id) {
  CqRoute route;
  {
    std::lock_guard<std::mutex> lock(cq_mu_);
    auto it = cq_routes_.find(id);
    if (it == cq_routes_.end())
      return Status::NotFound("unknown continuous query id");
    route = it->second;
    cq_routes_.erase(it);
  }
  if (route.kind == QueryKind::kPublicCount) {
    for (const auto& shard : shards_) {
      (void)shard->continuous().Remove(id);
      (void)shard->LogCqUnregister(id);
    }
  } else {
    (void)shards_[route.shard]->continuous().Remove(id);
    (void)shards_[route.shard]->LogCqUnregister(id);
  }
  if (cq_obs_.unregistrations != nullptr)
    cq_obs_.unregistrations->Increment();
  return Status::OK();
}

size_t CloakDbService::NumContinuousQueries() const {
  std::lock_guard<std::mutex> lock(cq_mu_);
  return cq_routes_.size();
}

size_t CloakDbService::SweepShardContinuous(uint32_t shard, size_t max) {
  ContinuousShardRegistry& registry = shards_[shard]->continuous();
  std::vector<StaleEntry> stale = registry.TakeStale(max);
  for (const StaleEntry& entry : stale) {
    RootTrace trace(tracer_.get(), "cq.full_reeval");
    obs::ScopedTraceContext scope(trace.context());
    trace.AddAttr("cq_id", static_cast<double>(entry.id));
    if (entry.spec.kind == QueryKind::kPublicCount) {
      shards_[shard]->RescanStandingCount(entry.id, entry.spec.window,
                                          entry.epoch);
    } else {
      // No locks held: the evaluation fans out like a registration; a
      // mutation that lands meanwhile bumps the epoch and the restore is
      // discarded (the entry is already queued again).
      auto snap =
          EvaluateStanding(entry.spec, entry.region, Deadline(), 0);
      if (snap.ok() && !snap.value().degraded) {
        registry.Restore(entry.id, entry.epoch, std::move(snap).value());
      } else {
        registry.RepairFailed(entry.id, entry.epoch);
      }
    }
    if (cq_obs_.full_reevals != nullptr) cq_obs_.full_reevals->Increment();
    registry.RepairSettled();
  }
  return stale.size();
}

size_t CloakDbService::SweepContinuousStale() {
  size_t swept = 0;
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    swept += SweepShardContinuous(s, 64);
  }
  return swept;
}

}  // namespace cloakdb
