#include "service/overload.h"

#include <algorithm>

namespace cloakdb {

AdmissionController::AdmissionController(const OverloadOptions& options,
                                         size_t num_shards,
                                         size_t queue_capacity_per_shard)
    : options_(options),
      aggregate_capacity_(num_shards * queue_capacity_per_shard),
      per_shard_capacity_(queue_capacity_per_shard),
      last_refill_(std::chrono::steady_clock::now()) {
  if (options_.degrade_shard_budget == 0) options_.degrade_shard_budget = 1;
  burst_ = options_.burst > 0.0
               ? options_.burst
               : std::max(1.0, options_.max_queries_per_s / 10.0);
  tokens_ = burst_;
}

bool AdmissionController::TryTakeToken() {
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  const double elapsed_s =
      std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  tokens_ = std::min(burst_, tokens_ + elapsed_s * options_.max_queries_per_s);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

AdmissionDecision AdmissionController::AdmitQuery(
    size_t aggregate_queue_depth) {
  bool overloaded = false;
  if (options_.shed_queue_fraction > 0.0 && aggregate_capacity_ > 0) {
    const double threshold = options_.shed_queue_fraction *
                             static_cast<double>(aggregate_capacity_);
    if (static_cast<double>(aggregate_queue_depth) >= threshold) {
      overloaded = true;
    }
  }
  if (!overloaded && options_.max_queries_per_s > 0.0 && !TryTakeToken()) {
    overloaded = true;
  }
  if (!overloaded) return AdmissionDecision::kAdmit;
  return options_.policy == OverloadPolicy::kDegrade
             ? AdmissionDecision::kDegrade
             : AdmissionDecision::kReject;
}

bool AdmissionController::ShouldShedUpdate(size_t shard_queue_depth) const {
  if (options_.shed_queue_fraction <= 0.0 || per_shard_capacity_ == 0) {
    return false;
  }
  const double threshold =
      options_.shed_queue_fraction * static_cast<double>(per_shard_capacity_);
  return static_cast<double>(shard_queue_depth) >= threshold;
}

}  // namespace cloakdb
