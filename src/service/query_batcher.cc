#include "service/query_batcher.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

namespace cloakdb {

std::vector<QueryCluster> ClusterBatch(const std::vector<BatchQuery>& queries,
                                       const CellSignature& signature) {
  std::vector<QueryCluster> out;
  // Group by (kind, category): only same-kind, same-category probes can be
  // shared (the reach semantics and the probed index differ otherwise).
  std::map<std::pair<uint8_t, Category>, std::vector<size_t>> groups;
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryRequest& request = queries[i].request;
    if (request.region.IsEmpty()) {
      // Fails validation downstream; keep it out of every real cluster.
      out.push_back({{i}, Rect()});
      continue;
    }
    groups[{static_cast<uint8_t>(request.kind), request.category}]
        .push_back(i);
  }
  for (const auto& [key, members] : groups) {
    (void)key;
    // Greedy connected components over snapped-region overlap: merging two
    // clusters takes the bounding box of their covers, which can only grow
    // the probe — wider, never wrong.
    std::vector<QueryCluster> clusters;
    for (size_t i : members) {
      Rect snapped = signature.SnapToCells(queries[i].request.region);
      QueryCluster merged{{i}, snapped};
      std::vector<QueryCluster> keep;
      keep.reserve(clusters.size());
      for (auto& cluster : clusters) {
        if (cluster.cover.Intersects(merged.cover)) {
          merged.cover = merged.cover.Union(cluster.cover);
          merged.members.insert(merged.members.end(),
                                cluster.members.begin(),
                                cluster.members.end());
        } else {
          keep.push_back(std::move(cluster));
        }
      }
      keep.push_back(std::move(merged));
      clusters = std::move(keep);
    }
    for (auto& cluster : clusters) out.push_back(std::move(cluster));
  }
  return out;
}

QueryBatcher::QueryBatcher(uint32_t window_us, size_t max_width,
                           Executor executor)
    : window_us_(window_us),
      max_width_(max_width == 0 ? 1 : max_width),
      executor_(std::move(executor)) {}

BatchQueryResult QueryBatcher::Submit(const BatchQuery& query) {
  Pending pending;
  pending.query = &query;
  std::unique_lock<std::mutex> lock(mu_);
  const bool leader = pending_.empty();
  pending_.push_back(&pending);
  if (!leader) {
    if (pending_.size() >= max_width_) leader_cv_.notify_one();
    followers_cv_.wait(lock, [&] { return pending.done; });
    return std::move(pending.result);
  }
  if (window_us_ > 0 && pending_.size() < max_width_) {
    // A leader with a deadline never waits past what it can still afford:
    // batching trades latency for sharing, and an admission deadline caps
    // that trade at one window, never more.
    int64_t wait_us = static_cast<int64_t>(window_us_);
    if (!query.deadline.is_infinite()) {
      wait_us = std::min(wait_us, query.deadline.RemainingUs());
    }
    if (wait_us > 0) {
      leader_cv_.wait_for(lock, std::chrono::microseconds(wait_us),
                          [&] { return pending_.size() >= max_width_; });
    }
  }
  std::vector<Pending*> batch;
  batch.swap(pending_);  // The next submitter becomes the next leader.
  lock.unlock();

  std::vector<BatchQuery> batch_queries;
  batch_queries.reserve(batch.size());
  for (const Pending* p : batch) batch_queries.push_back(*p->query);
  std::vector<BatchQueryResult> results = executor_(batch_queries);

  lock.lock();
  for (size_t i = 0; i < batch.size(); ++i) {
    if (i < results.size()) {
      batch[i]->result = std::move(results[i]);
    } else {
      batch[i]->result = MakeErrorResponse(
          batch[i]->query->request.kind,
          Status::FailedPrecondition("batch executor returned short batch"));
    }
    batch[i]->done = true;
  }
  followers_cv_.notify_all();
  return std::move(pending.result);
}

}  // namespace cloakdb
