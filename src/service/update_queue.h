// Bounded MPMC queue of pending location updates.
//
// The ingress side of the sharded service: producers (client threads)
// enqueue exact location reports, the shard worker pool drains them in
// batches that feed Anonymizer::UpdateLocationsBatch. The queue is bounded
// so a slow shard pushes backpressure to producers instead of growing
// without limit: Push blocks until space frees up, TryPush fails fast with
// ResourceExhausted for callers that prefer load shedding.

#ifndef CLOAKDB_SERVICE_UPDATE_QUEUE_H_
#define CLOAKDB_SERVICE_UPDATE_QUEUE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "core/anonymizer.h"
#include "geom/point.h"
#include "obs/metrics.h"
#include "util/status.h"
#include "util/time_of_day.h"

namespace cloakdb {

/// One exact location report waiting to be anonymized.
struct PendingUpdate {
  UserId user = 0;
  Point location;
  TimeOfDay time;
  /// Stamped at enqueue; origin of the ingest queue-wait measurement
  /// (enqueue -> batch apply).
  std::chrono::steady_clock::time_point enqueued_at{};
};

/// Optional observability hooks of one queue (shared handles into the
/// service's MetricsRegistry; null pointers disable the measurement).
struct UpdateQueueObs {
  /// High-water mark of the queue depth since startup.
  obs::Gauge* depth_hwm = nullptr;
  /// Time blocking producers spent waiting for space (microseconds);
  /// recorded only when Push actually blocked.
  obs::ShardedHistogram* blocked_push_us = nullptr;
};

/// Bounded multi-producer multi-consumer queue (mutex + condvars — the
/// simple, provably-correct shape; per-shard fan-out keeps contention low).
class BoundedUpdateQueue {
 public:
  explicit BoundedUpdateQueue(size_t capacity);

  BoundedUpdateQueue(const BoundedUpdateQueue&) = delete;
  BoundedUpdateQueue& operator=(const BoundedUpdateQueue&) = delete;

  /// Installs the observability hooks. Call before producers start; the
  /// handles must outlive the queue.
  void SetObs(const UpdateQueueObs& obs) { obs_ = obs; }

  /// Enqueues, blocking while the queue is full (backpressure). Fails with
  /// FailedPrecondition once the queue is closed.
  Status Push(const PendingUpdate& update);

  /// Non-blocking enqueue: ResourceExhausted when full, FailedPrecondition
  /// when closed.
  Status TryPush(const PendingUpdate& update);

  /// Pops up to `max` updates into `*out` (appended), blocking until at
  /// least one update is available or the queue is closed. Returns the
  /// number popped (0 only when closed and drained).
  size_t PopBatch(size_t max, std::vector<PendingUpdate>* out);

  /// Non-blocking PopBatch: returns immediately with whatever is queued.
  size_t TryPopBatch(size_t max, std::vector<PendingUpdate>* out);

  /// Closes the queue: pending items can still be popped, further pushes
  /// fail, blocked poppers wake up.
  void Close();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  bool closed() const;

  /// Lock-free snapshot of the depth, maintained alongside the locked
  /// deque. Admission control reads this on every query/update, so it must
  /// not contend with producers and drainers; it can be momentarily stale,
  /// which is fine for an overload signal.
  size_t ApproxDepth() const { return depth_.load(std::memory_order_relaxed); }

 private:
  size_t PopLocked(size_t max, std::vector<PendingUpdate>* out);

  const size_t capacity_;
  UpdateQueueObs obs_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<PendingUpdate> items_;
  std::atomic<size_t> depth_{0};
  bool closed_ = false;
};

}  // namespace cloakdb

#endif  // CLOAKDB_SERVICE_UPDATE_QUEUE_H_
