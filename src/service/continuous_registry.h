// Per-shard standing-query registry: the service-layer home of continuous
// queries (paper Section 5.3, "processing the continuous queries at the
// location-based server should be done incrementally").
//
// Each shard owns one registry. Standing private range/NN/kNN queries live
// on the issuer's home shard (hash-routed like the user); standing public
// counts are registered on every shard, each holding the contributions of
// its own users, merged at read time. The registry is driven by the shard's
// update drain: every applied cloaked update consults a coverage grid so
// only the standing queries the update can actually affect re-filter — a
// delta notification, not a re-execution. A query whose cached coverage no
// longer bounds the answer is marked stale and repaired asynchronously by a
// service-level full re-evaluation sweep.
//
// Locking: the registry has its own mutex, always acquired *after* the
// owning shard's lock (drain notifications arrive under the shard's
// exclusive lock; reads take only the registry mutex). The stale sweep
// evaluates with no locks held and restores under an epoch check, so a
// repair never clobbers state that moved while it was being computed.

#ifndef CLOAKDB_SERVICE_CONTINUOUS_REGISTRY_H_
#define CLOAKDB_SERVICE_CONTINUOUS_REGISTRY_H_

#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/anonymizer.h"
#include "index/rect_grid.h"
#include "obs/metrics.h"
#include "server/continuous_queries.h"
#include "server/public_queries.h"
#include "service/api.h"

namespace cloakdb {

/// Tuning knobs of the service-level continuous-query subsystem.
struct ContinuousRegistryOptions {
  /// Extra fetch margin added to every standing fetch so small region
  /// movements stay inside the cached coverage.
  double slack_margin = 5.0;
  /// Coverage/window grid resolution per side (affected-query lookup).
  uint32_t grid_cells = 64;
  /// Testing twin: disable the incremental gates so every issuer update
  /// marks the query stale and is repaired by a full re-evaluation. The
  /// oracle suite compares a normal service against this twin bit-for-bit.
  bool force_full_reeval = false;
};

/// Metric handles of the continuous subsystem, resolved once by the service
/// and shared by every shard registry. All may be null (measurement off).
struct ContinuousObs {
  obs::Counter* registrations = nullptr;
  obs::Counter* unregistrations = nullptr;
  obs::Counter* updates_seen = nullptr;       ///< Drain updates consulted.
  obs::Counter* incremental_refilters = nullptr;
  obs::Counter* full_reevals = nullptr;       ///< Sweep repairs.
  obs::Counter* stale_marked = nullptr;
  obs::Counter* delta_candidates = nullptr;   ///< Candidates entered/left.
  obs::Counter* count_delta_updates = nullptr;
  obs::ShardedHistogram* affected_per_update = nullptr;
  obs::ShardedHistogram* register_latency_us = nullptr;
  obs::Gauge* registered = nullptr;
};

/// What a standing query asks for. `kind` selects the shape; unused fields
/// stay at their defaults (NN is kPrivateNn with k implied 1).
struct ContinuousSpec {
  QueryKind kind = QueryKind::kPrivateRange;
  UserId issuer = 0;      ///< Private kinds: the registered user.
  double radius = 0.0;    ///< kPrivateRange.
  size_t k = 0;           ///< kPrivateKnn.
  Category category = 0;  ///< Private kinds.
  Rect window;            ///< kPublicCount.
};

/// The cached evaluation state of one standing private query: everything
/// fetched inside `coverage` plus the current answer filtered from it.
struct StandingSnapshot {
  Rect coverage;                        ///< Extent of `fetched`.
  std::vector<PublicObject> fetched;    ///< Category objects in coverage,
                                        ///< sorted by id.
  std::vector<PublicObject> current;    ///< Current answer, sorted by id.
  double fetch_radius = 0.0;            ///< NN/kNN conservative reach used.
  bool degraded = false;                ///< Fan-out was cut short.
  uint64_t covered_shards = 0;
};

/// The current answer of a standing query.
struct StandingAnswer {
  QueryKind kind = QueryKind::kPrivateRange;
  /// Private kinds: candidate list with the one-shot guarantees, sorted by
  /// object id.
  std::vector<PublicObject> candidates;
  /// kPublicCount: the paper's three formats plus per-user contributions
  /// sorted by pseudonym (only p > 0 entries are maintained).
  CountAnswer count;
  std::vector<CountContribution> contributions;
  /// Bumped whenever the answer changes — clients poll this to detect
  /// deltas without diffing candidate lists.
  uint64_t generation = 0;
  /// True while a full re-evaluation is pending (the answer may lag).
  bool stale = false;
  bool degraded = false;
  uint64_t covered_shards = 0;
};

/// Introspection record of one standing query.
struct ContinuousQueryInfo {
  ContinuousSpec spec;
  Rect region;    ///< Issuer's current cloaked region (private kinds).
  Rect coverage;  ///< Cached fetch coverage (private kinds).
  bool stale = false;
  bool degraded = false;
  uint64_t generation = 0;
  size_t answer_size = 0;
};

/// One stale entry popped by the sweep, carrying everything the full
/// re-evaluation needs plus the epoch that guards the restore.
struct StaleEntry {
  ContinuousQueryId id = 0;
  ContinuousSpec spec;
  Rect region;
  uint64_t epoch = 0;
};

/// Per-shard part of a standing count answer.
struct StandingCountPart {
  std::vector<CountContribution> contributions;  ///< Sorted by pseudonym.
  uint64_t generation = 0;
  bool stale = false;
};

// --- Shared evaluation kernels --------------------------------------------
// The incremental re-filter and the full re-evaluation both answer from a
// fetched superset with these functions, which is what makes the two paths
// bit-identical whenever the coverage gates below hold.

/// True when `snap`'s cached fetch set provably contains everything the
/// standing answer for `region` needs, so re-filtering from it equals a
/// full re-evaluation. Range: coverage must contain the radius-extended
/// region. NN/kNN: each corner's k-th candidate ball must lie inside the
/// coverage (making the cached corner distances exact) and the coverage
/// must contain the region extended by the conservative fetch radius.
bool StandingCoverageHolds(const ContinuousSpec& spec, const Rect& region,
                           const StandingSnapshot& snap);

/// Computes the standing answer for `region` from a fetched superset
/// (sorted by id). For NN/kNN also reports the conservative fetch radius
/// used (0 when the pigeonhole case returned everything).
std::vector<PublicObject> ComputeStandingAnswer(
    const ContinuousSpec& spec, const Rect& region,
    const std::vector<PublicObject>& fetched, double* fetch_radius);

/// Registry of the standing queries homed on one shard.
class ContinuousShardRegistry {
 public:
  ContinuousShardRegistry(const Rect& space,
                          const ContinuousRegistryOptions& options,
                          const ContinuousObs& obs);

  /// Lock-free interest check for the drain hot path: total standing
  /// queries homed here.
  size_t size() const { return total_.load(std::memory_order_relaxed); }

  /// Monotonic counter bumped by every public-data change notification.
  /// The service captures it before evaluating a registration and passes
  /// it to InsertPrivate, which inserts stale on a mismatch.
  uint64_t public_version() const {
    return public_version_.load(std::memory_order_acquire);
  }

  // --- Registration (service-driven) -------------------------------------

  /// Installs an evaluated standing private query. Inserted stale (queued
  /// for repair) when the snapshot is degraded or the registry's public
  /// version moved past `expected_version` while it was being evaluated.
  Status InsertPrivate(ContinuousQueryId id, const ContinuousSpec& spec,
                       const Rect& region, StandingSnapshot snap,
                       uint64_t expected_version);

  /// Re-reads the issuer's region after insertion: if a drain applied a
  /// newer region between evaluation and insertion (too early to be
  /// notified), the entry adopts it and is marked stale.
  Status RefreshRegion(ContinuousQueryId id, const Rect& region);

  /// Installs a standing count window with its scanned contributions
  /// (only p > 0 entries). Caller must hold the shard's shared lock across
  /// scan + insert so no drain interleaves.
  Status InsertCount(ContinuousQueryId id, const Rect& window,
                     std::unordered_map<ObjectId, double> contributions);

  /// Drops any standing query homed here.
  Status Remove(ContinuousQueryId id);

  // --- Drain notifications (caller holds the shard's exclusive lock) -----

  /// One applied cloaked update: re-filters or stales the issuer's private
  /// queries and delta-updates every count window the move touches.
  void OnLocationUpdate(UserId user, ObjectId pseudonym,
                        const std::optional<Rect>& old_region,
                        const Rect& new_region);

  /// A pseudonym's record was dropped (rotation retire / unregister).
  void OnLocationRemoved(ObjectId pseudonym, const Rect& old_region);

  /// One public object appeared at `location`: stales the standing private
  /// queries of that category whose coverage the object falls into.
  void OnPublicChanged(const Point& location, Category category);

  /// A category was replaced wholesale: stales all its standing queries.
  void OnCategoryReloaded(Category category);

  // --- Reads --------------------------------------------------------------

  /// The current answer of a standing private query homed here.
  Result<StandingAnswer> Answer(ContinuousQueryId id) const;

  /// This shard's part of a standing count answer.
  Result<StandingCountPart> CountContributions(ContinuousQueryId id) const;

  Result<ContinuousQueryInfo> Info(ContinuousQueryId id) const;

  /// Deterministic enumeration of every standing query homed here (private
  /// entries plus this shard's count windows as kPublicCount specs),
  /// sorted by id — the checkpoint writer's view.
  std::vector<std::pair<ContinuousQueryId, ContinuousSpec>> RegisteredSpecs()
      const;

  // --- Stale repair (service sweep) ---------------------------------------

  /// Pops up to `max` stale entries for repair (their stale flags clear;
  /// a concurrent mutation re-queues with a newer epoch).
  std::vector<StaleEntry> TakeStale(size_t max);

  /// Installs a repaired snapshot; discarded when the entry mutated since
  /// TakeStale (epoch mismatch) — it is already queued again.
  void Restore(ContinuousQueryId id, uint64_t epoch, StandingSnapshot snap);

  /// Installs rescanned count contributions under the same epoch rule.
  void RestoreCount(ContinuousQueryId id, uint64_t epoch,
                    std::unordered_map<ObjectId, double> contributions);

  /// Records that a repair could not be evaluated (e.g. the category
  /// vanished): the answer empties and ships degraded until a later
  /// notification stales the query again.
  void RepairFailed(ContinuousQueryId id, uint64_t epoch);

  /// Marks one popped entry's repair as settled (restored, discarded, or
  /// failed). The sweep calls this once per TakeStale entry.
  void RepairSettled() {
    repairs_inflight_.fetch_sub(1, std::memory_order_acq_rel);
  }

  /// Popped stale entries whose repair has not yet settled. TakeStale
  /// clears the stale flags, so "stale queue empty" alone does not mean
  /// every answer is current — a flush barrier must also wait for this to
  /// reach zero.
  size_t repairs_in_flight() const {
    return repairs_inflight_.load(std::memory_order_acquire);
  }

 private:
  struct PrivateEntry {
    ContinuousSpec spec;
    Rect region;
    StandingSnapshot snap;
    uint64_t generation = 1;
    uint64_t epoch = 0;  ///< Bumped on every mutation; guards restores.
    bool stale = false;
  };
  struct CountEntry {
    Rect window;
    std::unordered_map<ObjectId, double> contributions;  ///< p > 0 only.
    uint64_t generation = 1;
    uint64_t epoch = 0;
    bool stale = false;
    bool in_grid = false;  ///< Window intersects the space (else inert).
  };

  /// Marks a private or count entry stale and queues it (locked).
  void MarkStaleLocked(ContinuousQueryId id);
  /// Applies one update to a private entry: incremental re-filter when the
  /// coverage gate holds, stale otherwise. Returns true when affected.
  bool TouchPrivateLocked(ContinuousQueryId id, PrivateEntry* entry,
                          const Rect& new_region);

  ContinuousRegistryOptions options_;
  ContinuousObs obs_;
  std::atomic<size_t> total_{0};
  std::atomic<uint64_t> public_version_{0};
  std::atomic<size_t> repairs_inflight_{0};
  mutable std::mutex mu_;
  std::unordered_map<ContinuousQueryId, PrivateEntry> private_;
  std::unordered_map<UserId, std::vector<ContinuousQueryId>> by_user_;
  /// Coverage rectangles of the private entries (affected-query lookup for
  /// public-data changes).
  RectGrid coverage_grid_;
  std::unordered_map<ContinuousQueryId, CountEntry> counts_;
  /// Count windows (affected-query lookup for location updates).
  RectGrid window_grid_;
  /// Stale queue; entries carry a flag so re-marks do not duplicate.
  std::vector<ContinuousQueryId> stale_queue_;
};

}  // namespace cloakdb

#endif  // CLOAKDB_SERVICE_CONTINUOUS_REGISTRY_H_
