// The admin plane of a CloakDbService: one JSON document per
// net::AdminCommand, shared by the wire server (kAdminRequest frames), the
// simulator's --monitor-json file snapshots, and cloakd's periodic dumps —
// so every consumer of "what is this service doing right now" renders the
// same shape.
//
// Everything here reads concurrently with live traffic: metrics snapshots
// merge lock-free stripes, the flight recorder is a seqlock ring, and the
// tracer's accounting is atomic — an admin poll can never stall a query.

#ifndef CLOAKDB_SERVICE_ADMIN_H_
#define CLOAKDB_SERVICE_ADMIN_H_

#include <cstdint>
#include <string>

#include "net/protocol.h"
#include "service/cloak_db_service.h"
#include "util/status.h"

namespace cloakdb {

/// The status snapshot (net::AdminCommand::kStatus and cloaksim's
/// --monitor-json): identity (version, durability, data dir), uptime,
/// ingest and queue state, per-stage latency digests, cache disposition,
/// robustness counters, flight-recorder summary, tracer accounting, and
/// the most recent audit violations. `tick`/`ticks` label simulator
/// progress; a server with no tick loop passes (0, 0) — the fields are
/// still emitted so the document shape is stable.
std::string BuildStatusJson(const CloakDbService& db, size_t tick,
                            size_t ticks);

/// Serves one admin command, returning the JSON body of the matching
/// kAdminResponse. `limit` bounds list-shaped results (slow queries,
/// flight-recorder events, window intervals); 0 means the command's
/// default. Never blocks the query path; kInvalidArgument for a command
/// value outside the enum.
Result<std::string> HandleAdminCommand(const CloakDbService& db,
                                       net::AdminCommand command,
                                       uint32_t limit);

}  // namespace cloakdb

#endif  // CLOAKDB_SERVICE_ADMIN_H_
