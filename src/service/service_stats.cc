#include "service/service_stats.h"

#include <cstdio>

namespace cloakdb {

void MergeAnonymizerStats(AnonymizerStats* into, const AnonymizerStats& from) {
  into->updates += from.updates;
  into->cloaks_computed += from.cloaks_computed;
  into->incremental_reuses += from.incremental_reuses;
  into->shared_reuses += from.shared_reuses;
  into->unsatisfied += from.unsatisfied;
}

void MergeIngestStats(ShardIngestStats* into, const ShardIngestStats& from) {
  into->updates_enqueued += from.updates_enqueued;
  into->updates_applied += from.updates_applied;
  into->updates_rejected += from.updates_rejected;
  into->batches_drained += from.batches_drained;
  into->pseudonym_rotations += from.pseudonym_rotations;
  into->batch_size.Merge(from.batch_size);
}

ServiceStats AggregateShardStats(const std::vector<ShardStats>& shards,
                                 uint32_t worker_threads) {
  ServiceStats total;
  total.num_shards = static_cast<uint32_t>(shards.size());
  total.worker_threads = worker_threads;
  for (const ShardStats& s : shards) {
    MergeAnonymizerStats(&total.anonymizer, s.anonymizer);
    MergeServerStats(&total.server, s.server);
    MergeIngestStats(&total.ingest, s.ingest);
    total.queue_depth += s.queue_depth;
    total.num_users += s.num_users;
  }
  return total;
}

std::string ServiceStats::ToString() const {
  char buf[512];
  std::string out;
  if (!version.empty()) {
    std::snprintf(buf, sizeof(buf), "version=%s durability=%s%s%s\n",
                  version.c_str(),
                  durability_mode.empty() ? "off" : durability_mode.c_str(),
                  data_dir.empty() ? "" : " data_dir=",
                  data_dir.c_str());
    out += buf;
  }
  std::snprintf(
      buf, sizeof(buf),
      "shards=%u workers=%u users=%zu queued=%zu uptime=%.1fs\n"
      "ingest: enqueued=%llu applied=%llu rejected=%llu batches=%llu "
      "avg_batch=%.1f rotations=%llu\n"
      "anonymizer: updates=%llu computed=%llu incremental=%llu shared=%llu "
      "unsatisfied=%llu\n"
      "server: cloaked=%llu range=%llu nn=%llu knn=%llu count=%llu "
      "heatmap=%llu bytes=%llu\n",
      num_shards, worker_threads, num_users, queue_depth,
      static_cast<double>(uptime_us) / 1e6,
      static_cast<unsigned long long>(ingest.updates_enqueued),
      static_cast<unsigned long long>(ingest.updates_applied),
      static_cast<unsigned long long>(ingest.updates_rejected),
      static_cast<unsigned long long>(ingest.batches_drained),
      ingest.batch_size.mean(),
      static_cast<unsigned long long>(ingest.pseudonym_rotations),
      static_cast<unsigned long long>(anonymizer.updates),
      static_cast<unsigned long long>(anonymizer.cloaks_computed),
      static_cast<unsigned long long>(anonymizer.incremental_reuses),
      static_cast<unsigned long long>(anonymizer.shared_reuses),
      static_cast<unsigned long long>(anonymizer.unsatisfied),
      static_cast<unsigned long long>(server.cloaked_updates),
      static_cast<unsigned long long>(server.private_range_queries),
      static_cast<unsigned long long>(server.private_nn_queries),
      static_cast<unsigned long long>(server.private_knn_queries),
      static_cast<unsigned long long>(server.public_count_queries),
      static_cast<unsigned long long>(server.heatmap_queries),
      static_cast<unsigned long long>(server.bytes_to_clients));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "robustness: shed=%llu admitted_degraded=%llu degraded=%llu "
      "deadline_hits=%llu updates_shed=%llu faults=%llu/%llu/%llu\n",
      static_cast<unsigned long long>(robustness.queries_shed),
      static_cast<unsigned long long>(robustness.queries_admitted_degraded),
      static_cast<unsigned long long>(robustness.queries_degraded),
      static_cast<unsigned long long>(robustness.deadline_hits),
      static_cast<unsigned long long>(robustness.updates_shed),
      static_cast<unsigned long long>(robustness.injected_probe_failures),
      static_cast<unsigned long long>(robustness.injected_probe_delays),
      static_cast<unsigned long long>(robustness.injected_queue_stalls));
  out += buf;
  for (const obs::SlowQueryRecord& q : slow_queries) {
    std::snprintf(buf, sizeof(buf),
                  "slow: %s %.0fus area=%.4g shards=%u candidates=%llu "
                  "trace=%llu status=%s\n",
                  q.kind.c_str(), q.latency_us, q.region_area,
                  q.shards_touched,
                  static_cast<unsigned long long>(q.candidates),
                  static_cast<unsigned long long>(q.trace_id),
                  to_string(q.error));
    out += buf;
  }
  return out;
}

}  // namespace cloakdb
