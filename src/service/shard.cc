#include "service/shard.h"

#include <chrono>
#include <map>
#include <thread>
#include <utility>

#include "core/attack.h"
#include "obs/scoped_timer.h"

namespace cloakdb {

Result<std::unique_ptr<Shard>> Shard::Create(const ShardConfig& config) {
  auto anonymizer = Anonymizer::Create(config.anonymizer);
  if (!anonymizer.ok()) return anonymizer.status();
  return std::unique_ptr<Shard>(
      new Shard(config, std::move(anonymizer).value()));
}

Shard::Shard(const ShardConfig& config,
             std::unique_ptr<Anonymizer> anonymizer)
    : config_(config),
      anonymizer_(std::move(anonymizer)),
      server_(config.anonymizer.space, config.rect_grid_cells,
              config.wire_cost, config.public_index),
      signature_(config.anonymizer.space, config.signature_cells),
      continuous_(config.anonymizer.space, config.continuous, config.cq_obs),
      cache_(config.cache_capacity),
      queue_(config.queue_capacity) {
  queue_.SetObs(config.obs.queue);
  server_.SetObs(config.server_obs);
  cache_.SetObs(config.cache_obs);
}

Status Shard::LogDurable(storage::WalRecord record, bool sync_now) {
  if (config_.durability == nullptr) return Status::OK();
  return config_.durability->LogAndCommit(std::move(record), sync_now);
}

Status Shard::RegisterUser(UserId user, PrivacyProfile profile) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (config_.durability != nullptr) {
    storage::WalRecord rec;
    rec.type = storage::WalRecordType::kRegisterUser;
    rec.user = user;
    rec.profile = profile.entries();
    CLOAKDB_RETURN_IF_ERROR(LogDurable(std::move(rec)));
  }
  return anonymizer_->RegisterUser(user, std::move(profile));
}

Status Shard::UpdateProfile(UserId user, PrivacyProfile profile) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (config_.durability != nullptr) {
    storage::WalRecord rec;
    rec.type = storage::WalRecordType::kUpdateProfile;
    rec.user = user;
    rec.profile = profile.entries();
    CLOAKDB_RETURN_IF_ERROR(LogDurable(std::move(rec)));
  }
  return anonymizer_->UpdateProfile(user, std::move(profile));
}

Status Shard::UnregisterUser(UserId user) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (config_.durability != nullptr) {
    storage::WalRecord rec;
    rec.type = storage::WalRecordType::kUnregisterUser;
    rec.user = user;
    CLOAKDB_RETURN_IF_ERROR(LogDurable(std::move(rec)));
  }
  auto pseudonym = anonymizer_->PseudonymOf(user);
  CLOAKDB_RETURN_IF_ERROR(anonymizer_->UnregisterUser(user));
  // The server record is best-effort: the user may never have reported.
  if (pseudonym.ok()) DropServerRecord(pseudonym.value());
  return Status::OK();
}

Result<ObjectId> Shard::PseudonymOf(UserId user) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return anonymizer_->PseudonymOf(user);
}

Status Shard::Enqueue(const PendingUpdate& update, bool block) {
  PendingUpdate stamped = update;
  stamped.enqueued_at = std::chrono::steady_clock::now();
  // Count before pushing so Idle() can never miss an in-queue update; undo
  // on rejection.
  pending_.fetch_add(1, std::memory_order_acq_rel);
  Status status =
      block ? queue_.Push(stamped) : queue_.TryPush(stamped);
  if (!status.ok()) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    return status;
  }
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

size_t Shard::DrainOnce(size_t max_batch) {
  std::vector<PendingUpdate> batch;
  batch.reserve(max_batch);
  queue_.TryPopBatch(max_batch, &batch);
  if (batch.empty()) return 0;
  if (config_.fault_injector != nullptr &&
      config_.fault_injector->NextQueueStall()) {
    // Injected slow consumer: the batch is already off the queue, so the
    // stall shows up as apply latency and queue growth, exactly like a
    // real drain hiccup would.
    if (config_.obs.fault_stalls != nullptr)
      config_.obs.fault_stalls->Increment();
    std::this_thread::sleep_for(std::chrono::microseconds(
        config_.fault_injector->options().queue_stall_us));
  }
  // Group commit: drained batches append their WAL record without the
  // per-record fsync. The group's fsync lands at the next quiet point —
  // the worker's idle transition, the Flush() barrier, or the engine's
  // deferred-record cap — so a storm of small batches pays one fsync, not
  // one per batch. Nothing is acknowledged before that sync, so the kFsync
  // guarantee is unchanged; a crash in the window loses only updates no
  // Flush() ever vouched for.
  ApplyBatch(batch, /*sync_wal=*/false);
  return batch.size();
}

obs::AuditEvent Shard::EmitCloakAudit(obs::TraceSpan* span, UserId user,
                                      const CloakedUpdate& update,
                                      uint64_t trace_id) const {
  obs::AuditEvent event;
  event.requested_k = update.cloaked.requirement.k;
  event.achieved_k = update.cloaked.achieved_k;
  event.area = update.cloaked.region.Area();
  event.min_area = update.cloaked.requirement.min_area;
  event.max_area = update.cloaked.requirement.max_area;
  event.k_satisfied = update.cloaked.k_satisfied;
  event.min_area_satisfied = update.cloaked.min_area_satisfied;
  event.max_area_satisfied = update.cloaked.max_area_satisfied;
  event.cloaking_kind =
      static_cast<uint8_t>(config_.anonymizer.algorithm);
  // The snapshot holds the exact reported location the region was built
  // around — the ground truth the paper's Section 5 adversaries aim for.
  auto true_location = anonymizer_->snapshot().Locate(user);
  if (true_location.ok()) {
    event.center_risk =
        CenterAttackCompromises(update.cloaked.region, true_location.value());
    event.boundary_risk = BoundaryAttackCompromises(update.cloaked.region,
                                                    true_location.value());
  }
  span->SetAudit(event);
  if (event.Violation() && config_.tracer != nullptr)
    config_.tracer->NoteAuditViolation(trace_id, update.pseudonym, event);
  return event;
}

void Shard::ApplyBatch(const std::vector<PendingUpdate>& batch,
                       bool sync_wal) {
  // The ingest path has no client-side trace to join, so each drained
  // batch opens its own: a root over the whole apply, a child over the
  // batched cloak computation, and one audit-carrying span per update.
  obs::TraceContext trace_ctx;
  obs::TraceSpan root;
  if (config_.tracer != nullptr) {
    trace_ctx = config_.tracer->BeginTrace("ingest.batch");
    root = obs::TraceSpan(trace_ctx, "ingest.batch");
    root.AddAttr("shard", static_cast<double>(config_.index));
    root.AddAttr("batch_size", static_cast<double>(batch.size()));
  }
  // Standing-query notifications fired by ForwardCloaked emit their spans
  // into this batch's trace.
  obs::ScopedTraceContext trace_scope(trace_ctx);
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (config_.durability != nullptr) {
    // WAL the raw pre-shedding batch: replay re-sheds identically, and the
    // record preserves the exact composition the drain applied (composition
    // determines the equal-time runs below).
    storage::WalRecord rec;
    rec.type = storage::WalRecordType::kUpdateBatch;
    rec.updates.reserve(batch.size());
    for (const PendingUpdate& u : batch)
      rec.updates.push_back({u.user, u.location, u.time.seconds()});
    (void)LogDurable(std::move(rec), sync_wal);
  }
  const bool any_violation = ApplyBatchLocked(batch, &root, trace_ctx);
  pending_.fetch_sub(batch.size(), std::memory_order_acq_rel);
  if (config_.tracer != nullptr)
    config_.tracer->FinishTrace(trace_ctx, root.End(), any_violation);
}

bool Shard::ApplyBatchLocked(const std::vector<PendingUpdate>& batch,
                             obs::TraceSpan* root,
                             const obs::TraceContext& trace_ctx) {
  bool any_violation = false;
  // One clock read covers the whole batch: every entry waited until this
  // apply, and per-entry now() would put ~30ns of clock traffic on the
  // exclusive-lock path.
  if (config_.obs.queue_wait_us != nullptr) {
    auto now = std::chrono::steady_clock::now();
    for (const PendingUpdate& u : batch) {
      if (u.enqueued_at.time_since_epoch().count() != 0)
        config_.obs.queue_wait_us->Record(obs::MicrosBetween(u.enqueued_at,
                                                             now));
    }
  }
  // UpdateLocationsBatch cloaks everyone against one timestamp, so the
  // batch is split into runs of equal report time (streams usually arrive
  // tick-aligned, making this one run).
  size_t i = 0;
  while (i < batch.size()) {
    size_t j = i;
    std::vector<std::pair<UserId, Point>> updates;
    while (j < batch.size() && batch[j].time == batch[i].time) {
      // Shed poisoned entries (unknown user, point outside the space) up
      // front: UpdateLocationsBatch is all-or-nothing, and one bad entry
      // used to force the whole run through the serial fallback below.
      if (!anonymizer_->IsRegistered(batch[j].user) ||
          !config_.anonymizer.space.Contains(batch[j].location)) {
        ++ingest_.updates_rejected;
        if (config_.obs.rejected != nullptr) config_.obs.rejected->Increment();
        ++j;
        continue;
      }
      updates.push_back({batch[j].user, batch[j].location});
      ++j;
    }
    if (updates.empty()) {
      i = j;
      continue;
    }
    obs::ScopedTimer cloak_timer(config_.obs.cloak_us);
    obs::TraceSpan cloak_span(root->context(), "cloak.batch");
    cloak_span.AddAttr("updates", static_cast<double>(updates.size()));
    auto results = anonymizer_->UpdateLocationsBatch(updates, batch[i].time);
    cloak_span.End();
    cloak_timer.Stop();
    ++ingest_.batches_drained;
    ingest_.batch_size.Add(static_cast<double>(updates.size()));
    if (config_.obs.batch_size != nullptr)
      config_.obs.batch_size->Record(static_cast<double>(updates.size()));
    // Every applied cloak gets an audit-carrying span (duration ~0: the
    // computation was timed by cloak.batch; this span is the per-user
    // privacy record).
    auto audit_one = [&](UserId user, const CloakedUpdate& u) {
      if (config_.tracer == nullptr) return;
      obs::TraceSpan span(root->context(), "cloak");
      span.AddAttr("achieved_k", static_cast<double>(u.cloaked.achieved_k));
      span.AddAttr("area", u.cloaked.region.Area());
      if (EmitCloakAudit(&span, user, u, trace_ctx.trace_id).Violation())
        any_violation = true;
    };
    if (results.ok()) {
      for (size_t u = 0; u < results.value().size(); ++u) {
        ForwardCloaked(results.value()[u], updates[u].first);
        audit_one(updates[u].first, results.value()[u]);
      }
      ingest_.updates_applied += updates.size();
    } else {
      // The batch refused atomically for a reason pre-validation could not
      // see; retry one by one so the failure sheds only itself.
      for (const auto& [user, location] : updates) {
        auto result =
            anonymizer_->UpdateLocation(user, location, batch[i].time);
        if (result.ok()) {
          ForwardCloaked(result.value(), user);
          audit_one(user, result.value());
          ++ingest_.updates_applied;
        } else {
          ++ingest_.updates_rejected;
          if (config_.obs.rejected != nullptr)
            config_.obs.rejected->Increment();
        }
      }
    }
    i = j;
  }
  return any_violation;
}

void Shard::ForwardCloaked(const CloakedUpdate& update, UserId user) {
  if (update.retired_pseudonym != 0) {
    DropServerRecord(update.retired_pseudonym);
    ++ingest_.pseudonym_rotations;
    if (config_.obs.rotations != nullptr) config_.obs.rotations->Increment();
  }
  // The old region drives region-precise cache invalidation and the
  // standing-count delta; read it once when either consumer is live.
  const bool standing = continuous_.size() > 0;
  std::optional<Rect> old_region;
  if (cache_.enabled() || standing) {
    auto old = server_.store().GetPrivateRegion(update.pseudonym);
    if (old.ok()) old_region = old.value();
  }
  if (cache_.enabled()) {
    // Region-precise invalidation: only count answers whose window touches
    // where the user was or now is can have changed.
    if (old_region.has_value())
      cache_.InvalidatePrivateRegion(old_region.value());
    cache_.InvalidatePrivateRegion(update.cloaked.region);
  }
  (void)server_.ApplyCloakedUpdate(update.pseudonym, update.cloaked.region);
  if (standing)
    continuous_.OnLocationUpdate(user, update.pseudonym, old_region,
                                 update.cloaked.region);
}

void Shard::DropServerRecord(ObjectId pseudonym) {
  const bool standing = continuous_.size() > 0;
  std::optional<Rect> old_region;
  if (cache_.enabled() || standing) {
    auto old = server_.store().GetPrivateRegion(pseudonym);
    if (old.ok()) old_region = old.value();
  }
  if (cache_.enabled() && old_region.has_value())
    cache_.InvalidatePrivateRegion(old_region.value());
  (void)server_.DropPseudonym(pseudonym);
  if (standing && old_region.has_value())
    continuous_.OnLocationRemoved(pseudonym, old_region.value());
}

Result<CloakedUpdate> Shard::UpdateLocation(UserId user,
                                            const Point& location,
                                            TimeOfDay now) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  obs::TraceSpan span(obs::CurrentTraceContext(), "cloak");
  auto update = anonymizer_->UpdateLocation(user, location, now);
  if (!update.ok()) return update.status();
  ForwardCloaked(update.value(), user);
  ++ingest_.updates_applied;
  if (span.active())
    EmitCloakAudit(&span, user, update.value(),
                   obs::CurrentTraceContext().trace_id);
  return update;
}

Result<CloakedUpdate> Shard::CloakForQuery(UserId user, TimeOfDay now) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  obs::TraceSpan span(obs::CurrentTraceContext(), "cloak");
  auto update = anonymizer_->CloakForQuery(user, now);
  if (!update.ok()) return update.status();
  // A rotation at query time re-keys the server record too, otherwise the
  // user would disappear from public queries until the next report.
  if (update.value().retired_pseudonym != 0)
    ForwardCloaked(update.value(), user);
  if (span.active())
    EmitCloakAudit(&span, user, update.value(),
                   obs::CurrentTraceContext().trace_id);
  return update;
}

Status Shard::AddPublicObject(const PublicObject& object) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (config_.durability != nullptr) {
    storage::WalRecord rec;
    rec.type = storage::WalRecordType::kAddPublicObject;
    rec.object = object;
    CLOAKDB_RETURN_IF_ERROR(LogDurable(std::move(rec)));
  }
  // Only probe supersets that could have fetched this point go stale.
  cache_.InvalidatePublicRegion(Rect::FromPoint(object.location));
  return server_.store().AddPublicObject(object);
}

Status Shard::BulkLoadCategory(Category category,
                               std::vector<PublicObject> objects) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (config_.durability != nullptr) {
    storage::WalRecord rec;
    rec.type = storage::WalRecordType::kBulkLoadCategory;
    rec.category = category;
    rec.objects = objects;
    CLOAKDB_RETURN_IF_ERROR(LogDurable(std::move(rec)));
  }
  // A bulk load replaces the category wholesale; no probe of it survives.
  cache_.InvalidateCategory(category);
  return server_.store().BulkLoadCategory(category, std::move(objects));
}

bool Shard::HasCategory(Category category) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return server_.store().CategoryIndex(category).ok();
}

Result<PrivateRangeResult> Shard::PrivateRange(
    const Rect& cloaked, double radius, Category category,
    const PrivateRangeOptions& opts) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return server_.PrivateRange(cloaked, radius, category, opts);
}

Result<PrivateNnResult> Shard::PrivateNn(const Rect& cloaked,
                                         Category category) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return server_.PrivateNn(cloaked, category);
}

Result<PrivateKnnResult> Shard::PrivateKnn(const Rect& cloaked, size_t k,
                                           Category category) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return server_.PrivateKnn(cloaked, k, category);
}

Result<PublicCountResult> Shard::PublicCount(const Rect& window) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return server_.PublicCount(window);
}

Result<HeatmapResult> Shard::Heatmap(uint32_t resolution) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return server_.Heatmap(resolution);
}

namespace {

// Snapping + reach quantization widen the shared probe beyond what the
// query alone would fetch. Past this area ratio a cold miss costs more
// than cache reuse can recover (and the entry crowds out denser keys), so
// such outliers are served isolated — the answer is identical either way.
constexpr double kMaxProbeBloat = 2.5;

bool ProbeTooBloated(const Rect& probe, const Rect& fetch) {
  return probe.Area() > kMaxProbeBloat * fetch.Area();
}

}  // namespace

CacheKey Shard::ProbeKey(CacheKind kind, Category category,
                         const Rect& cloaked, double reach,
                         const Rect& cover) const {
  CacheKey key;
  key.kind = kind;
  key.category = category;
  key.region = cover.IsEmpty() ? signature_.SnapToCells(cloaked) : cover;
  key.reach = signature_.QuantizeReach(reach);
  return key;
}

Result<std::shared_ptr<const CacheEntry>> Shard::ProbeOrLookup(
    const CacheKey& key, const Rect& probe_region) const {
  obs::TraceSpan span(obs::CurrentTraceContext(), "cache.lookup");
  span.AddAttr("shard", static_cast<double>(config_.index));
  if (auto entry = cache_.Lookup(key); entry != nullptr) {
    span.AddAttr("hit", 1.0);
    return entry;
  }
  span.AddAttr("hit", 0.0);  // Span covers the widened probe below.
  obs::ScopedTimer probe_timer(config_.shared_probe_us);
  auto superset = server_.SharedProbe(probe_region, key.category);
  if (!superset.ok()) {
    probe_timer.Cancel();
    return superset.status();
  }
  probe_timer.Stop();
  CacheEntry entry;
  entry.superset = std::move(superset).value();
  entry.coverage = probe_region;
  auto shared = std::make_shared<const CacheEntry>(std::move(entry));
  // Still under the caller's shared lock, so no writer can have slipped a
  // conflicting update between the probe and this insert.
  cache_.Insert(key, shared);
  return shared;
}

Result<PrivateRangeResult> Shard::PrivateRangeCached(
    const Rect& cloaked, double radius, Category category,
    const PrivateRangeOptions& opts, const Rect& cover) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (!cache_.enabled())
    return server_.PrivateRange(cloaked, radius, category, opts);
  if (cloaked.IsEmpty())
    return Status::InvalidArgument("cloaked region must be non-empty");
  if (!(radius > 0.0))
    return Status::InvalidArgument("query radius must be positive");
  CacheKey key = ProbeKey(CacheKind::kRange, category, cloaked, radius, cover);
  const Rect probe = key.region.Expanded(key.reach);
  if (ProbeTooBloated(probe, cloaked.Expanded(radius)))
    return server_.PrivateRange(cloaked, radius, category, opts);
  auto entry = ProbeOrLookup(key, probe);
  if (!entry.ok()) return entry.status();
  return server_.PrivateRangeShared(entry.value()->superset, cloaked, radius,
                                    category, opts);
}

Result<PrivateNnResult> Shard::PrivateNnCached(const Rect& cloaked,
                                               Category category,
                                               const Rect& cover) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (!cache_.enabled()) return server_.PrivateNn(cloaked, category);
  // The NN reach depends on this shard's data, so the key is computed here
  // under the lock (cluster members with similar regions quantize to the
  // same reach and still share the probe).
  auto reach = server_.NnFetchReach(cloaked, category);
  if (!reach.ok()) return reach.status();
  CacheKey key =
      ProbeKey(CacheKind::kNn, category, cloaked, reach.value(), cover);
  const Rect probe = key.region.Expanded(key.reach);
  if (ProbeTooBloated(probe, cloaked.Expanded(reach.value())))
    return server_.PrivateNn(cloaked, category);
  auto entry = ProbeOrLookup(key, probe);
  if (!entry.ok()) return entry.status();
  return server_.PrivateNnShared(entry.value()->superset, cloaked, category,
                                 reach.value());
}

Result<PrivateKnnResult> Shard::PrivateKnnCached(const Rect& cloaked,
                                                 size_t k, Category category,
                                                 const Rect& cover) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (!cache_.enabled()) return server_.PrivateKnn(cloaked, k, category);
  auto reach = server_.KnnFetchReach(cloaked, k, category);
  if (!reach.ok()) return reach.status();
  if (reach.value() == 0.0) {
    // <= k objects here: the pigeonhole answer needs the whole category,
    // which no bounded probe covers — take the isolated path.
    return server_.PrivateKnn(cloaked, k, category);
  }
  CacheKey key =
      ProbeKey(CacheKind::kKnn, category, cloaked, reach.value(), cover);
  const Rect probe = key.region.Expanded(key.reach);
  if (ProbeTooBloated(probe, cloaked.Expanded(reach.value())))
    return server_.PrivateKnn(cloaked, k, category);
  auto entry = ProbeOrLookup(key, probe);
  if (!entry.ok()) return entry.status();
  return server_.PrivateKnnShared(entry.value()->superset, cloaked, k,
                                  category, reach.value());
}

Result<PublicCountResult> Shard::PublicCountCached(const Rect& window) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (!cache_.enabled()) return server_.PublicCount(window);
  CacheKey key;
  key.kind = CacheKind::kCount;
  key.region = window;
  if (auto entry = cache_.Lookup(key); entry != nullptr) {
    server_.NotePublicCountFromCache();
    return entry->count;
  }
  auto result = server_.PublicCount(window);
  if (!result.ok()) return result;
  CacheEntry entry;
  entry.count = result.value();
  entry.coverage = window;
  cache_.Insert(key, std::move(entry));
  return result;
}

Result<Rect> Shard::CurrentRegionOfUser(UserId user) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto pseudonym = anonymizer_->PseudonymOf(user);
  if (!pseudonym.ok()) return pseudonym.status();
  return server_.store().GetPrivateRegion(pseudonym.value());
}

Result<double> Shard::KnnReach(const Rect& cloaked, size_t k,
                               Category category) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return server_.KnnFetchReach(cloaked, k, category);
}

Result<std::vector<PublicObject>> Shard::ProbeRegion(
    const Rect& probe, Category category) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return server_.SharedProbe(probe, category);
}

Status Shard::RegisterStandingCount(ContinuousQueryId id,
                                    const Rect& window) {
  // Shared lock held across scan + insert: drains take the exclusive lock,
  // so no update can slip between the scan and the registration.
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::unordered_map<ObjectId, double> contributions;
  for (const auto& entry :
       server_.store().private_index().IntersectingRects(window)) {
    double p = CountContributionOf(entry.rect, window);
    if (p > 0.0) contributions[entry.id] = p;
  }
  return continuous_.InsertCount(id, window, std::move(contributions));
}

void Shard::RescanStandingCount(ContinuousQueryId id, const Rect& window,
                                uint64_t epoch) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::unordered_map<ObjectId, double> contributions;
  for (const auto& entry :
       server_.store().private_index().IntersectingRects(window)) {
    double p = CountContributionOf(entry.rect, window);
    if (p > 0.0) contributions[entry.id] = p;
  }
  continuous_.RestoreCount(id, epoch, std::move(contributions));
}

Status Shard::WriteCheckpoint() {
  if (config_.durability == nullptr) return Status::OK();
  // Shared lock: durable mutations append under the exclusive lock, so the
  // WAL cannot advance while the state is being exported — the engine's
  // last LSN exactly covers this snapshot. Queries proceed concurrently.
  std::shared_lock<std::shared_mutex> lock(mu_);
  storage::ShardSnapshot snap;
  snap.anonymizer = anonymizer_->ExportState();
  snap.public_objects = server_.store().AllPublicObjects();
  snap.private_regions = server_.store().AllPrivateRegions();
  auto specs = continuous_.RegisteredSpecs();
  snap.cqs.reserve(specs.size());
  for (const auto& [id, spec] : specs) {
    storage::SnapshotCq cq;
    cq.id = id;
    cq.kind = static_cast<uint8_t>(spec.kind);
    cq.issuer = spec.issuer;
    cq.radius = spec.radius;
    cq.k = spec.k;
    cq.category = spec.category;
    cq.window = spec.window;
    snap.cqs.push_back(cq);
  }
  CLOAKDB_RETURN_IF_ERROR(config_.durability->WriteCheckpoint(
      storage::EncodeShardSnapshot(snap)));
  // Refresh the sealed-tree sidecar under the same shared hold, so the
  // blobs match the snapshot just written. The sidecar is an accelerator,
  // not a source of truth: a write failure (e.g. more categories than the
  // directory holds) degrades recovery to an STR rebuild, never fails the
  // checkpoint.
  if (!config_.index_blob_path.empty() &&
      server_.store().public_index_mode() == PublicIndexMode::kStatic) {
    std::vector<std::pair<uint32_t, std::string>> blobs;
    for (Category category : server_.store().Categories()) {
      auto index = server_.store().CategoryIndex(category);
      if (index.ok())
        blobs.emplace_back(category, index.value()->SerializeSealedBlob());
    }
    (void)storage::WriteIndexBlobFile(config_.index_blob_path, blobs);
  }
  return Status::OK();
}

Status Shard::CompactPublicIndex() {
  if (server_.store().public_index_mode() != PublicIndexMode::kStatic)
    return Status::OK();
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (Category category : server_.store().Categories()) {
    PublicCategoryIndex* index = server_.store().MutableCategoryIndex(category);
    if (index != nullptr && index->NeedsCompaction())
      CLOAKDB_RETURN_IF_ERROR(index->Compact());
  }
  return Status::OK();
}

Status Shard::RestoreSnapshot(const storage::ShardSnapshot& snapshot) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  CLOAKDB_RETURN_IF_ERROR(anonymizer_->RestoreState(snapshot.anonymizer));
  std::map<Category, std::vector<PublicObject>> by_category;
  for (const PublicObject& o : snapshot.public_objects)
    by_category[o.category].push_back(o);
  // In static mode, try to adopt each category's sealed tree straight out
  // of the mmap'd sidecar. The sidecar is untrusted: open, parse, and
  // per-entry verification against the snapshot can each fail, and every
  // failure falls back to the historical STR rebuild below.
  std::shared_ptr<util::MmapFile> sidecar;
  std::map<Category, storage::IndexBlobEntry> sidecar_entries;
  if (!config_.index_blob_path.empty() &&
      server_.store().public_index_mode() == PublicIndexMode::kStatic) {
    auto opened = storage::OpenIndexBlobFile(
        config_.index_blob_path, config_.index_blob_force_read_fallback);
    if (opened.ok()) {
      sidecar = opened.value().file;
      for (const storage::IndexBlobEntry& e : opened.value().entries)
        sidecar_entries[e.category] = e;
      if (config_.sidecar_obs.opens_total != nullptr)
        config_.sidecar_obs.opens_total->Increment();
      if (sidecar->mapped()) {
        if (config_.sidecar_obs.bytes_mapped_total != nullptr)
          config_.sidecar_obs.bytes_mapped_total->Increment(sidecar->size());
      } else if (config_.sidecar_obs.read_fallbacks_total != nullptr) {
        config_.sidecar_obs.read_fallbacks_total->Increment();
      }
    }
  }
  for (auto& [category, objects] : by_category) {
    bool adopted = false;
    auto entry = sidecar_entries.find(category);
    if (entry != sidecar_entries.end()) {
      auto tree = StaticRTree::FromMapped(sidecar, entry->second.offset,
                                          entry->second.length);
      if (tree.ok() &&
          server_.store()
              .AdoptCategorySealed(category, std::move(tree).value(), objects)
              .ok()) {
        adopted = true;
      } else {
        if (config_.sidecar_obs.verify_failures_total != nullptr)
          config_.sidecar_obs.verify_failures_total->Increment();
        if (config_.public_index.obs != nullptr &&
            config_.public_index.obs->rebuilds_total != nullptr)
          config_.public_index.obs->rebuilds_total->Increment();
      }
    }
    if (!adopted) {
      CLOAKDB_RETURN_IF_ERROR(
          server_.store().BulkLoadCategory(category, std::move(objects)));
    }
  }
  for (const auto& [pseudonym, region] : snapshot.private_regions)
    CLOAKDB_RETURN_IF_ERROR(server_.ApplyCloakedUpdate(pseudonym, region));
  return Status::OK();
}

Status Shard::ReplayWalRecord(const storage::WalRecord& record) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // The log is write-ahead, so a record may mirror an apply that failed
  // (e.g. a duplicate registration); replaying it fails identically, which
  // is exactly the original outcome — such statuses are not errors here.
  switch (record.type) {
    case storage::WalRecordType::kRegisterUser: {
      auto profile = PrivacyProfile::Create(record.profile);
      if (!profile.ok()) return profile.status();
      (void)anonymizer_->RegisterUser(record.user,
                                      std::move(profile).value());
      return Status::OK();
    }
    case storage::WalRecordType::kUpdateProfile: {
      auto profile = PrivacyProfile::Create(record.profile);
      if (!profile.ok()) return profile.status();
      (void)anonymizer_->UpdateProfile(record.user,
                                       std::move(profile).value());
      return Status::OK();
    }
    case storage::WalRecordType::kUnregisterUser: {
      auto pseudonym = anonymizer_->PseudonymOf(record.user);
      if (anonymizer_->UnregisterUser(record.user).ok() && pseudonym.ok())
        DropServerRecord(pseudonym.value());
      return Status::OK();
    }
    case storage::WalRecordType::kUpdateBatch: {
      std::vector<PendingUpdate> batch;
      batch.reserve(record.updates.size());
      for (const storage::WalUpdate& u : record.updates) {
        PendingUpdate p;
        p.user = u.user;
        p.location = u.location;
        p.time = TimeOfDay::FromSeconds(u.time_seconds);
        batch.push_back(p);
      }
      obs::TraceSpan root;  // Inert: recovery is not a traced ingest.
      (void)ApplyBatchLocked(batch, &root, obs::TraceContext{});
      return Status::OK();
    }
    case storage::WalRecordType::kAddPublicObject:
      (void)server_.store().AddPublicObject(record.object);
      return Status::OK();
    case storage::WalRecordType::kBulkLoadCategory:
      (void)server_.store().BulkLoadCategory(
          record.category, std::vector<PublicObject>(record.objects));
      return Status::OK();
    case storage::WalRecordType::kCqRegister:
    case storage::WalRecordType::kCqUnregister:
      return Status::InvalidArgument(
          "standing-query records replay at the service layer");
  }
  return Status::InvalidArgument("unknown WAL record type");
}

Status Shard::LogCqRegister(ContinuousQueryId id,
                            const ContinuousSpec& spec) {
  if (config_.durability == nullptr) return Status::OK();
  std::unique_lock<std::shared_mutex> lock(mu_);
  storage::WalRecord rec;
  rec.type = storage::WalRecordType::kCqRegister;
  rec.cq_id = id;
  rec.cq_kind = static_cast<uint8_t>(spec.kind);
  rec.cq_issuer = spec.issuer;
  rec.cq_radius = spec.radius;
  rec.cq_k = spec.k;
  rec.cq_category = spec.category;
  rec.cq_window = spec.window;
  return LogDurable(std::move(rec));
}

Status Shard::LogCqUnregister(ContinuousQueryId id) {
  if (config_.durability == nullptr) return Status::OK();
  std::unique_lock<std::shared_mutex> lock(mu_);
  storage::WalRecord rec;
  rec.type = storage::WalRecordType::kCqUnregister;
  rec.cq_id = id;
  return LogDurable(std::move(rec));
}

ShardStats Shard::Stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  ShardStats stats;
  stats.shard = config_.index;
  stats.anonymizer = anonymizer_->stats();
  stats.server = server_.stats();
  stats.ingest = ingest_;
  stats.ingest.updates_enqueued = enqueued_.load(std::memory_order_relaxed);
  stats.queue_depth = queue_.size();
  stats.num_users = anonymizer_->num_users();
  return stats;
}

}  // namespace cloakdb
