// The unified, versioned query envelope of CloakDB.
//
// One tagged QueryRequest/QueryResponse pair subsumes the per-kind service
// entry points (PrivateRange / PrivateNn / PrivateKnn and the public
// count/heatmap aggregates) and their Options/Result structs. The service
// executes the envelope (CloakDbService::ExecuteQuery), the per-kind
// methods are thin wrappers over it, batches are vectors of it, and the
// wire protocol (src/net/protocol.h) serializes it 1:1 — so the in-process
// API and the network API cannot drift.
//
// Versioning: the envelope itself carries no version field; the wire frame
// header does (net::kProtocolVersion). Members are only ever appended and
// the frame payloads encode every field, so a version bump is a protocol
// change, reviewed in one place.

#ifndef CLOAKDB_SERVICE_API_H_
#define CLOAKDB_SERVICE_API_H_

#include <cstdint>
#include <string>
#include <vector>

#include "server/private_queries.h"
#include "server/public_queries.h"
#include "util/status.h"

namespace cloakdb {

/// The query kinds the envelope can carry. Values are wire-stable.
enum class QueryKind : uint8_t {
  kPrivateRange = 0,  ///< Candidates within `radius` of the cloaked region.
  kPrivateNn = 1,     ///< Nearest-neighbor candidate list.
  kPrivateKnn = 2,    ///< k-nearest-neighbor candidate list.
  kPublicCount = 3,   ///< Probabilistic count of users in a window.
  kHeatmap = 4,       ///< Expected-density grid over the whole space.
};

/// "private_range", "private_nn", ... (metric/trace/log segment).
const char* QueryKindName(QueryKind kind);

/// True for the values listed in QueryKind (wire validation).
bool IsValidQueryKind(uint8_t raw);

/// One query, any kind. Exactly the fields relevant to `kind` are read;
/// the rest ride along zero-valued (and serialize as such).
struct QueryRequest {
  QueryKind kind = QueryKind::kPrivateRange;

  /// Cloaked region (private kinds) or count window (kPublicCount).
  Rect region{0.0, 0.0, 0.0, 0.0};
  double radius = 0.0;    ///< kPrivateRange.
  uint64_t k = 1;         ///< kPrivateKnn.
  Category category = 0;  ///< Private kinds.
  uint32_t resolution = 0;  ///< kHeatmap grid resolution per side.
  /// kPrivateRange: exact rounded-rect refinement (PrivateRangeOptions).
  bool exact_rounded_rect = true;
  /// Client budget in microseconds (0 = none). Combined with the
  /// admission controller's deadline via Deadline::Earliest, so a client
  /// can only tighten, never extend, the server's own limit.
  int64_t deadline_us = 0;

  /// Named constructors, one per kind.
  static QueryRequest Range(const Rect& cloaked, double radius,
                            Category category,
                            const PrivateRangeOptions& opts = {});
  static QueryRequest Nn(const Rect& cloaked, Category category);
  static QueryRequest Knn(const Rect& cloaked, uint64_t k, Category category);
  static QueryRequest Count(const Rect& window);
  static QueryRequest HeatmapAt(uint32_t resolution);

  /// The PrivateRangeOptions view of this request (kPrivateRange).
  PrivateRangeOptions range_options() const;
};

/// The answer to one QueryRequest. Errors travel in-band (`error` +
/// `message`) because that is exactly how they travel on the wire: a shed
/// or deadline-exceeded query is a typed response, never a silent drop.
struct QueryResponse {
  QueryKind kind = QueryKind::kPrivateRange;
  ErrorCode error = ErrorCode::kOk;
  std::string message;  ///< Error detail; empty when ok().

  // --- Private-kind payload ---------------------------------------------
  /// The candidate list (superset guarantee; client-side refinement keys
  /// on the exact user location, which never reaches the server).
  std::vector<PublicObject> candidates;
  Rect extended_region{0.0, 0.0, 0.0, 0.0};  ///< kPrivateRange probe region.
  double fetch_radius = 0.0;  ///< kPrivateNn / kPrivateKnn.
  uint64_t pruned = 0;  ///< Rounded-rect or dominance prune count.

  // --- kPublicCount payload ---------------------------------------------
  double expected_count = 0.0;  ///< Sum of per-user containment p_i.
  uint64_t count_min = 0;       ///< #{p_i == 1}.
  uint64_t count_max = 0;       ///< #{p_i > 0}.

  // --- kHeatmap payload --------------------------------------------------
  uint32_t resolution = 0;
  Rect space{0.0, 0.0, 0.0, 0.0};
  std::vector<double> heat;  ///< resolution^2 expected densities, row-major.

  // --- Degradation + admission verdicts (PRs 4-5, carried on the wire) ---
  bool degraded = false;        ///< Some shards were not covered.
  uint64_t covered_shards = 0;  ///< Bitmap of covered shards (<= 64).
  bool degraded_admission = false;  ///< Admitted with a capped fan-out.
  uint64_t trace_id = 0;            ///< 0 when tracing is off/unsampled.
  uint64_t server_latency_us = 0;   ///< Service-side wall time.

  bool ok() const { return error == ErrorCode::kOk; }
  /// Reconstructs the Status the per-kind wrappers return.
  Status status() const {
    return ok() ? Status::OK() : Status(error, message);
  }
};

/// An error response of the given kind (used by service + server alike).
QueryResponse MakeErrorResponse(QueryKind kind, const Status& status);

// --- Conversions between the envelope and the per-kind result structs ----
// The service's merge machinery still speaks the rich structs; the
// envelope is the boundary format. Conversions move the candidate lists.

QueryResponse ResponseFromRange(PrivateRangeResult result);
QueryResponse ResponseFromNn(PrivateNnResult result);
QueryResponse ResponseFromKnn(PrivateKnnResult result);
/// Summarizes the count (the PMF and per-object contributions are
/// library-side diagnostics; expected/interval formats travel).
QueryResponse ResponseFromCount(const PublicCountResult& result);
QueryResponse ResponseFromHeatmap(HeatmapResult result);

PrivateRangeResult RangeFromResponse(QueryResponse response);
PrivateNnResult NnFromResponse(QueryResponse response);
PrivateKnnResult KnnFromResponse(QueryResponse response);
HeatmapResult HeatmapFromResponse(QueryResponse response);

}  // namespace cloakdb

#endif  // CLOAKDB_SERVICE_API_H_
