#include "service/candidate_cache.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

namespace cloakdb {

namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// splitmix64 finalizer — the same mixer the service uses for routing.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

size_t CacheKeyHash::operator()(const CacheKey& key) const {
  uint64_t h = Mix64(static_cast<uint64_t>(key.kind) |
                     (static_cast<uint64_t>(key.category) << 8));
  h = Mix64(h ^ DoubleBits(key.region.min_x));
  h = Mix64(h ^ DoubleBits(key.region.min_y));
  h = Mix64(h ^ DoubleBits(key.region.max_x));
  h = Mix64(h ^ DoubleBits(key.region.max_y));
  h = Mix64(h ^ DoubleBits(key.reach));
  return static_cast<size_t>(h);
}

CellSignature::CellSignature(const Rect& space, uint32_t cells)
    : space_(space), cells_(cells == 0 ? 1 : cells) {
  cell_w_ = space_.Width() / static_cast<double>(cells_);
  cell_h_ = space_.Height() / static_cast<double>(cells_);
  if (!(cell_w_ > 0.0)) cell_w_ = 1.0;
  if (!(cell_h_ > 0.0)) cell_h_ = 1.0;
  cell_size_ = std::max(cell_w_, cell_h_);
}

Rect CellSignature::SnapToCells(const Rect& region) const {
  auto cell_of = [](double v, double origin, double size,
                    uint32_t cells) -> uint32_t {
    double c = std::floor((v - origin) / size);
    if (c < 0.0) return 0;
    if (c >= static_cast<double>(cells)) return cells - 1;
    return static_cast<uint32_t>(c);
  };
  uint32_t cx0 = cell_of(region.min_x, space_.min_x, cell_w_, cells_);
  uint32_t cy0 = cell_of(region.min_y, space_.min_y, cell_h_, cells_);
  uint32_t cx1 = cell_of(region.max_x, space_.min_x, cell_w_, cells_);
  uint32_t cy1 = cell_of(region.max_y, space_.min_y, cell_h_, cells_);
  return Rect(space_.min_x + cx0 * cell_w_, space_.min_y + cy0 * cell_h_,
              space_.min_x + (cx1 + 1) * cell_w_,
              space_.min_y + (cy1 + 1) * cell_h_);
}

double CellSignature::QuantizeReach(double reach) const {
  double q = cell_size_;
  while (q < reach) q *= 2.0;
  return q;
}

CandidateCache::CandidateCache(size_t capacity) : capacity_(capacity) {}

size_t CandidateCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

std::shared_ptr<const CacheEntry> CandidateCache::Lookup(
    const CacheKey& key) {
  if (!enabled()) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    if (obs_.misses != nullptr) obs_.misses->Increment();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  if (obs_.hits != nullptr) obs_.hits->Increment();
  return it->second->entry;
}

void CandidateCache::Insert(const CacheKey& key, CacheEntry entry) {
  Insert(key, std::make_shared<const CacheEntry>(std::move(entry)));
}

void CandidateCache::Insert(const CacheKey& key,
                            std::shared_ptr<const CacheEntry> entry) {
  if (!enabled()) return;
  auto shared = std::move(entry);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->entry = std::move(shared);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front({key, std::move(shared)});
  index_.emplace(key, lru_.begin());
  (key.kind == CacheKind::kCount ? count_entries_ : probe_entries_) += 1;
  if (obs_.insertions != nullptr) obs_.insertions->Increment();
  while (index_.size() > capacity_) {
    const Node& victim = lru_.back();
    (victim.key.kind == CacheKind::kCount ? count_entries_
                                          : probe_entries_) -= 1;
    index_.erase(victim.key);
    lru_.pop_back();
    if (obs_.lru_evictions != nullptr) obs_.lru_evictions->Increment();
  }
}

template <typename Pred>
void CandidateCache::EvictMatching(const Pred& pred) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (!pred(*it)) {
      ++it;
      continue;
    }
    (it->key.kind == CacheKind::kCount ? count_entries_
                                       : probe_entries_) -= 1;
    index_.erase(it->key);
    it = lru_.erase(it);
    if (obs_.invalidations != nullptr) obs_.invalidations->Increment();
  }
}

void CandidateCache::InvalidatePublicRegion(const Rect& region) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (probe_entries_ == 0) return;
  EvictMatching([&](const Node& node) {
    return node.key.kind != CacheKind::kCount &&
           node.entry->coverage.Intersects(region);
  });
}

void CandidateCache::InvalidateCategory(Category category) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (probe_entries_ == 0) return;
  EvictMatching([&](const Node& node) {
    return node.key.kind != CacheKind::kCount &&
           node.key.category == category;
  });
}

void CandidateCache::InvalidatePrivateRegion(const Rect& region) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (count_entries_ == 0) return;
  EvictMatching([&](const Node& node) {
    return node.key.kind == CacheKind::kCount &&
           node.entry->coverage.Intersects(region);
  });
}

void CandidateCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  probe_entries_ = 0;
  count_entries_ = 0;
}

}  // namespace cloakdb
