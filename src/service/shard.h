// One shard of the CloakDB service: an Anonymizer paired with a
// QueryProcessor behind a reader/writer lock, plus the bounded update queue
// the worker pool drains into batched anonymization.
//
// Locking discipline (this file enforces the external-synchronization
// contract of Anonymizer and the writer side of QueryProcessor):
//   - exclusive lock: user management, update ingestion (drain), the
//     synchronous update path, CloakForQuery (it refreshes caches, stats
//     and pseudonym rotation), public-data mutation;
//   - shared lock: every query method and stats snapshotting, which only
//     touch const paths (QueryProcessor queries synchronize their own
//     counters internally).

#ifndef CLOAKDB_SERVICE_SHARD_H_
#define CLOAKDB_SERVICE_SHARD_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "core/anonymizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/query_processor.h"
#include "service/candidate_cache.h"
#include "service/continuous_registry.h"
#include "service/fault_injector.h"
#include "service/service_stats.h"
#include "service/update_queue.h"
#include "storage/index_blob.h"
#include "storage/shard_durability.h"
#include "storage/shard_snapshot.h"

namespace cloakdb {

/// Optional ingest-path observability hooks of one shard. All handles are
/// shared across shards (ShardedHistogram/Counter stripe internally), live
/// in the service's MetricsRegistry, and may be null (measurement off).
struct ShardObs {
  /// Enqueue -> batch-apply wall time per update (microseconds).
  obs::ShardedHistogram* queue_wait_us = nullptr;
  /// Anonymizer::UpdateLocationsBatch wall time per batch (microseconds).
  obs::ShardedHistogram* cloak_us = nullptr;
  /// Updates per drained batch.
  obs::ShardedHistogram* batch_size = nullptr;
  /// Retired pseudonyms forwarded to the server.
  obs::Counter* rotations = nullptr;
  /// Updates shed at drain (unknown user / invalid location).
  obs::Counter* rejected = nullptr;
  /// Injected drain stalls that fired on this service (chaos testing).
  obs::Counter* fault_stalls = nullptr;
  /// Queue observability, forwarded to the BoundedUpdateQueue.
  UpdateQueueObs queue;
};

/// Sidecar/mmap lifecycle counters (service-owned; all optional).
struct IndexSidecarObs {
  /// Sidecar files opened during recovery.
  obs::Counter* opens_total = nullptr;
  /// Opens that took the read() fallback instead of a mapping.
  obs::Counter* read_fallbacks_total = nullptr;
  /// Sidecar blobs rejected (corrupt, truncated, or snapshot-divergent).
  obs::Counter* verify_failures_total = nullptr;
  /// Bytes mapped from sidecar files.
  obs::Counter* bytes_mapped_total = nullptr;
};

/// Per-shard construction parameters (derived by CloakDbService from its
/// own options; the anonymizer space is always the full service space so a
/// cloaked region may extend beyond the shard's public-data stripe).
struct ShardConfig {
  uint32_t index = 0;
  AnonymizerOptions anonymizer;
  uint32_t rect_grid_cells = 64;
  WireCostModel wire_cost;
  size_t queue_capacity = 4096;
  ShardObs obs;
  /// Probe sinks installed into the shard's QueryProcessor.
  QueryProcessorObs server_obs;

  /// Candidate-cache entries this shard may hold; 0 disables caching (the
  /// *Cached query variants then forward to the uncached paths).
  size_t cache_capacity = 0;
  /// Signature-grid resolution per side used to snap cloaked regions to
  /// cache keys (must match the service's, so cluster covers computed at
  /// the service level key consistently here).
  uint32_t signature_cells = 32;
  /// Cache counters (hits/misses/insertions/evictions/invalidations).
  CandidateCacheObs cache_obs;
  /// Widened shared-probe wall time on a cache miss (microseconds).
  obs::ShardedHistogram* shared_probe_us = nullptr;
  /// Service-wide tracer; null = tracing off. Cloak sites emit audit spans
  /// into it, the ingest drain opens its own per-batch traces.
  obs::Tracer* tracer = nullptr;
  /// Service-wide fault injector; null = chaos off. The shard consults it
  /// for drain stalls (probe faults are injected at the service fan-out).
  FaultInjector* fault_injector = nullptr;
  /// Standing-query registry knobs + shared metric handles.
  ContinuousRegistryOptions continuous;
  ContinuousObs cq_obs;
  /// Service-owned durability engine of this shard; null = durability off.
  /// Every durable mutation is WAL-logged through it, under the shard's
  /// exclusive lock and before the in-memory apply (write-ahead).
  storage::ShardDurability* durability = nullptr;
  /// Per-category public-data index selection (mode, compaction limit,
  /// lifecycle counters); defaults to the dynamic R-tree.
  PublicCategoryIndex::Config public_index;
  /// Sealed-tree sidecar file of this shard ("" = none). Written after
  /// each checkpoint; mmap-adopted by RestoreSnapshot instead of STR
  /// rebuilding. Only meaningful in static public-index mode.
  std::string index_blob_path;
  /// Testing: force the read() fallback when opening the sidecar.
  bool index_blob_force_read_fallback = false;
  IndexSidecarObs sidecar_obs;
};

/// One anonymizer + server pair owning a hash-slice of the users.
class Shard {
 public:
  static Result<std::unique_ptr<Shard>> Create(const ShardConfig& config);

  uint32_t index() const { return config_.index; }

  // --- User management (exclusive) ---------------------------------------
  Status RegisterUser(UserId user, PrivacyProfile profile);
  Status UpdateProfile(UserId user, PrivacyProfile profile);
  /// Unregisters and drops the user's server-side record.
  Status UnregisterUser(UserId user);
  Result<ObjectId> PseudonymOf(UserId user) const;

  // --- Ingestion ---------------------------------------------------------
  /// Enqueues one pending update; blocks on a full queue when `block`,
  /// otherwise fails fast with ResourceExhausted.
  Status Enqueue(const PendingUpdate& update, bool block);

  /// Drains up to `max_batch` queued updates through
  /// Anonymizer::UpdateLocationsBatch and forwards the cloaked results to
  /// the query processor. Returns the number of updates taken off the
  /// queue (0 when it was empty). Safe to call from any thread.
  size_t DrainOnce(size_t max_batch);

  /// True when nothing is queued and no drained batch is still applying.
  bool Idle() const { return pending_.load(std::memory_order_acquire) == 0; }

  /// Closes the queue: producers fail, drains keep working until empty.
  void CloseQueue() { queue_.Close(); }

  /// Lock-free approximate update-queue depth (admission-control signal).
  size_t QueueDepth() const { return queue_.ApproxDepth(); }

  // --- Synchronous paths (exclusive) -------------------------------------
  /// Anonymizes one update and forwards it to the server immediately,
  /// bypassing the queue (used by low-rate callers and tests).
  Result<CloakedUpdate> UpdateLocation(UserId user, const Point& location,
                                       TimeOfDay now);

  /// Cloaks the user's current location for an outgoing query; a rotation
  /// triggered here retires the stale server record like an update would.
  Result<CloakedUpdate> CloakForQuery(UserId user, TimeOfDay now);

  // --- Public data (exclusive) -------------------------------------------
  Status AddPublicObject(const PublicObject& object);
  Status BulkLoadCategory(Category category,
                          std::vector<PublicObject> objects);
  bool HasCategory(Category category) const;

  // --- Queries (shared) --------------------------------------------------
  Result<PrivateRangeResult> PrivateRange(
      const Rect& cloaked, double radius, Category category,
      const PrivateRangeOptions& opts = {}) const;
  Result<PrivateNnResult> PrivateNn(const Rect& cloaked,
                                    Category category) const;
  Result<PrivateKnnResult> PrivateKnn(const Rect& cloaked, size_t k,
                                      Category category) const;
  Result<PublicCountResult> PublicCount(const Rect& window) const;
  Result<HeatmapResult> Heatmap(uint32_t resolution) const;

  // --- Shared execution (shared lock) ------------------------------------
  // Cached variants: serve the widened probe from the shard's candidate
  // cache when possible, then refine exactly like the uncached query —
  // results are identical, only the fetch is shared. `cover` optionally
  // overrides the snapped cloaked region as the probe base (the service
  // passes a cluster's union cover so every member shares one entry); it
  // must contain the snapped cloaked region; pass an empty Rect for the
  // single-query default. Probe + cache insert happen under one shared
  // lock, and writers invalidate under the exclusive lock, so a stale
  // entry can never be inserted over a concurrent update.

  Result<PrivateRangeResult> PrivateRangeCached(
      const Rect& cloaked, double radius, Category category,
      const PrivateRangeOptions& opts, const Rect& cover) const;
  Result<PrivateNnResult> PrivateNnCached(const Rect& cloaked,
                                          Category category,
                                          const Rect& cover) const;
  Result<PrivateKnnResult> PrivateKnnCached(const Rect& cloaked, size_t k,
                                            Category category,
                                            const Rect& cover) const;
  /// Caches the complete count answer keyed by the exact window.
  Result<PublicCountResult> PublicCountCached(const Rect& window) const;

  /// The shard's candidate cache (for diagnostics and tests).
  const CandidateCache& cache() const { return cache_; }

  // --- Continuous queries ------------------------------------------------
  /// The standing-query registry homed on this shard. Registry methods
  /// take the registry's own mutex; no shard lock is needed to read it.
  ContinuousShardRegistry& continuous() { return continuous_; }
  const ContinuousShardRegistry& continuous() const { return continuous_; }

  /// The current cloaked region of a registered user (shared lock); fails
  /// with NotFound when the user never reported.
  Result<Rect> CurrentRegionOfUser(UserId user) const;

  /// Conservative k-NN fetch reach of this shard's data (shared lock);
  /// 0.0 when the shard holds at most k objects of the category.
  Result<double> KnnReach(const Rect& cloaked, size_t k,
                          Category category) const;

  /// Materializes every `category` object inside `probe` (shared lock).
  Result<std::vector<PublicObject>> ProbeRegion(const Rect& probe,
                                                Category category) const;

  /// Scans the current private regions intersecting `window` and installs
  /// the standing count under one shared-lock hold, so no drain can
  /// interleave between scan and registration.
  Status RegisterStandingCount(ContinuousQueryId id, const Rect& window);

  /// Re-scans a standing count window (sweep repair path); the registry
  /// discards the result if the entry mutated past `epoch`.
  void RescanStandingCount(ContinuousQueryId id, const Rect& window,
                           uint64_t epoch);

  // --- Durability ----------------------------------------------------------
  /// Exports the shard's durable state and writes it as a checkpoint.
  /// Takes the shared lock — durable mutations append under the exclusive
  /// lock, so no WAL record can land mid-export and the checkpoint LSN
  /// exactly covers the exported state; queries proceed concurrently.
  /// No-op when durability is off.
  Status WriteCheckpoint();

  /// Folds each category's spill overlay + tombstones back into its sealed
  /// StaticRTree (exclusive lock). The service calls this before a
  /// checkpoint so the serialized sidecar matches the live set; no-op in
  /// dynamic public-index mode or when nothing spilled.
  Status CompactPublicIndex();

  /// Replaces the shard's state with a decoded checkpoint (exclusive
  /// lock). The anonymizer, object store and private regions are restored
  /// here; standing-query registrations (`snapshot.cqs`) are re-registered
  /// by the service, which owns cross-shard CQ evaluation.
  Status RestoreSnapshot(const storage::ShardSnapshot& snapshot);

  /// Re-applies one recovered WAL record through the normal apply paths
  /// (exclusive lock), without re-logging it. CQ records are the service's
  /// to replay; passing one here is an error.
  Status ReplayWalRecord(const storage::WalRecord& record);

  /// WAL-logs a standing-query (un)registration event (exclusive lock; no
  /// state change here — the registry mutation is the service's, which
  /// also decides which shards log the event: the home shard for private
  /// kinds, every shard for counts). No-ops when durability is off.
  Status LogCqRegister(ContinuousQueryId id, const ContinuousSpec& spec);
  Status LogCqUnregister(ContinuousQueryId id);

  /// Counter snapshot (shared lock; consistent within the shard).
  ShardStats Stats() const;

 private:
  explicit Shard(const ShardConfig& config,
                 std::unique_ptr<Anonymizer> anonymizer);

  /// Applies one popped batch; takes the exclusive lock itself, WAL-logs
  /// the raw batch, applies it, then decrements pending_. `sync_wal =
  /// false` defers the record's fsync to the engine's next group commit
  /// (the drain that empties the queue, or Flush()'s SyncWal barrier).
  void ApplyBatch(const std::vector<PendingUpdate>& batch,
                  bool sync_wal = true);

  /// The apply loop proper (shedding, batched cloak, forwarding, audit).
  /// Caller holds the exclusive lock; pending_ is not touched — shared by
  /// the drain path and WAL replay. Returns whether any audit violated.
  bool ApplyBatchLocked(const std::vector<PendingUpdate>& batch,
                        obs::TraceSpan* root,
                        const obs::TraceContext& trace_ctx);

  /// WAL-logs one durable mutation (no-op when durability is off). Caller
  /// holds the exclusive lock; called BEFORE the in-memory apply.
  /// `sync_now = false` appends without the kFsync-mode fsync (group
  /// commit; see ShardDurability::LogAndCommit).
  Status LogDurable(storage::WalRecord record, bool sync_now = true);

  /// Forwards one cloaked update (and any retired pseudonym) to the
  /// server, invalidating cached count entries the update's old or new
  /// region overlaps and notifying the standing-query registry. Caller
  /// holds the exclusive lock; `user` is the reporting user (standing
  /// private queries are keyed by issuer).
  void ForwardCloaked(const CloakedUpdate& update, UserId user);

  /// Drops a pseudonym's server record after invalidating cached count
  /// entries its last region overlaps. Caller holds the exclusive lock.
  void DropServerRecord(ObjectId pseudonym);

  /// Serves the probe superset for `key` from cache or the index (caller
  /// holds at least the shared lock; probe_region is the widened rect the
  /// key stands for).
  Result<std::shared_ptr<const CacheEntry>> ProbeOrLookup(
      const CacheKey& key, const Rect& probe_region) const;

  /// The probe cache key of one private query: the cluster `cover` (or the
  /// snapped cloaked region when cover is empty) plus the quantized reach.
  CacheKey ProbeKey(CacheKind kind, Category category, const Rect& cloaked,
                    double reach, const Rect& cover) const;

  /// Builds the privacy-audit payload of one cloak (constraint
  /// satisfaction plus the deterministic center/boundary attack checks
  /// against the user's true location) and attaches it to `span`. Reports
  /// violations to the tracer. Caller holds at least the shared lock (the
  /// snapshot is read).
  obs::AuditEvent EmitCloakAudit(obs::TraceSpan* span, UserId user,
                                 const CloakedUpdate& update,
                                 uint64_t trace_id) const;

  ShardConfig config_;
  std::unique_ptr<Anonymizer> anonymizer_;
  QueryProcessor server_;
  CellSignature signature_;
  ContinuousShardRegistry continuous_;
  mutable CandidateCache cache_;
  BoundedUpdateQueue queue_;
  mutable std::shared_mutex mu_;
  ShardIngestStats ingest_;  ///< Guarded by mu_ (written under exclusive).
  /// Lock-free so producers never contend with the shard lock; folded into
  /// ingest_.updates_enqueued when stats are snapshotted.
  std::atomic<uint64_t> enqueued_{0};
  /// Queued + popped-but-not-yet-applied updates; lets Flush observe
  /// completion without holding any lock.
  std::atomic<size_t> pending_{0};
};

}  // namespace cloakdb

#endif  // CLOAKDB_SERVICE_SHARD_H_
