// Admission control and load shedding for CloakDbService.
//
// The controller sits at the front door of the service and decides, before
// any shard is touched, whether a query should run at full fan-out, run
// degraded (capped shard budget), or be rejected outright. Two independent
// overload signals feed the decision:
//
//   * a token bucket over offered query load (max_queries_per_s + burst),
//   * aggregate update-queue depth vs. capacity (shed_queue_fraction),
//
// Updates are shed per-shard: when the target shard's queue is beyond the
// shed fraction, TryEnqueue-style rejection replaces blocking backpressure
// so ingest overload cannot stall query threads.

#ifndef CLOAKDB_SERVICE_OVERLOAD_H_
#define CLOAKDB_SERVICE_OVERLOAD_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "util/deadline.h"

namespace cloakdb {

/// What to do with a query that arrives while the service is overloaded.
enum class OverloadPolicy {
  kReject = 0,  ///< Fail fast with ResourceExhausted.
  kDegrade,     ///< Admit, but cap the shard fan-out at degrade_shard_budget.
};

/// Overload-protection knobs. All default to "off" so existing callers see
/// no behaviour change.
struct OverloadOptions {
  /// Per-query deadline applied at admission; 0 = no deadline.
  int64_t query_deadline_us = 0;

  /// Token-bucket rate limit on admitted queries; 0 = unlimited.
  double max_queries_per_s = 0.0;

  /// Token-bucket burst size; 0 = derived default (max(1, rate/10)).
  double burst = 0.0;

  /// Shed when aggregate update-queue depth reaches this fraction of
  /// aggregate capacity (also the per-shard update shed threshold);
  /// 0 = queue-depth shedding off.
  double shed_queue_fraction = 0.0;

  /// What happens to queries caught by the overload detector.
  OverloadPolicy policy = OverloadPolicy::kDegrade;

  /// Shard fan-out budget for degraded queries (>= 1).
  uint32_t degrade_shard_budget = 1;
};

/// The front-door verdict for one query.
enum class AdmissionDecision {
  kAdmit = 0,  ///< Run at full fan-out.
  kDegrade,    ///< Run with the degraded shard budget.
  kReject,     ///< Shed: do not run.
};

/// Thread-safe admission controller. One instance per service.
///
/// The token bucket is mutex-guarded: it is consulted once per query, never
/// per shard, so the lock is not on any hot inner loop.
class AdmissionController {
 public:
  AdmissionController(const OverloadOptions& options, size_t num_shards,
                      size_t queue_capacity_per_shard);

  const OverloadOptions& options() const { return options_; }

  /// Decides the fate of one query given the current aggregate update-queue
  /// depth across all shards.
  AdmissionDecision AdmitQuery(size_t aggregate_queue_depth);

  /// True when an update aimed at a shard whose queue currently holds
  /// `shard_queue_depth` entries should be shed instead of enqueued.
  bool ShouldShedUpdate(size_t shard_queue_depth) const;

  /// The deadline to stamp on a newly admitted query (Infinite when
  /// query_deadline_us == 0).
  Deadline QueryDeadline() const {
    return options_.query_deadline_us > 0
               ? Deadline::After(options_.query_deadline_us)
               : Deadline::Infinite();
  }

 private:
  /// Takes one token if available; refills from elapsed time first.
  bool TryTakeToken();

  OverloadOptions options_;
  size_t aggregate_capacity_;
  size_t per_shard_capacity_;

  std::mutex mu_;
  double tokens_;
  double burst_;
  std::chrono::steady_clock::time_point last_refill_;
};

}  // namespace cloakdb

#endif  // CLOAKDB_SERVICE_OVERLOAD_H_
