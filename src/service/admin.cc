#include "service/admin.h"

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace cloakdb {

namespace {

/// Appends `"key":"<u64 as string>"` — 64-bit ids do not round-trip
/// through double-typed JSON numbers, so they travel as strings.
void AppendU64String(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "\"%llu\"",
                static_cast<unsigned long long>(v));
  *out += buf;
}

void AppendHistogramDigest(std::string* out, const char* label,
                           const obs::HistogramSnapshot& snap) {
  *out += '"';
  obs::AppendJsonEscaped(out, label);
  *out += "\":{\"count\":";
  obs::AppendJsonNumber(out, static_cast<double>(snap.count));
  *out += ",\"p50\":";
  obs::AppendJsonNumber(out, snap.p50());
  *out += ",\"p95\":";
  obs::AppendJsonNumber(out, snap.p95());
  *out += ",\"p99\":";
  obs::AppendJsonNumber(out, snap.p99());
  *out += '}';
}

std::string SlowQueriesJson(const CloakDbService& db, uint32_t limit) {
  const ServiceStats stats = db.Stats();
  std::string out = "{\"slow_queries\":[";
  size_t emitted = 0;
  for (const obs::SlowQueryRecord& q : stats.slow_queries) {
    if (limit != 0 && emitted >= limit) break;
    if (emitted > 0) out += ',';
    ++emitted;
    out += "{\"kind\":\"";
    obs::AppendJsonEscaped(&out, q.kind);
    out += "\",\"latency_us\":";
    obs::AppendJsonNumber(&out, q.latency_us);
    out += ",\"region_area\":";
    obs::AppendJsonNumber(&out, q.region_area);
    out += ",\"shards_touched\":";
    obs::AppendJsonNumber(&out, q.shards_touched);
    out += ",\"candidates\":";
    obs::AppendJsonNumber(&out, static_cast<double>(q.candidates));
    out += ",\"trace_id\":";
    AppendU64String(&out, q.trace_id);
    out += ",\"status\":\"";
    obs::AppendJsonEscaped(&out, to_string(q.error));
    out += "\"}";
  }
  out += "]}";
  return out;
}

std::string RecentTracesJson(const CloakDbService& db) {
  const obs::Tracer* tracer = db.tracer();
  if (tracer == nullptr) return "{\"enabled\":false}";
  std::string out = "{\"enabled\":true,\"kept\":";
  obs::AppendJsonNumber(&out, static_cast<double>(tracer->kept_traces()));
  out += ",\"dropped\":";
  obs::AppendJsonNumber(&out, static_cast<double>(tracer->dropped_traces()));
  out += ",\"dropped_spans\":";
  obs::AppendJsonNumber(&out, static_cast<double>(tracer->dropped_spans()));
  out += ",\"violations_total\":";
  obs::AppendJsonNumber(&out,
                        static_cast<double>(tracer->audit_violations_total()));
  out += ",\"recent_violations\":[";
  bool first = true;
  for (const auto& v : tracer->RecentAuditViolations()) {
    if (!first) out += ',';
    first = false;
    out += "{\"trace_id\":";
    AppendU64String(&out, v.trace_id);
    out += ",\"pseudonym\":";
    AppendU64String(&out, v.pseudonym);
    out += ",\"requested_k\":";
    obs::AppendJsonNumber(&out, v.event.requested_k);
    out += ",\"achieved_k\":";
    obs::AppendJsonNumber(&out, v.event.achieved_k);
    out += ",\"area\":";
    obs::AppendJsonNumber(&out, v.event.area);
    out += ",\"k_satisfied\":";
    out += v.event.k_satisfied ? "true" : "false";
    out += ",\"center_risk\":";
    out += v.event.center_risk ? "true" : "false";
    out += ",\"boundary_risk\":";
    out += v.event.boundary_risk ? "true" : "false";
    out += '}';
  }
  out += "]}";
  return out;
}

std::string FlightRecorderJson(const CloakDbService& db, uint32_t limit) {
  const obs::FlightRecorder* recorder = db.flight_recorder();
  std::string out = "{\"events_total\":";
  obs::AppendJsonNumber(&out, static_cast<double>(recorder->events_total()));
  out += ",\"capacity\":";
  obs::AppendJsonNumber(&out, static_cast<double>(recorder->capacity()));
  out += ",\"events\":[";
  bool first = true;
  for (const obs::FlightEvent& event :
       db.flight_recorder()->Snapshot(limit)) {
    if (!first) out += ',';
    first = false;
    out += "{\"seq\":";
    AppendU64String(&out, event.seq);
    out += ",\"unix_us\":";
    AppendU64String(&out, static_cast<uint64_t>(event.unix_us));
    out += ",\"kind\":\"";
    obs::AppendJsonEscaped(&out, obs::FlightEventKindName(event.kind));
    out += "\",\"a\":";
    AppendU64String(&out, event.a);
    out += ",\"b\":";
    AppendU64String(&out, event.b);
    out += ",\"detail\":\"";
    obs::AppendJsonEscaped(&out, event.detail);
    out += "\"}";
  }
  out += "]}";
  return out;
}

/// The windowed-metrics document: the oldest retained snapshot's absolute
/// counter values ("base_counters") plus one entry per consecutive
/// snapshot pair carrying exact counter deltas and interval histogram
/// digests. base + sum(deltas) reconstructs the newest snapshot's lifetime
/// counters exactly; zero deltas are omitted (absent means 0).
std::string MetricsWindowJson(const CloakDbService& db, uint32_t limit) {
  const auto snapshots = db.metrics().WindowSnapshots();
  std::string out = "{\"snapshots\":";
  obs::AppendJsonNumber(&out, static_cast<double>(snapshots.size()));
  if (snapshots.empty()) {
    out += ",\"intervals\":[]}";
    return out;
  }
  // Keep the newest `limit` intervals; the base moves up accordingly so
  // the reconstruction invariant holds for any limit.
  size_t first_interval = 1;
  if (limit != 0 && snapshots.size() > static_cast<size_t>(limit) + 1)
    first_interval = snapshots.size() - limit;
  const obs::RegistrySnapshot& base = *snapshots[first_interval - 1];
  out += ",\"base_unix_us\":";
  AppendU64String(&out, static_cast<uint64_t>(base.unix_us));
  out += ",\"base_counters\":{";
  bool first = true;
  for (const auto& [name, value] : base.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    obs::AppendJsonEscaped(&out, name);
    out += "\":";
    AppendU64String(&out, value);
  }
  out += "},\"intervals\":[";
  for (size_t i = first_interval; i < snapshots.size(); ++i) {
    const obs::RegistrySnapshot& older = *snapshots[i - 1];
    const obs::RegistrySnapshot& newer = *snapshots[i];
    if (i > first_interval) out += ',';
    out += "{\"unix_us\":";
    AppendU64String(&out, static_cast<uint64_t>(newer.unix_us));
    out += ",\"interval_us\":";
    AppendU64String(&out, static_cast<uint64_t>(
                              newer.unix_us > older.unix_us
                                  ? newer.unix_us - older.unix_us
                                  : 0));
    out += ",\"counters\":{";
    bool first_counter = true;
    for (const auto& [name, value] : newer.counters) {
      auto it = older.counters.find(name);
      const uint64_t before = it == older.counters.end() ? 0 : it->second;
      if (value <= before) continue;  // zero delta omitted
      if (!first_counter) out += ',';
      first_counter = false;
      out += '"';
      obs::AppendJsonEscaped(&out, name);
      out += "\":";
      AppendU64String(&out, value - before);
    }
    out += "},\"histograms\":{";
    bool first_hist = true;
    for (const auto& [name, snap] : newer.histograms) {
      auto it = older.histograms.find(name);
      const obs::HistogramSnapshot delta =
          it == older.histograms.end()
              ? snap
              : obs::HistogramDelta(snap, it->second);
      if (delta.count == 0) continue;
      if (!first_hist) out += ',';
      first_hist = false;
      AppendHistogramDigest(&out, name.c_str(), delta);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace

std::string BuildStatusJson(const CloakDbService& db, size_t tick,
                            size_t ticks) {
  const auto stats = db.Stats();
  const auto& metrics = db.metrics();
  std::string out = "{\"tick\":";
  obs::AppendJsonNumber(&out, static_cast<double>(tick));
  out += ",\"ticks_total\":";
  obs::AppendJsonNumber(&out, static_cast<double>(ticks));
  out += ",\"version\":\"";
  obs::AppendJsonEscaped(&out, stats.version);
  out += "\",\"durability\":\"";
  obs::AppendJsonEscaped(&out, stats.durability_mode);
  out += "\",\"data_dir\":\"";
  obs::AppendJsonEscaped(&out, stats.data_dir);
  out += "\",\"uptime_us\":";
  obs::AppendJsonNumber(&out, static_cast<double>(stats.uptime_us));
  out += ",\"snapshot_unix_us\":";
  obs::AppendJsonNumber(&out, static_cast<double>(stats.snapshot_unix_us));
  out += ",\"num_shards\":";
  obs::AppendJsonNumber(&out, stats.num_shards);
  out += ",\"users\":";
  obs::AppendJsonNumber(&out, static_cast<double>(stats.num_users));
  out += ",\"queue_depth\":";
  obs::AppendJsonNumber(&out, static_cast<double>(stats.queue_depth));
  out += ",\"updates_applied\":";
  obs::AppendJsonNumber(&out,
                        static_cast<double>(stats.ingest.updates_applied));
  out += ",\"updates_rejected\":";
  obs::AppendJsonNumber(&out,
                        static_cast<double>(stats.ingest.updates_rejected));

  out += ",\"stages\":{";
  bool first = true;
  for (const char* name :
       {"query.private_range.latency_us", "query.private_nn.latency_us",
        "query.private_knn.latency_us", "ingest.queue_wait_us",
        "ingest.cloak_us"}) {
    if (!first) out += ',';
    first = false;
    AppendHistogramDigest(&out, name, metrics.SnapshotHistogram(name));
  }
  out += '}';

  const double hits =
      static_cast<double>(metrics.CounterValue("cache.hits_total"));
  const double misses =
      static_cast<double>(metrics.CounterValue("cache.misses_total"));
  out += ",\"cache\":{\"hits\":";
  obs::AppendJsonNumber(&out, hits);
  out += ",\"misses\":";
  obs::AppendJsonNumber(&out, misses);
  out += ",\"hit_rate\":";
  obs::AppendJsonNumber(&out,
                        hits + misses > 0.0 ? hits / (hits + misses) : 0.0);
  out += '}';

  out += ",\"robustness\":{\"shed\":";
  obs::AppendJsonNumber(
      &out, static_cast<double>(stats.robustness.queries_shed));
  out += ",\"admitted_degraded\":";
  obs::AppendJsonNumber(
      &out, static_cast<double>(stats.robustness.queries_admitted_degraded));
  out += ",\"degraded\":";
  obs::AppendJsonNumber(
      &out, static_cast<double>(stats.robustness.queries_degraded));
  out += ",\"deadline_hits\":";
  obs::AppendJsonNumber(
      &out, static_cast<double>(stats.robustness.deadline_hits));
  out += ",\"updates_shed\":";
  obs::AppendJsonNumber(
      &out, static_cast<double>(stats.robustness.updates_shed));
  out += '}';

  out += ",\"recorder\":{\"events_total\":";
  obs::AppendJsonNumber(
      &out, static_cast<double>(db.flight_recorder()->events_total()));
  out += '}';

  if (const obs::Tracer* tracer = db.tracer(); tracer != nullptr) {
    out += ",\"trace\":{\"kept\":";
    obs::AppendJsonNumber(&out, static_cast<double>(tracer->kept_traces()));
    out += ",\"dropped\":";
    obs::AppendJsonNumber(&out,
                          static_cast<double>(tracer->dropped_traces()));
    out += ",\"dropped_spans\":";
    obs::AppendJsonNumber(&out, static_cast<double>(tracer->dropped_spans()));
    out += ",\"violations_total\":";
    obs::AppendJsonNumber(
        &out, static_cast<double>(tracer->audit_violations_total()));
    out += '}';
    out += ",\"recent_violations\":[";
    bool first_violation = true;
    for (const auto& v : tracer->RecentAuditViolations()) {
      if (!first_violation) out += ',';
      first_violation = false;
      // Ids are emitted as strings: 64-bit values do not round-trip
      // through double-typed JSON numbers.
      out += "{\"trace_id\":";
      AppendU64String(&out, v.trace_id);
      out += ",\"pseudonym\":";
      AppendU64String(&out, v.pseudonym);
      out += ",\"requested_k\":";
      obs::AppendJsonNumber(&out, v.event.requested_k);
      out += ",\"achieved_k\":";
      obs::AppendJsonNumber(&out, v.event.achieved_k);
      out += ",\"area\":";
      obs::AppendJsonNumber(&out, v.event.area);
      out += ",\"k_satisfied\":";
      out += v.event.k_satisfied ? "true" : "false";
      out += ",\"center_risk\":";
      out += v.event.center_risk ? "true" : "false";
      out += ",\"boundary_risk\":";
      out += v.event.boundary_risk ? "true" : "false";
      out += '}';
    }
    out += ']';
  }
  out += "}\n";
  return out;
}

Result<std::string> HandleAdminCommand(const CloakDbService& db,
                                       net::AdminCommand command,
                                       uint32_t limit) {
  switch (command) {
    case net::AdminCommand::kMetricsSnapshot:
      return db.metrics().ExportJson();
    case net::AdminCommand::kMetricsWindow:
      return MetricsWindowJson(db, limit);
    case net::AdminCommand::kStatus:
      return BuildStatusJson(db, 0, 0);
    case net::AdminCommand::kSlowQueries:
      return SlowQueriesJson(db, limit);
    case net::AdminCommand::kRecentTraces:
      return RecentTracesJson(db);
    case net::AdminCommand::kFlightRecorder:
      return FlightRecorderJson(db, limit);
  }
  return Status::InvalidArgument("unknown admin command");
}

}  // namespace cloakdb
