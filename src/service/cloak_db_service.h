// CloakDbService: the sharded, multi-threaded front door of CloakDB.
//
// The paper's Fig. 1 pipeline (users -> Location Anonymizer -> privacy-
// aware server) as one concurrent system. The service owns N shards, each
// pairing an Anonymizer with a QueryProcessor:
//
//   - users are hash-routed to shards by id, so every shard anonymizes an
//     independent slice of the population (k-anonymity is enforced within
//     the slice — shard count trades throughput against crowd size, the
//     same knob as running N independent Casper instances);
//   - public objects are partitioned across shards by vertical stripes of
//     the space; private-over-public queries fan out to the overlapping
//     stripes and fan the partial candidate lists back in with the merge
//     helpers of server/query_processor.h;
//   - public-over-private queries (count, heatmap) fan out to every shard
//     (users are hash-scattered) and merge exactly.
//
// Updates stream through bounded per-shard MPMC queues (backpressure on
// the producers) and a fixed worker pool drains them in batches through
// Anonymizer::UpdateLocationsBatch, so the paper's shared-execution
// optimization finally pays off under sustained load.

#ifndef CLOAKDB_SERVICE_CLOAK_DB_SERVICE_H_
#define CLOAKDB_SERVICE_CLOAK_DB_SERVICE_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "service/api.h"
#include "service/continuous_registry.h"
#include "service/fault_injector.h"
#include "service/overload.h"
#include "service/query_batcher.h"
#include "service/shard.h"
#include "util/deadline.h"

namespace cloakdb {

/// Service configuration.
struct CloakDbServiceOptions {
  /// The managed space (also every shard's anonymizer space).
  Rect space{0.0, 0.0, 1.0, 1.0};

  /// Number of anonymizer/server shards (>= 1).
  uint32_t num_shards = 4;

  /// Drain workers; 0 means one worker per shard.
  uint32_t worker_threads = 0;

  /// Per-shard bound of the pending-update queue (backpressure beyond).
  size_t queue_capacity = 4096;

  /// Maximum updates drained into one UpdateLocationsBatch call.
  size_t max_batch = 256;

  /// Template for every shard's anonymizer; `space` above overrides the
  /// embedded space and the pseudonym seed is perturbed per shard so
  /// pseudonyms stay unique across the service.
  AnonymizerOptions anonymizer;

  /// Private-region index granularity of each shard's server.
  uint32_t rect_grid_cells = 64;

  /// Wire-cost model applied by every shard's server.
  WireCostModel wire_cost;

  /// Retained slowest queries (kind, latency, region area, fan-out width,
  /// candidate count), surfaced via Stats().slow_queries; 0 disables.
  size_t slow_query_log_capacity = 16;

  // --- Shared execution --------------------------------------------------

  /// Turns on the shared-execution engine: private queries are snapped to
  /// the signature grid, served from each shard's candidate cache, and —
  /// through ExecuteQueryBatch or the batch window — clustered so
  /// overlapping queries share one widened index probe. Off by default:
  /// every query is planned and probed in isolation, exactly as before.
  bool enable_shared_execution = false;

  /// Total candidate-cache entries across the service (split evenly over
  /// the shards, at least one per shard); 0 disables caching while keeping
  /// batch clustering. Only meaningful with enable_shared_execution.
  size_t cache_capacity = 4096;

  /// Signature-grid resolution per side (>= 1) used to snap cloaked
  /// regions to cache keys and to cluster batched queries. Coarser grids
  /// share more but probe wider.
  uint32_t signature_grid_cells = 32;

  /// How long (microseconds) a query submitted through PrivateRange/Nn/Knn
  /// waits to be batched with concurrent submissions; 0 executes each
  /// query immediately (ExecuteQueryBatch still clusters explicit
  /// batches). Only meaningful with enable_shared_execution.
  uint32_t batch_window_us = 0;

  /// Queries that release a batch window early once collected (>= 1).
  size_t max_batch_width = 64;

  // --- Tracing -----------------------------------------------------------

  /// End-to-end tracing (span trees + privacy-audit events). With
  /// trace.enabled off (the default) no Tracer is created and every span
  /// site in the request path is inert.
  obs::TraceOptions trace;

  // --- Robustness ---------------------------------------------------------

  /// Deadlines, token-bucket admission, and queue-depth load shedding. All
  /// fields default to "off"; with everything off no admission controller
  /// is created and the query path is unchanged.
  OverloadOptions overload;

  /// Deterministic seeded fault injection (chaos testing): probe failures,
  /// probe latency spikes, drain stalls. Inert unless
  /// fault_injection.enabled.
  FaultInjectorOptions fault_injection;

  // --- Continuous queries --------------------------------------------------

  /// Standing-query subsystem knobs (slack margin, coverage-grid
  /// resolution, and the force_full_reeval testing twin).
  ContinuousRegistryOptions continuous;

  // --- Public index --------------------------------------------------------

  /// Which structure serves each category's public POIs on every shard
  /// stripe (index/public_index.h). kStatic (the default) seals bulk
  /// loads into a packed StaticRTree and spills post-seal writes into a
  /// small dynamic overlay merged at query time; kDynamic keeps the
  /// pre-sealing quadratic-split R-tree everywhere (the oracle the twin
  /// tests compare against).
  PublicIndexMode public_index = PublicIndexMode::kStatic;

  /// Per-category overlay + tombstone count that triggers an inline
  /// compaction back into the sealed tree.
  size_t static_index_compact_limit = 1024;

  /// Testing: force the sealed-tree sidecar open to take the MmapFile
  /// read() fallback instead of mmap.
  bool index_mmap_read_fallback = false;

  // --- Durability ----------------------------------------------------------

  /// kOff (default): the historical in-memory service, no files touched.
  /// kAsync/kFsync: every durable mutation is WAL-logged per shard before
  /// its in-memory apply, with periodic checkpoints; Start() recovers the
  /// pre-crash state from <data_dir> before any worker runs.
  storage::DurabilityMode durability_mode = storage::DurabilityMode::kOff;

  /// Root of the on-disk state, one subdirectory per shard
  /// (<data_dir>/shard-<i>/). Required when durability_mode != kOff. The
  /// shard count must match the directory's previous run: users are
  /// hash-routed by num_shards, so reopening with a different count would
  /// replay records into the wrong shards.
  std::string data_dir;

  /// WAL records per shard between automatic checkpoints (the owning
  /// worker checkpoints a shard once its WAL passes this); 0 disables the
  /// trigger — only explicit Checkpoint() calls truncate the WAL.
  uint64_t checkpoint_interval = 4096;
};

/// What Start() recovered from disk (all zeros when durability is off or
/// the data directory was fresh).
struct RecoveryInfo {
  bool performed = false;  ///< Durability was on and recovery ran.
  uint64_t checkpoints_loaded = 0;
  uint64_t replayed_records = 0;   ///< WAL records re-applied.
  uint64_t skipped_records = 0;    ///< Stale records a checkpoint covered.
  uint64_t static_indexes_adopted = 0;  ///< Sealed trees mmap-adopted.
  uint64_t static_indexes_rebuilt = 0;  ///< Sidecar failures STR-rebuilt.
  uint64_t truncated_records = 0;  ///< Torn/corrupt records dropped.
  uint64_t cq_reregistered = 0;    ///< Standing queries re-registered.
  std::vector<uint64_t> shard_last_lsn;  ///< Per-shard recovered LSN.
};

/// The sharded CloakDB facade. All public methods are thread-safe.
class CloakDbService {
 public:
  /// Validates the options (non-empty space, >= 1 shard, non-zero queue
  /// capacity and batch size).
  static Result<std::unique_ptr<CloakDbService>> Create(
      const CloakDbServiceOptions& options);

  /// Stops the worker pool; queued updates are drained first.
  ~CloakDbService();

  CloakDbService(const CloakDbService&) = delete;
  CloakDbService& operator=(const CloakDbService&) = delete;

  // --- User management ---------------------------------------------------
  Status RegisterUser(UserId user, PrivacyProfile profile);
  Status UpdateProfile(UserId user, PrivacyProfile profile);
  Status UnregisterUser(UserId user);
  Result<ObjectId> PseudonymOf(UserId user) const;

  // --- Public data -------------------------------------------------------
  /// Routes the object to the shard owning its stripe.
  Status AddPublicObject(const PublicObject& object);
  /// Partitions `objects` by stripe and bulk-loads every shard (replacing
  /// the category service-wide).
  Status BulkLoadCategory(Category category,
                          std::vector<PublicObject> objects);

  // --- Location updates --------------------------------------------------
  /// Enqueues one exact location report; blocks while the owning shard's
  /// queue is full (backpressure). The update is anonymized and forwarded
  /// to the shard's server by the worker pool.
  Status EnqueueUpdate(UserId user, const Point& location, TimeOfDay now);

  /// Non-blocking EnqueueUpdate: ResourceExhausted when the queue is full
  /// (caller sheds load or retries).
  Status TryEnqueueUpdate(UserId user, const Point& location, TimeOfDay now);

  /// Synchronous update path: anonymize + forward immediately, bypassing
  /// the queue. Returns the cloaked update like Anonymizer::UpdateLocation.
  Result<CloakedUpdate> UpdateLocation(UserId user, const Point& location,
                                       TimeOfDay now);

  /// Cloaks the user's current location for an outgoing query.
  Result<CloakedUpdate> CloakForQuery(UserId user, TimeOfDay now);

  /// Blocks until every queued update has been applied (drains in the
  /// calling thread too, so it works with a busy or small worker pool).
  Status Flush();

  // --- Queries (fan-out + merge) -----------------------------------------
  // Overload behaviour (options().overload): a query caught by the
  // admission controller is either rejected with ErrorCode::kShed
  // (OverloadPolicy::kReject) or admitted with a capped shard budget
  // (kDegrade). When a deadline, budget, or shard failure cuts a fan-out
  // short, the merged result carries degraded=true and a covered_shards
  // bitmap: it is still a correct candidate superset restricted to the
  // covered shards — never a silently wrong exact answer. A query that
  // could not produce any part fails with kDeadlineExceeded (deadline),
  // kDegradedZeroCoverage (no shard covered), or the first shard error.

  /// The unified entry point: executes one envelope query of any kind —
  /// root trace, admission control, fan-out, merge — and returns the
  /// envelope response with errors in-band (never throws, never blocks on
  /// an overloaded service beyond the admission verdict). The per-kind
  /// methods below are thin wrappers over this, and the wire server calls
  /// it directly, so in-process and network queries take the same path.
  /// `request.deadline_us` can only tighten the admission deadline.
  QueryResponse ExecuteQuery(const QueryRequest& request) const;

  /// Private range query over public data; fans out to the stripes
  /// overlapping the radius-extended region. The merged result equals the
  /// single-shard oracle's.
  Result<PrivateRangeResult> PrivateRange(
      const Rect& cloaked, double radius, Category category,
      const PrivateRangeOptions& opts = {}) const;

  /// Private NN query over public data (all stripes; answer-preserving
  /// merge).
  Result<PrivateNnResult> PrivateNn(const Rect& cloaked,
                                    Category category) const;

  /// Private k-NN query over public data (all stripes; answer-preserving
  /// merge).
  Result<PrivateKnnResult> PrivateKnn(const Rect& cloaked, size_t k,
                                      Category category) const;

  /// Executes a batch of private queries with shared execution: the batch
  /// is clustered by cloaked-region overlap and every cluster shares one
  /// widened probe per shard, with each member's candidate list refined
  /// per query (results are identical to issuing the queries one by one).
  /// With enable_shared_execution off, the queries run isolated — same
  /// API, no sharing — which is what makes on/off differential testing a
  /// one-flag change. Returns one result per query, in order.
  std::vector<BatchQueryResult> ExecuteQueryBatch(
      const std::vector<BatchQuery>& queries) const;

  /// Public count over private data (every shard; exact merge).
  Result<PublicCountResult> PublicCount(const Rect& window) const;

  /// Expected-density heatmap over private data (every shard; exact merge).
  Result<HeatmapResult> Heatmap(uint32_t resolution) const;

  // --- Continuous queries ------------------------------------------------
  // Standing queries registered once and kept current by the update
  // drains: each applied cloaked update consults the home registry's
  // coverage grid so only the standing queries the update can affect
  // re-filter (delta notification); a query whose cached coverage no
  // longer bounds the answer is repaired by an asynchronous full
  // re-evaluation sweep (Flush() waits for it). Registration runs through
  // the same admission + deadline + trace path as one-shot queries.

  /// Registers a standing private range query for `user` (who must have a
  /// current cloaked region, i.e. have reported at least once).
  Result<ContinuousQueryId> RegisterContinuousRange(UserId user,
                                                    double radius,
                                                    Category category);
  /// Registers a standing private NN query for `user`.
  Result<ContinuousQueryId> RegisterContinuousNn(UserId user,
                                                 Category category);
  /// Registers a standing private k-NN query for `user`.
  Result<ContinuousQueryId> RegisterContinuousKnn(UserId user, size_t k,
                                                  Category category);
  /// Registers a standing public count window (maintained on every shard;
  /// the window must intersect the service space).
  Result<ContinuousQueryId> RegisterContinuousCount(const Rect& window);

  /// The current answer of any standing query. Private kinds carry the
  /// one-shot candidate-list guarantee; counts merge per-shard
  /// contributions sorted by pseudonym, bit-identical to a one-shot count
  /// over the same applied updates.
  Result<StandingAnswer> AnswerContinuous(ContinuousQueryId id) const;

  /// Introspection of one standing query (region, coverage, staleness).
  Result<ContinuousQueryInfo> ContinuousInfo(ContinuousQueryId id) const;

  /// Drops a standing query.
  Status UnregisterContinuous(ContinuousQueryId id);

  /// Standing queries currently registered service-wide.
  size_t NumContinuousQueries() const;

  /// Repairs stale standing queries with full re-evaluations; returns the
  /// number repaired. Called by idle workers and Flush(); exposed for
  /// deterministic tests.
  size_t SweepContinuousStale();

  // --- Durability ----------------------------------------------------------

  /// Checkpoints every shard now (snapshot + WAL truncate); no-op with
  /// durability off. Queries proceed concurrently; each shard's appends
  /// pause for its snapshot export.
  Status Checkpoint();

  /// Flushes every shard's WAL to disk (the kAsync close-time barrier);
  /// no-op with durability off.
  Status SyncWal();

  /// What recovery replayed at Start().
  const RecoveryInfo& recovery_info() const { return recovery_info_; }

  // --- Introspection -----------------------------------------------------
  /// Cross-shard aggregate counters, including the slow-query log.
  ServiceStats Stats() const;
  /// The service's metric registry (latency/queue-wait histograms, wire
  /// counters, ...). Safe to export concurrently with traffic.
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  /// The service's tracer; null when options().trace.enabled is off. Use
  /// tracer()->TakeCompletedSpans() + obs::ExportChromeTrace to export.
  obs::Tracer* tracer() const { return tracer_.get(); }
  /// The fault injector; null unless options().fault_injection.enabled.
  /// Chaos tests reconcile its exact counts against metrics and results.
  FaultInjector* fault_injector() const { return fault_injector_.get(); }
  /// The service's flight recorder: a bounded ring of notable events
  /// (sheds, degraded answers, audit violations, WAL sync stalls, injected
  /// faults). Always present; retrievable over the admin channel and
  /// dumped on fatal signals via obs::InstallFatalSignalDump.
  obs::FlightRecorder* flight_recorder() const { return &flight_recorder_; }
  /// Total updates currently waiting across all shard queues (the lock-free
  /// admission-control signal; momentarily stale by design).
  size_t AggregateQueueDepth() const;
  /// Per-shard counters, for imbalance diagnosis.
  std::vector<ShardStats> PerShardStats() const;
  void ResetStats() = delete;  // per-shard stats are monotonic by design

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  /// Hash route of a user id (exposed for tests and routing diagnostics).
  uint32_t ShardOfUser(UserId user) const;
  /// Stripe owning x-coordinate `x`.
  uint32_t ShardOfX(double x) const;
  /// Direct access to one shard (e.g. for per-shard diagnostics or the
  /// queries without a fan-in merge, like PublicNn).
  Shard& shard(uint32_t index) { return *shards_[index]; }
  const Shard& shard(uint32_t index) const { return *shards_[index]; }

  const CloakDbServiceOptions& options() const { return options_; }

 private:
  /// Metric handles of one query kind, resolved once in Start() so the
  /// query paths record through raw pointers.
  struct QueryKindObs {
    obs::ShardedHistogram* latency_us = nullptr;  ///< End-to-end wall time.
    obs::ShardedHistogram* merge_us = nullptr;    ///< Fan-in merge time.
    obs::ShardedHistogram* shards_touched = nullptr;
    obs::ShardedHistogram* candidates = nullptr;  ///< Result-list size.
    obs::Counter* wire_bytes = nullptr;  ///< Modeled client payload bytes.
  };

  /// Robustness metric handles, resolved once in Start().
  struct RobustnessObs {
    obs::Counter* queries_shed = nullptr;
    obs::Counter* queries_admitted_degraded = nullptr;
    obs::Counter* queries_degraded = nullptr;
    obs::Counter* deadline_hits = nullptr;
    obs::Counter* updates_shed = nullptr;
    obs::Counter* probe_failures = nullptr;
    obs::Counter* probe_delays = nullptr;
    obs::Counter* queue_stalls = nullptr;
  };

  /// The front-door verdict plus the per-query limits it stamped.
  struct Admission {
    Status status = Status::OK();  ///< ResourceExhausted when shed.
    Deadline deadline;
    uint32_t shard_budget = 0;  ///< 0 = unlimited.
    bool degraded_admission = false;
  };

  /// Tracks one fan-out's degradation state: which shards are covered, why
  /// coverage was lost, and the first hard error seen.
  struct FanoutGuard;

  explicit CloakDbService(const CloakDbServiceOptions& options);

  Status Start();
  void WorkerLoop(uint32_t worker);

  /// Restores checkpoints, replays WAL records, and re-registers standing
  /// queries across all shards. Runs in Start() after the shards exist and
  /// before any worker spawns, so no lock ordering or concurrency applies.
  Status RecoverFromDisk();

  /// Runs admission control for one query (counts shed/degraded decisions
  /// and stamps the deadline). No-op admit when no controller is active.
  Admission AdmitQuery() const;

  /// Consults the fault injector for one probe. Returns the fault decision
  /// after applying a delay fault in place (sleep + counters + span attr).
  ProbeFault InjectProbeFault(obs::TraceSpan* probe_span) const;

  /// Fan-out bodies shared by the isolated, cached and batched paths.
  /// `cached` routes the per-shard call through the candidate cache;
  /// `cover` is the cluster probe base (empty for single queries);
  /// `deadline` and `shard_budget` are the admission limits (infinite / 0
  /// for unconstrained queries).
  Result<PrivateRangeResult> PrivateRangeImpl(
      const Rect& cloaked, double radius, Category category,
      const PrivateRangeOptions& opts, bool cached, const Rect& cover,
      Deadline deadline, uint32_t shard_budget) const;
  Result<PrivateNnResult> PrivateNnImpl(const Rect& cloaked,
                                        Category category, bool cached,
                                        const Rect& cover, Deadline deadline,
                                        uint32_t shard_budget) const;
  Result<PrivateKnnResult> PrivateKnnImpl(const Rect& cloaked, size_t k,
                                          Category category, bool cached,
                                          const Rect& cover, Deadline deadline,
                                          uint32_t shard_budget) const;
  Result<PublicCountResult> PublicCountImpl(const Rect& window,
                                            Deadline deadline,
                                            uint32_t shard_budget) const;
  Result<HeatmapResult> HeatmapImpl(uint32_t resolution, Deadline deadline,
                                    uint32_t shard_budget) const;

  /// Dispatches one batch member to the matching Impl.
  BatchQueryResult ExecuteOne(const BatchQuery& query, bool cached,
                              const Rect& cover) const;
  /// Clusters + executes a batch (the executor behind ExecuteQueryBatch
  /// and the batch window).
  std::vector<BatchQueryResult> ExecuteBatch(
      const std::vector<BatchQuery>& queries) const;

  /// [first, last] stripe range overlapping `region` in x.
  std::pair<uint32_t, uint32_t> StripeRangeOf(const Rect& region) const;

  /// Lower bound on MinDist(o, region) for any object held by `stripe`
  /// (x-distance from the region to the stripe's interval). Lets NN / k-NN
  /// fan-out skip stripes that cannot beat the home-stripe dominance bound.
  double StripeMinDist(uint32_t stripe, const Rect& region) const;

  /// Closes the bookkeeping of one successful query: fan-out width and
  /// candidate histograms, wire counter, slow-query admission.
  void RecordQuery(const QueryKindObs& obs, const char* kind,
                   double latency_us, double region_area,
                   uint32_t shards_touched, uint64_t candidates,
                   uint64_t wire_bytes) const;

  /// Route of one standing query: its kind plus the home shard (counts are
  /// registered on every shard; the stored index is unused for them).
  struct CqRoute {
    QueryKind kind = QueryKind::kPrivateRange;
    uint32_t shard = 0;
  };

  /// Shared body of the private-kind registrations: admission, home-shard
  /// region lookup, full evaluation, raced-registration repair.
  Result<ContinuousQueryId> RegisterContinuousImpl(const ContinuousSpec& spec);

  /// Full standing evaluation: derives the conservative coverage for
  /// `spec` around `region`, probes the overlapping stripes, and computes
  /// the answer from the merged fetch (degraded/covered semantics like the
  /// one-shot fan-outs).
  Result<StandingSnapshot> EvaluateStanding(const ContinuousSpec& spec,
                                            const Rect& region,
                                            Deadline deadline,
                                            uint32_t shard_budget) const;

  /// Repairs up to `max` stale standing queries homed on `shard`.
  size_t SweepShardContinuous(uint32_t shard, size_t max);

  CloakDbServiceOptions options_;
  uint32_t worker_count_ = 0;
  /// Steady-clock birth of the service; anchors ServiceStats::uptime_us.
  std::chrono::steady_clock::time_point start_time_;
  /// Declared before shards_ so the metric handles the shards record into
  /// outlive them (members destroy in reverse order).
  obs::MetricsRegistry metrics_;
  /// Declared right after metrics_ (and before everything that records
  /// into it): the tracer, fault injector, durability engines and net
  /// server all hold a raw pointer. Mutable because recording events is
  /// not a logical mutation of the service.
  mutable obs::FlightRecorder flight_recorder_;
  /// Declared before shards_ for the same reason: shards hold a raw
  /// pointer and record cloak-audit spans into it from the worker pool.
  std::unique_ptr<obs::Tracer> tracer_;
  mutable obs::SlowQueryLog slow_log_;
  QueryKindObs range_obs_;
  QueryKindObs nn_obs_;
  QueryKindObs knn_obs_;
  QueryKindObs count_obs_;
  QueryKindObs heatmap_obs_;
  /// Shared-execution instrumentation (batch width / cluster fan-in).
  obs::ShardedHistogram* shared_batch_width_ = nullptr;
  obs::ShardedHistogram* shared_cluster_fanin_ = nullptr;
  RobustnessObs robustness_obs_;
  /// Continuous-query metric handles, shared with every shard registry.
  ContinuousObs cq_obs_;
  /// Static public-index + sidecar lifecycle counters, shared by every
  /// shard's PublicCategoryIndex instances.
  StaticIndexObs static_index_obs_;
  IndexSidecarObs sidecar_obs_;
  /// Directory of standing queries: id -> kind + home shard. Guarded by
  /// cq_mu_; lookups are O(1) and the critical sections tiny.
  mutable std::mutex cq_mu_;
  std::unordered_map<ContinuousQueryId, CqRoute> cq_routes_;
  std::atomic<ContinuousQueryId> next_cq_id_{1};
  /// Non-null only when any overload option is active.
  std::unique_ptr<AdmissionController> admission_;
  /// Non-null only when fault_injection.enabled; shards share this pointer.
  std::unique_ptr<FaultInjector> fault_injector_;
  /// Per-shard durability engines (empty with durability off). Declared
  /// before shards_: each shard holds a raw pointer into this vector.
  std::vector<std::unique_ptr<storage::ShardDurability>> durability_;
  RecoveryInfo recovery_info_;
  /// Snaps cloaked regions for batch clustering (mirrors every shard's).
  CellSignature signature_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Collects concurrent query submissions into shared batches; non-null
  /// only with enable_shared_execution and a positive batch window.
  std::unique_ptr<QueryBatcher> batcher_;
  /// Interior stripe boundaries (num_shards - 1 ascending x values).
  std::vector<double> stripe_bounds_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
};

}  // namespace cloakdb

#endif  // CLOAKDB_SERVICE_CLOAK_DB_SERVICE_H_
