// Aggregated self-instrumentation of the sharded CloakDB service.
//
// Every shard keeps its own AnonymizerStats / ServerStats plus ingestion
// counters; ServiceStats is the cross-shard reduction handed to operators
// (the per-shard partials stay available for imbalance diagnosis).

#ifndef CLOAKDB_SERVICE_SERVICE_STATS_H_
#define CLOAKDB_SERVICE_SERVICE_STATS_H_

#include <string>
#include <vector>

#include "core/anonymizer.h"
#include "obs/slow_query_log.h"
#include "server/query_processor.h"
#include "util/stats.h"

namespace cloakdb {

/// Folds `from` into `into` — the anonymizer-side reduction.
void MergeAnonymizerStats(AnonymizerStats* into, const AnonymizerStats& from);

/// Per-shard ingestion counters maintained by the drain loop.
struct ShardIngestStats {
  uint64_t updates_enqueued = 0;   ///< Accepted into the shard queue.
  uint64_t updates_applied = 0;    ///< Cloaked and forwarded to the server.
  uint64_t updates_rejected = 0;   ///< Dropped (invalid user / location).
  uint64_t batches_drained = 0;    ///< UpdateLocationsBatch invocations.
  uint64_t pseudonym_rotations = 0; ///< Retired pseudonyms forwarded.
  RunningStats batch_size;         ///< Updates per drained batch.
};

void MergeIngestStats(ShardIngestStats* into, const ShardIngestStats& from);

/// One shard's full counter snapshot.
struct ShardStats {
  uint32_t shard = 0;
  AnonymizerStats anonymizer;
  ServerStats server;
  ShardIngestStats ingest;
  size_t queue_depth = 0;   ///< Updates waiting in the shard queue.
  size_t num_users = 0;     ///< Users routed to this shard.
};

/// Overload-protection and fault-injection counters. Service-level (the
/// admission controller and fault injector are shared across shards), so
/// these are copied into ServiceStats rather than aggregated.
struct RobustnessStats {
  uint64_t queries_shed = 0;      ///< Rejected at admission (ResourceExhausted).
  uint64_t queries_admitted_degraded = 0;  ///< Admitted with a capped budget.
  uint64_t queries_degraded = 0;  ///< Returned with the degraded flag set.
  uint64_t deadline_hits = 0;     ///< Queries whose deadline tripped mid-flight.
  uint64_t updates_shed = 0;      ///< Updates shed by queue-depth admission.
  uint64_t injected_probe_failures = 0;  ///< Chaos: probes failed by injection.
  uint64_t injected_probe_delays = 0;    ///< Chaos: probes delayed by injection.
  uint64_t injected_queue_stalls = 0;    ///< Chaos: drain batches stalled.
};

/// The service-wide aggregate of all shards.
struct ServiceStats {
  /// Binary identity ("cloakdb/<version> (<compiler>)"), so a remote
  /// telemetry reader can correlate a snapshot with a build.
  std::string version;
  /// Durability identity: mode name ("off"/"async"/"fsync") and the data
  /// directory backing the store (empty when durability is off).
  std::string durability_mode;
  std::string data_dir;
  uint32_t num_shards = 0;
  uint32_t worker_threads = 0;
  /// Monotonic microseconds since the service started (steady clock), so
  /// two snapshots always yield a well-defined rate denominator.
  uint64_t uptime_us = 0;
  /// Wall-clock time of this snapshot (microseconds since the Unix epoch);
  /// labels the snapshot for dashboards and artifacts.
  int64_t snapshot_unix_us = 0;
  AnonymizerStats anonymizer;  ///< Sum over shards.
  ServerStats server;          ///< Sum over shards.
  ShardIngestStats ingest;     ///< Sum over shards.
  size_t queue_depth = 0;      ///< Total updates currently queued.
  size_t num_users = 0;        ///< Total registered users.
  RobustnessStats robustness;  ///< Overload + chaos counters.
  /// The slowest queries seen so far, slowest first (empty when the
  /// service's slow-query log is disabled).
  std::vector<obs::SlowQueryRecord> slow_queries;

  /// Multi-line human-readable summary for logs and CLI output.
  std::string ToString() const;
};

/// Reduces per-shard snapshots into the service-wide aggregate.
ServiceStats AggregateShardStats(const std::vector<ShardStats>& shards,
                                 uint32_t worker_threads);

}  // namespace cloakdb

#endif  // CLOAKDB_SERVICE_SERVICE_STATS_H_
