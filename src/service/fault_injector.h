// FaultInjector: deterministic, seeded injection of shard-level faults.
//
// The injector answers "should this probe fail / stall / run slow?" from a
// counter-indexed hash of its seed, so a fixed seed plus a fixed workload
// order reproduces the exact same fault sequence — which is what lets the
// chaos tests reconcile injected-fault counts against metrics and trace
// events to the last event. Draws are lock-free (one atomic increment per
// decision) so the injector can sit on the hot probe path of every shard.

#ifndef CLOAKDB_SERVICE_FAULT_INJECTOR_H_
#define CLOAKDB_SERVICE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>

#include "obs/flight_recorder.h"
#include "storage/shard_durability.h"

namespace cloakdb {

/// Configuration for the fault-injection harness. All probabilities are in
/// [0, 1]; the harness is inert unless `enabled` is set, so production paths
/// pay a single predictable branch.
struct FaultInjectorOptions {
  bool enabled = false;

  /// Seed for the deterministic decision stream.
  uint64_t seed = 42;

  /// Probability that a shard probe fails outright (the shard returns an
  /// Internal error for that query's part).
  double probe_failure_probability = 0.0;

  /// Probability that a shard probe is delayed by `probe_delay_us` before
  /// running (a latency spike).
  double probe_delay_probability = 0.0;
  int64_t probe_delay_us = 500;

  /// Probability that an update-queue drain batch stalls for
  /// `queue_stall_us` before applying (simulates a slow consumer).
  double queue_stall_probability = 0.0;
  int64_t queue_stall_us = 200;

  /// Arms a simulated crash at a storage crash point: the `crash_at`-th
  /// time the durability engine reaches `crash_point`, the hook reports
  /// "the process dies here" and the engine freezes. kNone disarms.
  storage::CrashPoint crash_point = storage::CrashPoint::kNone;
  uint64_t crash_at = 1;
};

/// The decision for one shard probe.
enum class ProbeFault {
  kNone = 0,
  kDelay,  ///< Sleep for options().probe_delay_us, then run the probe.
  kFail,   ///< Do not run the probe; report an injected shard failure.
};

/// Thread-safe deterministic fault source shared by all shards of a service.
///
/// Every decision consumes exactly one draw from a splitmix64 stream indexed
/// by an atomic counter. The injector also keeps exact counts of each fault
/// kind it has fired, so callers (tests, cloaksim --chaos) can reconcile
/// observed behaviour against injected behaviour.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultInjectorOptions& options)
      : options_(options) {
    if (options.crash_point != storage::CrashPoint::kNone) {
      ArmCrash(options.crash_point, options.crash_at);
    }
  }

  const FaultInjectorOptions& options() const { return options_; }
  bool enabled() const { return options_.enabled; }

  /// Decides the fate of the next shard probe. Returns kNone when disabled.
  ProbeFault NextProbeFault();

  /// Decides whether the next drain batch stalls. False when disabled.
  bool NextQueueStall();

  /// (Re-)arms the simulated crash: the `after_n_more_hits`-th future time
  /// the durability engine reaches `point`, the crash fires. Callable while
  /// the service runs — cloaksim arms after seeding the world so the seed
  /// phase is never interrupted. kNone disarms.
  void ArmCrash(storage::CrashPoint point, uint64_t after_n_more_hits = 1);

  /// The storage CrashHook: true exactly once, on the armed hit of the
  /// armed point. Pass as `crash_hook` when opening ShardDurability.
  bool ShouldCrash(storage::CrashPoint point);

  /// True once the armed crash has fired.
  bool crash_fired() const {
    return crash_fired_.load(std::memory_order_acquire);
  }

  /// Optional flight-recorder sink: every fired fault (probe fail/delay,
  /// queue stall, armed crash) records an event, so a post-mortem ring
  /// dump reconciles against the exact counters below.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }

  /// Exact counts of fired faults, for reconciliation.
  uint64_t probe_failures() const {
    return probe_failures_.load(std::memory_order_relaxed);
  }
  uint64_t probe_delays() const {
    return probe_delays_.load(std::memory_order_relaxed);
  }
  uint64_t queue_stalls() const {
    return queue_stalls_.load(std::memory_order_relaxed);
  }
  uint64_t total_faults() const {
    return probe_failures() + probe_delays() + queue_stalls();
  }

 private:
  /// Uniform double in [0, 1) for draw number `n`, pure in (seed, n).
  double DrawAt(uint64_t n) const;

  FaultInjectorOptions options_;
  obs::FlightRecorder* recorder_ = nullptr;
  std::atomic<uint64_t> draws_{0};
  std::atomic<uint64_t> probe_failures_{0};
  std::atomic<uint64_t> probe_delays_{0};
  std::atomic<uint64_t> queue_stalls_{0};
  std::atomic<uint8_t> crash_point_{0};
  std::atomic<uint64_t> crash_countdown_{0};
  std::atomic<bool> crash_fired_{false};
};

}  // namespace cloakdb

#endif  // CLOAKDB_SERVICE_FAULT_INJECTOR_H_
