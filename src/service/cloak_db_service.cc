#include "service/cloak_db_service.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <string>
#include <utility>

#include "geom/distance.h"
#include "obs/scoped_timer.h"
#include "storage/shard_snapshot.h"
#include "util/build_info.h"

namespace cloakdb {

namespace {

// How long an un-acknowledged WAL record may sit appended-but-unfsynced
// before an idle worker forces the group commit. Acknowledged work (Flush)
// never waits on this — the flush barrier fsyncs immediately.
constexpr int64_t kGroupCommitDeadlineUs = 10'000;

// splitmix64: cheap, well-mixed hash for id -> shard routing and for
// perturbing per-shard pseudonym seeds (sequential user ids must not all
// land on one shard, and two shards must not draw the same pseudonym
// stream).
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// One traced request: assigns the trace id at admission, owns the root
/// span, and completes the trace — also on early error returns, via the
/// destructor — feeding the root latency into the tail-sampling decision.
/// Inert (and free) when the service has no tracer.
class RootTrace {
 public:
  RootTrace(obs::Tracer* tracer, const char* name) {
    if (tracer == nullptr) return;
    begin_ = tracer->BeginTrace(name);
    span_ = obs::TraceSpan(begin_, name);
  }

  RootTrace(const RootTrace&) = delete;
  RootTrace& operator=(const RootTrace&) = delete;

  ~RootTrace() { Finish(); }

  /// Children built from this context parent under the root span.
  obs::TraceContext context() const { return span_.context(); }

  /// Annotates the root span (shed / degraded-admission markers).
  void AddAttr(const char* key, double value) { span_.AddAttr(key, value); }

  void Finish() {
    if (begin_.tracer == nullptr) return;
    const double latency_us = span_.End();
    // Audit violations reach the tracer directly (NoteAuditViolation
    // force-keeps the trace), so only the latency feeds in here.
    begin_.tracer->FinishTrace(begin_, latency_us, /*audit_violation=*/false);
    begin_ = obs::TraceContext{};
  }

 private:
  obs::TraceContext begin_;
  obs::TraceSpan span_;
};

/// Root-span / metric-family name of one envelope kind.
const char* RootSpanName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kPrivateRange:
      return "query.private_range";
    case QueryKind::kPrivateNn:
      return "query.private_nn";
    case QueryKind::kPrivateKnn:
      return "query.private_knn";
    case QueryKind::kPublicCount:
      return "query.public_count";
    case QueryKind::kHeatmap:
      return "query.heatmap";
  }
  return "query.unknown";
}

}  // namespace

/// Tracks one fan-out's degradation state. Coverage is a 64-bit bitmap, so
/// per-shard coverage is reported for the first 64 shards; beyond that the
/// degraded flag alone is authoritative.
struct CloakDbService::FanoutGuard {
  const CloakDbService* service;
  Deadline deadline;
  uint32_t budget;  ///< 0 = unlimited.
  uint32_t probes = 0;
  uint64_t covered = 0;
  bool degraded = false;
  bool deadline_hit = false;
  Status first_error;  ///< First hard probe error (injected or real).

  FanoutGuard(const CloakDbService* s, Deadline d, uint32_t b)
      : service(s), deadline(d), budget(b) {}

  /// Gate before each probe: consumes budget, checks the deadline. A false
  /// return means the shard stays uncovered and the result is degraded.
  bool AllowProbe() {
    if (budget > 0 && probes >= budget) {
      degraded = true;
      return false;
    }
    if (deadline.Expired()) {
      deadline_hit = true;
      degraded = true;
      return false;
    }
    ++probes;
    return true;
  }

  /// Marks shard `i`'s contribution as fully reflected: it answered, holds
  /// no qualifying object, or was provably dominance-skipped.
  void Cover(uint32_t i) {
    if (i < 64) covered |= uint64_t{1} << i;
  }

  /// Records a hard probe failure: the shard stays uncovered.
  void Fail(const Status& status) {
    degraded = true;
    if (first_error.ok()) first_error = status;
  }

  /// Closes the fan-out: span attributes + degradation counters. Call once,
  /// before the fanout span ends.
  void Finish(obs::TraceSpan* fanout) {
    if (!degraded) return;
    fanout->AddAttr("degraded", 1.0);
    fanout->AddAttr("covered_shards", static_cast<double>(covered));
    if (deadline_hit) {
      service->robustness_obs_.deadline_hits->Increment();
      service->flight_recorder_.Record(obs::FlightEventKind::kDeadlineHit,
                                       obs::CurrentTraceContext().trace_id);
    }
  }

  /// Stamps the degradation markers onto a merged result and counts the
  /// degraded return. `ResultT` is any result struct with the degraded /
  /// covered_shards pair.
  template <typename ResultT>
  void Stamp(ResultT* result) {
    result->degraded = degraded;
    result->covered_shards = covered;
    if (degraded) {
      service->robustness_obs_.queries_degraded->Increment();
      service->flight_recorder_.Record(obs::FlightEventKind::kQueryDegraded,
                                       obs::CurrentTraceContext().trace_id,
                                       covered);
    }
  }

  /// The error to return when the fan-out produced no usable part at all.
  Status EmptyError(Status fallback) const {
    if (!first_error.ok()) return first_error;
    if (deadline_hit)
      return Status::DeadlineExceeded(
          "query deadline expired before enough shards answered");
    if (degraded)
      return Status::DegradedZeroCoverage(
          "degraded query produced no candidates");
    return fallback;
  }
};

CloakDbService::CloakDbService(const CloakDbServiceOptions& options)
    : options_(options),
      start_time_(std::chrono::steady_clock::now()),
      slow_log_(options.slow_query_log_capacity) {}

Result<std::unique_ptr<CloakDbService>> CloakDbService::Create(
    const CloakDbServiceOptions& options) {
  if (options.space.IsEmpty() || options.space.Area() <= 0.0)
    return Status::InvalidArgument("service space must be non-empty");
  if (options.num_shards == 0)
    return Status::InvalidArgument("service needs at least one shard");
  if (options.queue_capacity == 0)
    return Status::InvalidArgument("queue_capacity must be >= 1");
  if (options.max_batch == 0)
    return Status::InvalidArgument("max_batch must be >= 1");
  if (options.signature_grid_cells == 0)
    return Status::InvalidArgument("signature_grid_cells must be >= 1");
  if (options.max_batch_width == 0)
    return Status::InvalidArgument("max_batch_width must be >= 1");
  if (options.overload.query_deadline_us < 0)
    return Status::InvalidArgument("query_deadline_us must be >= 0");
  if (options.overload.max_queries_per_s < 0.0)
    return Status::InvalidArgument("max_queries_per_s must be >= 0");
  if (options.overload.burst < 0.0)
    return Status::InvalidArgument("burst must be >= 0");
  if (options.overload.shed_queue_fraction < 0.0 ||
      options.overload.shed_queue_fraction > 1.0)
    return Status::InvalidArgument("shed_queue_fraction must be in [0, 1]");
  const FaultInjectorOptions& fault = options.fault_injection;
  if (fault.probe_failure_probability < 0.0 ||
      fault.probe_delay_probability < 0.0 ||
      fault.queue_stall_probability < 0.0 ||
      fault.probe_failure_probability + fault.probe_delay_probability > 1.0 ||
      fault.queue_stall_probability > 1.0)
    return Status::InvalidArgument("fault probabilities must be in [0, 1]");
  if (fault.probe_delay_us < 0 || fault.queue_stall_us < 0)
    return Status::InvalidArgument("fault delays must be >= 0");
  if (options.durability_mode != storage::DurabilityMode::kOff &&
      options.data_dir.empty())
    return Status::InvalidArgument(
        "data_dir is required when durability_mode is not off");
  std::unique_ptr<CloakDbService> service(new CloakDbService(options));
  CLOAKDB_RETURN_IF_ERROR(service->Start());
  return service;
}

Status CloakDbService::Start() {
  // Resolve every metric handle once; shards and query paths record through
  // these raw pointers for the service's lifetime.
  auto init_kind = [this](QueryKindObs* o, const char* kind) {
    const std::string p = std::string("query.") + kind + ".";
    o->latency_us = metrics_.histogram(p + "latency_us");
    o->merge_us = metrics_.histogram(p + "merge_us");
    o->shards_touched = metrics_.histogram(p + "shards_touched");
    o->candidates = metrics_.histogram(p + "candidates");
    o->wire_bytes = metrics_.counter(p + "wire_bytes");
  };
  init_kind(&range_obs_, "private_range");
  init_kind(&nn_obs_, "private_nn");
  init_kind(&knn_obs_, "private_knn");
  init_kind(&count_obs_, "public_count");
  init_kind(&heatmap_obs_, "heatmap");

  ShardObs shard_obs;
  shard_obs.queue_wait_us = metrics_.histogram("ingest.queue_wait_us");
  shard_obs.cloak_us = metrics_.histogram("ingest.cloak_us");
  shard_obs.batch_size = metrics_.histogram("ingest.batch_size");
  shard_obs.rotations = metrics_.counter("ingest.rotations_total");
  shard_obs.rejected = metrics_.counter("ingest.rejected_total");
  shard_obs.queue.depth_hwm = metrics_.gauge("queue.depth_hwm");
  shard_obs.queue.blocked_push_us = metrics_.histogram("queue.blocked_push_us");

  QueryProcessorObs server_obs;
  server_obs.range_probe_us = metrics_.histogram("query.private_range.probe_us");
  server_obs.nn_probe_us = metrics_.histogram("query.private_nn.probe_us");
  server_obs.knn_probe_us = metrics_.histogram("query.private_knn.probe_us");
  server_obs.count_probe_us = metrics_.histogram("query.public_count.probe_us");
  server_obs.heatmap_probe_us = metrics_.histogram("query.heatmap.probe_us");

  shared_batch_width_ = metrics_.histogram("query.shared.batch_width");
  shared_cluster_fanin_ = metrics_.histogram("query.shared.cluster_fanin");
  CandidateCacheObs cache_obs;
  cache_obs.hits = metrics_.counter("cache.hits_total");
  cache_obs.misses = metrics_.counter("cache.misses_total");
  cache_obs.insertions = metrics_.counter("cache.insertions_total");
  cache_obs.lru_evictions = metrics_.counter("cache.lru_evictions_total");
  cache_obs.invalidations = metrics_.counter("cache.invalidations_total");

  // Robustness counters are created eagerly (not on first use) so a metrics
  // export always lists them — the doc-drift guard test depends on the full
  // catalog being present after any smoke run.
  robustness_obs_.queries_shed = metrics_.counter("admission.queries_shed_total");
  robustness_obs_.queries_admitted_degraded =
      metrics_.counter("admission.queries_degraded_total");
  robustness_obs_.updates_shed =
      metrics_.counter("admission.updates_shed_total");
  robustness_obs_.queries_degraded = metrics_.counter("query.degraded_total");
  robustness_obs_.deadline_hits =
      metrics_.counter("query.deadline_hits_total");
  robustness_obs_.probe_failures =
      metrics_.counter("fault.probe_failures_total");
  robustness_obs_.probe_delays = metrics_.counter("fault.probe_delays_total");
  robustness_obs_.queue_stalls = metrics_.counter("fault.queue_stalls_total");
  shard_obs.fault_stalls = robustness_obs_.queue_stalls;

  // Flight recorder: every notable-event producer below records through
  // this ring; the counter keeps the metric catalog aware of it.
  flight_recorder_.set_counter(metrics_.counter("recorder.events_total"));

  // Static public-index + sidecar metrics, eager for the doc-drift guard
  // (registered in both modes so the exported catalog is stable).
  static_index_obs_.seals_total = metrics_.counter("index.static.seals_total");
  static_index_obs_.sealed_objects_total =
      metrics_.counter("index.static.sealed_objects_total");
  static_index_obs_.overlay_inserts_total =
      metrics_.counter("index.static.overlay_inserts_total");
  static_index_obs_.tombstones_total =
      metrics_.counter("index.static.tombstones_total");
  static_index_obs_.compactions_total =
      metrics_.counter("index.static.compactions_total");
  static_index_obs_.adoptions_total =
      metrics_.counter("index.static.adoptions_total");
  static_index_obs_.rebuilds_total =
      metrics_.counter("index.static.rebuilds_total");
  sidecar_obs_.opens_total = metrics_.counter("mmap.opens_total");
  sidecar_obs_.read_fallbacks_total =
      metrics_.counter("mmap.read_fallbacks_total");
  sidecar_obs_.verify_failures_total =
      metrics_.counter("mmap.verify_failures_total");
  sidecar_obs_.bytes_mapped_total = metrics_.counter("mmap.bytes_mapped_total");

  // Continuous-query metrics, likewise eager for the doc-drift guard.
  cq_obs_.registrations = metrics_.counter("cq.registrations_total");
  cq_obs_.unregistrations = metrics_.counter("cq.unregistrations_total");
  cq_obs_.updates_seen = metrics_.counter("cq.updates_seen_total");
  cq_obs_.incremental_refilters =
      metrics_.counter("cq.incremental_refilters_total");
  cq_obs_.full_reevals = metrics_.counter("cq.full_reevals_total");
  cq_obs_.stale_marked = metrics_.counter("cq.stale_marked_total");
  cq_obs_.delta_candidates = metrics_.counter("cq.delta_candidates_total");
  cq_obs_.count_delta_updates =
      metrics_.counter("cq.count_delta_updates_total");
  cq_obs_.affected_per_update = metrics_.histogram("cq.affected_per_update");
  cq_obs_.register_latency_us = metrics_.histogram("cq.register_latency_us");
  cq_obs_.registered = metrics_.gauge("cq.registered");

  signature_ = CellSignature(options_.space, options_.signature_grid_cells);

  if (options_.trace.enabled) {
    tracer_ = std::make_unique<obs::Tracer>(options_.trace);
    tracer_->set_flight_recorder(&flight_recorder_);
  }

  const OverloadOptions& overload = options_.overload;
  if (overload.query_deadline_us > 0 || overload.max_queries_per_s > 0.0 ||
      overload.shed_queue_fraction > 0.0) {
    admission_ = std::make_unique<AdmissionController>(
        overload, options_.num_shards, options_.queue_capacity);
  }
  if (options_.fault_injection.enabled) {
    fault_injector_ = std::make_unique<FaultInjector>(options_.fault_injection);
    fault_injector_->set_flight_recorder(&flight_recorder_);
  }

  // Durability metrics, eager like the rest so the exported catalog is
  // complete even before the first commit or recovery.
  storage::DurabilityObs durability_obs;
  durability_obs.wal_records = metrics_.counter("wal.records_total");
  durability_obs.wal_bytes = metrics_.counter("wal.bytes_total");
  durability_obs.wal_fsyncs = metrics_.counter("wal.fsyncs_total");
  durability_obs.wal_commit_us = metrics_.histogram("wal.commit_us");
  durability_obs.checkpoints = metrics_.counter("checkpoint.completed_total");
  durability_obs.checkpoint_bytes = metrics_.counter("checkpoint.bytes_total");
  durability_obs.checkpoint_us = metrics_.histogram("checkpoint.duration_us");
  obs::Counter* recovery_replayed =
      metrics_.counter("recovery.replayed_records_total");
  obs::Counter* recovery_truncated =
      metrics_.counter("recovery.truncated_records");
  obs::Counter* recovery_checkpoints =
      metrics_.counter("recovery.checkpoints_loaded_total");
  obs::Counter* recovery_cqs =
      metrics_.counter("recovery.cq_reregistered_total");
  obs::ShardedHistogram* recovery_us =
      metrics_.histogram("recovery.duration_us");
  durability_obs.recorder = &flight_recorder_;
  // A WAL fsync taking 20ms+ is a disk brown-out worth a post-mortem line.
  durability_obs.wal_stall_threshold_us = 20'000;

  const uint32_t n = options_.num_shards;
  const bool durable =
      options_.durability_mode != storage::DurabilityMode::kOff;
  if (durable) {
    // The injector owns the crash decision so cloaksim can re-arm points
    // at runtime; the hook keeps storage below the service layer.
    storage::CrashHook crash_hook;
    if (fault_injector_ != nullptr) {
      FaultInjector* injector = fault_injector_.get();
      crash_hook = [injector](storage::CrashPoint point) {
        return injector->ShouldCrash(point);
      };
    }
    durability_.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      durability_obs.shard_index = i;
      auto engine = storage::ShardDurability::Open(
          options_.data_dir + "/shard-" + std::to_string(i),
          options_.durability_mode, durability_obs, crash_hook);
      if (!engine.ok()) return engine.status();
      durability_.push_back(std::move(engine).value());
    }
  }
  // Split the cache budget evenly (at least one entry per shard so a tiny
  // budget still exercises the cache path everywhere).
  const size_t per_shard_cache =
      options_.enable_shared_execution && options_.cache_capacity > 0
          ? (options_.cache_capacity + n - 1) / n
          : 0;
  shards_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ShardConfig config;
    config.index = i;
    config.anonymizer = options_.anonymizer;
    config.anonymizer.space = options_.space;
    config.anonymizer.pseudonym_seed =
        options_.anonymizer.pseudonym_seed ^ Mix64(i + 1);
    config.rect_grid_cells = options_.rect_grid_cells;
    config.wire_cost = options_.wire_cost;
    config.queue_capacity = options_.queue_capacity;
    config.obs = shard_obs;
    config.server_obs = server_obs;
    config.cache_capacity = per_shard_cache;
    config.signature_cells = options_.signature_grid_cells;
    config.cache_obs = cache_obs;
    config.shared_probe_us = metrics_.histogram("query.shared.probe_us");
    config.tracer = tracer_.get();
    config.fault_injector = fault_injector_.get();
    config.continuous = options_.continuous;
    config.cq_obs = cq_obs_;
    config.durability = durable ? durability_[i].get() : nullptr;
    config.public_index.mode = options_.public_index;
    config.public_index.overlay_compact_limit =
        options_.static_index_compact_limit;
    config.public_index.obs = &static_index_obs_;
    if (durable && options_.public_index == PublicIndexMode::kStatic) {
      config.index_blob_path = options_.data_dir + "/shard-" +
                               std::to_string(i) + "/static_index.blob";
    }
    config.index_blob_force_read_fallback = options_.index_mmap_read_fallback;
    config.sidecar_obs = sidecar_obs_;
    auto shard = Shard::Create(config);
    if (!shard.ok()) return shard.status();
    shards_.push_back(std::move(shard).value());
  }
  const double stripe_width = options_.space.Width() / n;
  for (uint32_t i = 1; i < n; ++i) {
    stripe_bounds_.push_back(options_.space.min_x + stripe_width * i);
  }
  if (options_.enable_shared_execution && options_.batch_window_us > 0) {
    batcher_ = std::make_unique<QueryBatcher>(
        options_.batch_window_us, options_.max_batch_width,
        [this](const std::vector<BatchQuery>& queries) {
          return ExecuteBatch(queries);
        });
  }
  if (durable) {
    // Recovery must finish before any worker can drain or checkpoint: the
    // replay re-applies records through the same shard paths the workers
    // use, and interleaving live traffic would reorder the log.
    const auto recovery_start = std::chrono::steady_clock::now();
    CLOAKDB_RETURN_IF_ERROR(RecoverFromDisk());
    // No traffic has run yet, so the lifecycle counters hold exactly what
    // recovery did.
    recovery_info_.static_indexes_adopted =
        static_index_obs_.adoptions_total->Value();
    recovery_info_.static_indexes_rebuilt =
        static_index_obs_.rebuilds_total->Value();
    recovery_replayed->Increment(recovery_info_.replayed_records);
    recovery_truncated->Increment(recovery_info_.truncated_records);
    recovery_checkpoints->Increment(recovery_info_.checkpoints_loaded);
    recovery_cqs->Increment(recovery_info_.cq_reregistered);
    recovery_us->Record(obs::MicrosBetween(recovery_start,
                                           std::chrono::steady_clock::now()));
  }
  worker_count_ = options_.worker_threads == 0 ? n : options_.worker_threads;
  workers_.reserve(worker_count_);
  for (uint32_t w = 0; w < worker_count_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
  return Status::OK();
}

Status CloakDbService::RecoverFromDisk() {
  recovery_info_.performed = true;
  recovery_info_.shard_last_lsn.resize(shards_.size(), 0);
  // Standing-query registrations survive as checkpoint entries plus WAL
  // register/unregister events; folding both in order yields the set that
  // was live at the crash. Count windows are logged on every shard, so the
  // map also dedupes; std::map keeps re-registration in ascending-id order.
  std::map<ContinuousQueryId, ContinuousSpec> live_cqs;
  ContinuousQueryId max_cq_id = 0;
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    const storage::ShardRecoveredState& recovered =
        durability_[i]->recovered();
    recovery_info_.truncated_records += recovered.truncated_records;
    recovery_info_.skipped_records += recovered.skipped_records;
    recovery_info_.shard_last_lsn[i] = durability_[i]->last_lsn();
    if (recovered.had_checkpoint) {
      auto snapshot = storage::DecodeShardSnapshot(recovered.checkpoint_blob);
      if (!snapshot.ok()) return snapshot.status();
      CLOAKDB_RETURN_IF_ERROR(
          shards_[i]->RestoreSnapshot(snapshot.value()));
      ++recovery_info_.checkpoints_loaded;
      for (const storage::SnapshotCq& cq : snapshot.value().cqs) {
        ContinuousSpec spec;
        spec.kind = static_cast<QueryKind>(cq.kind);
        spec.issuer = cq.issuer;
        spec.radius = cq.radius;
        spec.k = static_cast<size_t>(cq.k);
        spec.category = cq.category;
        spec.window = cq.window;
        live_cqs[cq.id] = spec;
        max_cq_id = std::max(max_cq_id, cq.id);
      }
    }
    for (const storage::WalRecord& record : recovered.records) {
      ++recovery_info_.replayed_records;
      if (record.type == storage::WalRecordType::kCqRegister) {
        ContinuousSpec spec;
        spec.kind = static_cast<QueryKind>(record.cq_kind);
        spec.issuer = record.cq_issuer;
        spec.radius = record.cq_radius;
        spec.k = static_cast<size_t>(record.cq_k);
        spec.category = record.cq_category;
        spec.window = record.cq_window;
        live_cqs[record.cq_id] = spec;
        max_cq_id = std::max(max_cq_id, record.cq_id);
        continue;
      }
      if (record.type == storage::WalRecordType::kCqUnregister) {
        live_cqs.erase(record.cq_id);
        max_cq_id = std::max(max_cq_id, record.cq_id);
        continue;
      }
      CLOAKDB_RETURN_IF_ERROR(shards_[i]->ReplayWalRecord(record));
    }
  }
  // Never reuse a recovered id, including unregistered ones: a client may
  // still hold it.
  next_cq_id_.store(max_cq_id + 1, std::memory_order_relaxed);

  // Re-register the surviving standing queries through the same evaluation
  // the live registration path uses (registry insert only — the WAL still
  // holds their registration records, so nothing is re-logged). A private
  // query whose issuer no longer has a region is dropped, mirroring what
  // an operator would see had the crash landed a breath earlier.
  for (const auto& [id, spec] : live_cqs) {
    if (spec.kind == QueryKind::kPublicCount) {
      bool ok = true;
      for (uint32_t s = 0; s < shards_.size(); ++s) {
        if (!shards_[s]->RegisterStandingCount(id, spec.window).ok()) {
          for (uint32_t r = 0; r < s; ++r)
            (void)shards_[r]->continuous().Remove(id);
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      cq_routes_[id] = CqRoute{QueryKind::kPublicCount, 0};
    } else {
      const uint32_t home = ShardOfUser(spec.issuer);
      ContinuousShardRegistry& registry = shards_[home]->continuous();
      auto region = shards_[home]->CurrentRegionOfUser(spec.issuer);
      if (!region.ok()) continue;
      const uint64_t version = registry.public_version();
      auto snap = EvaluateStanding(spec, region.value(), Deadline(), 0);
      if (!snap.ok()) continue;
      if (!registry
               .InsertPrivate(id, spec, region.value(),
                              std::move(snap).value(), version)
               .ok())
        continue;
      cq_routes_[id] = CqRoute{spec.kind, home};
    }
    ++recovery_info_.cq_reregistered;
    if (cq_obs_.registered != nullptr) cq_obs_.registered->Add(1.0);
  }
  return Status::OK();
}

Status CloakDbService::Checkpoint() {
  for (auto& shard : shards_) {
    // Fold spilled overlay/tombstones back into the sealed tree first, so
    // the sidecar written below serializes the whole live set.
    CLOAKDB_RETURN_IF_ERROR(shard->CompactPublicIndex());
    CLOAKDB_RETURN_IF_ERROR(shard->WriteCheckpoint());
  }
  return Status::OK();
}

Status CloakDbService::SyncWal() {
  if (durability_.empty()) return Status::OK();
  if (durability_.size() == 1) return durability_[0]->Sync();
  // The per-shard WALs are independent files: fsync them concurrently so
  // the barrier costs one fsync's latency, not num_shards of them.
  std::vector<Status> statuses(durability_.size(), Status::OK());
  std::vector<std::thread> syncers;
  syncers.reserve(durability_.size());
  for (size_t i = 0; i < durability_.size(); ++i) {
    syncers.emplace_back(
        [this, i, &statuses] { statuses[i] = durability_[i]->Sync(); });
  }
  for (auto& t : syncers) t.join();
  for (Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return Status::OK();
}

CloakDbService::~CloakDbService() {
  stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) shard->CloseQueue();
  for (auto& worker : workers_) worker.join();
  // Workers sweep their shards once after stop; finish anything left (e.g.
  // updates raced in before the queues closed).
  (void)Flush();
  // In kAsync mode commits were never fsynced; push them out now so a
  // clean shutdown loses nothing.
  (void)SyncWal();
}

void CloakDbService::WorkerLoop(uint32_t worker) {
  while (!stop_.load(std::memory_order_acquire)) {
    size_t drained = 0;
    for (uint32_t s = worker; s < shards_.size(); s += worker_count_) {
      drained += shards_[s]->DrainOnce(options_.max_batch);
      // Each shard is checkpointed only by the worker that drains it
      // (stride assignment), so the interval trigger never races itself;
      // explicit Checkpoint() calls serialize inside the engine.
      if (!durability_.empty() && options_.checkpoint_interval > 0 &&
          durability_[s]->records_since_checkpoint() >=
              options_.checkpoint_interval) {
        (void)shards_[s]->CompactPublicIndex();
        (void)shards_[s]->WriteCheckpoint();
      }
    }
    if (drained == 0) {
      // Idle: settle any deferred group commit that has aged past the
      // deadline. The time gate matters — a fast drainer bounces off an
      // empty queue between producer enqueues, so an unconditional sync
      // here degenerates right back into one fsync per batch.
      if (options_.durability_mode == storage::DurabilityMode::kFsync) {
        for (uint32_t s = worker; s < shards_.size(); s += worker_count_) {
          (void)durability_[s]->SyncIfStale(kGroupCommitDeadlineUs);
        }
      }
      // Repair a few stale standing queries on this worker's shards, then
      // nap instead of spinning; enqueue latency stays sub-ms while an
      // idle service costs ~no CPU.
      size_t swept = 0;
      for (uint32_t s = worker; s < shards_.size(); s += worker_count_) {
        swept += SweepShardContinuous(s, 8);
      }
      if (swept == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  for (uint32_t s = worker; s < shards_.size(); s += worker_count_) {
    while (shards_[s]->DrainOnce(options_.max_batch) > 0) {
    }
  }
}

uint32_t CloakDbService::ShardOfUser(UserId user) const {
  return static_cast<uint32_t>(Mix64(user) % shards_.size());
}

uint32_t CloakDbService::ShardOfX(double x) const {
  auto it =
      std::upper_bound(stripe_bounds_.begin(), stripe_bounds_.end(), x);
  return static_cast<uint32_t>(it - stripe_bounds_.begin());
}

std::pair<uint32_t, uint32_t> CloakDbService::StripeRangeOf(
    const Rect& region) const {
  return {ShardOfX(region.min_x), ShardOfX(region.max_x)};
}

double CloakDbService::StripeMinDist(uint32_t stripe,
                                     const Rect& region) const {
  const double lo =
      stripe == 0 ? options_.space.min_x : stripe_bounds_[stripe - 1];
  const double hi = stripe + 1 == shards_.size() ? options_.space.max_x
                                                 : stripe_bounds_[stripe];
  return std::max({0.0, lo - region.max_x, region.min_x - hi});
}

size_t CloakDbService::AggregateQueueDepth() const {
  size_t depth = 0;
  for (const auto& shard : shards_) depth += shard->QueueDepth();
  return depth;
}

CloakDbService::Admission CloakDbService::AdmitQuery() const {
  Admission admission;
  if (admission_ == nullptr) return admission;
  admission.deadline = admission_->QueryDeadline();
  switch (admission_->AdmitQuery(AggregateQueueDepth())) {
    case AdmissionDecision::kAdmit:
      break;
    case AdmissionDecision::kDegrade:
      admission.degraded_admission = true;
      admission.shard_budget = admission_->options().degrade_shard_budget;
      robustness_obs_.queries_admitted_degraded->Increment();
      break;
    case AdmissionDecision::kReject:
      robustness_obs_.queries_shed->Increment();
      flight_recorder_.Record(obs::FlightEventKind::kQueryShed,
                              obs::CurrentTraceContext().trace_id);
      admission.status = Status::Shed("query shed: service overloaded");
      break;
  }
  return admission;
}

ProbeFault CloakDbService::InjectProbeFault(obs::TraceSpan* probe_span) const {
  if (fault_injector_ == nullptr) return ProbeFault::kNone;
  const ProbeFault fault = fault_injector_->NextProbeFault();
  if (fault == ProbeFault::kFail) {
    robustness_obs_.probe_failures->Increment();
    probe_span->AddAttr("fault_fail", 1.0);
  } else if (fault == ProbeFault::kDelay) {
    robustness_obs_.probe_delays->Increment();
    probe_span->AddAttr("fault_delay", 1.0);
    std::this_thread::sleep_for(std::chrono::microseconds(
        fault_injector_->options().probe_delay_us));
  }
  return fault;
}

Status CloakDbService::RegisterUser(UserId user, PrivacyProfile profile) {
  return shards_[ShardOfUser(user)]->RegisterUser(user, std::move(profile));
}

Status CloakDbService::UpdateProfile(UserId user, PrivacyProfile profile) {
  return shards_[ShardOfUser(user)]->UpdateProfile(user, std::move(profile));
}

Status CloakDbService::UnregisterUser(UserId user) {
  return shards_[ShardOfUser(user)]->UnregisterUser(user);
}

Result<ObjectId> CloakDbService::PseudonymOf(UserId user) const {
  return shards_[ShardOfUser(user)]->PseudonymOf(user);
}

Status CloakDbService::AddPublicObject(const PublicObject& object) {
  CLOAKDB_RETURN_IF_ERROR(
      shards_[ShardOfX(object.location.x)]->AddPublicObject(object));
  // Every shard's registry sees the change: standing private queries home
  // on the issuer's shard, not the object's stripe.
  for (auto& shard : shards_)
    shard->continuous().OnPublicChanged(object.location, object.category);
  return Status::OK();
}

Status CloakDbService::BulkLoadCategory(Category category,
                                        std::vector<PublicObject> objects) {
  std::vector<std::vector<PublicObject>> parts(shards_.size());
  for (auto& object : objects) {
    parts[ShardOfX(object.location.x)].push_back(std::move(object));
  }
  // Every shard is loaded (including with an empty slice) so the call
  // replaces the category service-wide, like ObjectStore::BulkLoadCategory.
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    CLOAKDB_RETURN_IF_ERROR(
        shards_[i]->BulkLoadCategory(category, std::move(parts[i])));
  }
  for (auto& shard : shards_)
    shard->continuous().OnCategoryReloaded(category);
  return Status::OK();
}

Status CloakDbService::EnqueueUpdate(UserId user, const Point& location,
                                     TimeOfDay now) {
  if (!options_.space.Contains(location))
    return Status::OutOfRange("location outside the service space");
  Shard& shard = *shards_[ShardOfUser(user)];
  // Queue-depth shedding replaces blocking backpressure: an overloaded
  // shard rejects fast instead of parking the producer thread.
  if (admission_ != nullptr &&
      admission_->ShouldShedUpdate(shard.QueueDepth())) {
    robustness_obs_.updates_shed->Increment();
    return Status::Shed("update shed: shard queue overloaded");
  }
  return shard.Enqueue({user, location, now}, /*block=*/true);
}

Status CloakDbService::TryEnqueueUpdate(UserId user, const Point& location,
                                        TimeOfDay now) {
  if (!options_.space.Contains(location))
    return Status::OutOfRange("location outside the service space");
  Shard& shard = *shards_[ShardOfUser(user)];
  if (admission_ != nullptr &&
      admission_->ShouldShedUpdate(shard.QueueDepth())) {
    robustness_obs_.updates_shed->Increment();
    return Status::Shed("update shed: shard queue overloaded");
  }
  return shard.Enqueue({user, location, now}, /*block=*/false);
}

Result<CloakedUpdate> CloakDbService::UpdateLocation(UserId user,
                                                     const Point& location,
                                                     TimeOfDay now) {
  RootTrace trace(tracer_.get(), "cloak.update");
  obs::ScopedTraceContext scope(trace.context());
  return shards_[ShardOfUser(user)]->UpdateLocation(user, location, now);
}

Result<CloakedUpdate> CloakDbService::CloakForQuery(UserId user,
                                                    TimeOfDay now) {
  RootTrace trace(tracer_.get(), "cloak.query");
  obs::ScopedTraceContext scope(trace.context());
  return shards_[ShardOfUser(user)]->CloakForQuery(user, now);
}

Status CloakDbService::Flush() {
  for (;;) {
    size_t drained = 0;
    bool idle = true;
    for (auto& shard : shards_) {
      drained += shard->DrainOnce(options_.max_batch);
      if (!shard->Idle()) idle = false;
    }
    if (idle) break;
    if (drained == 0) {
      // Another thread holds a popped batch; wait for it to apply.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  // Drained updates may have staled standing queries; a flushed service
  // answers them from fully repaired state. Sweeping until the queue is
  // empty is not enough: TakeStale clears the stale flags, so an idle
  // worker mid-repair is invisible to the queue — wait for its restore
  // (or epoch-mismatch discard, which re-queues) to settle too.
  for (;;) {
    if (SweepContinuousStale() > 0) continue;
    bool repairing = false;
    for (const auto& shard : shards_) {
      if (shard->continuous().repairs_in_flight() > 0) {
        repairing = true;
        break;
      }
    }
    if (!repairing) break;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  // Group-commit barrier: drains defer per-batch fsyncs while their queue
  // still holds work, so a Flush() racing the shard's worker can observe
  // pending_ == 0 with the last record not yet fsynced. Settle it here —
  // a no-op when the final drain already committed synchronously.
  if (options_.durability_mode == storage::DurabilityMode::kFsync) {
    CLOAKDB_RETURN_IF_ERROR(SyncWal());
  }
  return Status::OK();
}

QueryResponse CloakDbService::ExecuteQuery(const QueryRequest& request) const {
  const auto started = std::chrono::steady_clock::now();
  RootTrace trace(tracer_.get(), RootSpanName(request.kind));
  obs::ScopedTraceContext scope(trace.context());
  Admission admission = AdmitQuery();
  if (admission.degraded_admission) trace.AddAttr("degraded_admission", 1.0);
  QueryResponse response;
  if (!admission.status.ok()) {
    trace.AddAttr("shed", 1.0);
    response = MakeErrorResponse(request.kind, admission.status);
  } else {
    // A client budget can only tighten the server's own admission deadline.
    Deadline deadline = admission.deadline;
    if (request.deadline_us > 0) {
      deadline =
          Deadline::Earliest(deadline, Deadline::After(request.deadline_us));
    }
    switch (request.kind) {
      case QueryKind::kPrivateRange:
      case QueryKind::kPrivateNn:
      case QueryKind::kPrivateKnn: {
        BatchQuery query;
        query.request = request;
        query.trace = trace.context();
        query.deadline = deadline;
        query.shard_budget = admission.shard_budget;
        response = batcher_ != nullptr
                       ? batcher_->Submit(query)
                       : ExecuteOne(query, options_.enable_shared_execution,
                                    Rect());
        break;
      }
      case QueryKind::kPublicCount: {
        auto count = PublicCountImpl(request.region, deadline,
                                     admission.shard_budget);
        response = count.ok()
                       ? ResponseFromCount(count.value())
                       : MakeErrorResponse(request.kind, count.status());
        break;
      }
      case QueryKind::kHeatmap: {
        auto heat =
            HeatmapImpl(request.resolution, deadline, admission.shard_budget);
        response = heat.ok()
                       ? ResponseFromHeatmap(std::move(heat).value())
                       : MakeErrorResponse(request.kind, heat.status());
        break;
      }
    }
  }
  response.kind = request.kind;
  response.degraded_admission = admission.degraded_admission;
  response.trace_id = trace.context().trace_id;
  response.server_latency_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  // Queries that burned their whole budget before failing are slow queries
  // too: surface them in the slow log with their typed status. (Fast
  // rejections — shed, validation — stay out; they carry no latency story.)
  if (response.error == ErrorCode::kDeadlineExceeded ||
      response.error == ErrorCode::kDegradedZeroCoverage) {
    slow_log_.Record({QueryKindName(request.kind),
                      static_cast<double>(response.server_latency_us),
                      request.region.Area(), 0, 0,
                      trace.context().trace_id, response.error});
  }
  return response;
}

Result<PrivateRangeResult> CloakDbService::PrivateRange(
    const Rect& cloaked, double radius, Category category,
    const PrivateRangeOptions& opts) const {
  QueryResponse response =
      ExecuteQuery(QueryRequest::Range(cloaked, radius, category, opts));
  if (!response.ok()) return response.status();
  return RangeFromResponse(std::move(response));
}

Result<PrivateRangeResult> CloakDbService::PrivateRangeImpl(
    const Rect& cloaked, double radius, Category category,
    const PrivateRangeOptions& opts, bool cached, const Rect& cover,
    Deadline deadline, uint32_t shard_budget) const {
  if (cloaked.IsEmpty())
    return Status::InvalidArgument("cloaked region must be non-empty");
  if (!(radius > 0.0))
    return Status::InvalidArgument("query radius must be positive");
  obs::ScopedTimer total(range_obs_.latency_us);
  const Rect extended = cloaked.Expanded(radius);
  auto [first, last] = StripeRangeOf(extended);

  std::vector<PrivateRangeResult> parts;
  bool category_exists = false;
  uint32_t shards_touched = 0;
  FanoutGuard guard(this, deadline, shard_budget);
  obs::TraceSpan fanout(obs::CurrentTraceContext(), "fanout");
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    if (i < first || i > last) {
      // Stripe cannot contribute candidates (covered without probing), but
      // its holdings decide whether an all-empty fan-out is "empty answer"
      // or NotFound.
      guard.Cover(i);
      if (!category_exists) category_exists = shards_[i]->HasCategory(category);
      continue;
    }
    if (!guard.AllowProbe()) continue;
    ++shards_touched;
    obs::TraceSpan probe_span(fanout.context(), "shard.probe");
    probe_span.AddAttr("shard", static_cast<double>(i));
    obs::ScopedTraceContext probe_scope(probe_span.context());
    if (InjectProbeFault(&probe_span) == ProbeFault::kFail) {
      guard.Fail(Status::Internal("injected probe failure"));
      continue;
    }
    auto part =
        cached
            ? shards_[i]->PrivateRangeCached(cloaked, radius, category, opts,
                                             cover)
            : shards_[i]->PrivateRange(cloaked, radius, category, opts);
    if (part.ok()) {
      probe_span.AddAttr("candidates",
                         static_cast<double>(part.value().candidates.size()));
      category_exists = true;
      guard.Cover(i);
      parts.push_back(std::move(part).value());
    } else if (part.status().code() == StatusCode::kNotFound) {
      // The category is absent on this shard: nothing it could contribute.
      guard.Cover(i);
    } else {
      // A failed shard no longer aborts the whole query: its stripe is
      // marked uncovered and the merged remainder ships degraded.
      guard.Fail(part.status());
    }
  }
  fanout.AddAttr("shards", static_cast<double>(shards_touched));
  guard.Finish(&fanout);
  fanout.End();
  if (parts.empty()) {
    if (guard.degraded) {
      total.Cancel();
      return guard.EmptyError(Status::OK());
    }
    if (!category_exists) {
      total.Cancel();
      return Status::NotFound("no public objects in category");
    }
    PrivateRangeResult empty;
    empty.extended_region = extended;
    guard.Stamp(&empty);
    RecordQuery(range_obs_, "private_range", total.Stop(), cloaked.Area(),
                shards_touched, 0, 0);
    return empty;
  }
  obs::ScopedTimer merge(range_obs_.merge_us);
  obs::TraceSpan merge_span(obs::CurrentTraceContext(), "merge");
  auto merged = MergePrivateRangeResults(std::move(parts));
  merge_span.End();
  merge.Stop();
  guard.Stamp(&merged);
  const uint64_t candidates = merged.candidates.size();
  RecordQuery(range_obs_, "private_range", total.Stop(), cloaked.Area(),
              shards_touched, candidates,
              candidates * options_.wire_cost.bytes_per_object);
  return merged;
}

Result<PrivateNnResult> CloakDbService::PrivateNn(const Rect& cloaked,
                                                  Category category) const {
  QueryResponse response = ExecuteQuery(QueryRequest::Nn(cloaked, category));
  if (!response.ok()) return response.status();
  return NnFromResponse(std::move(response));
}

Result<PrivateNnResult> CloakDbService::PrivateNnImpl(
    const Rect& cloaked, Category category, bool cached, const Rect& cover,
    Deadline deadline, uint32_t shard_budget) const {
  if (cloaked.IsEmpty())
    return Status::InvalidArgument("cloaked region must be non-empty");
  obs::ScopedTimer total(nn_obs_.latency_us);
  std::vector<PrivateNnResult> parts;
  uint32_t shards_touched = 0;
  FanoutGuard guard(this, deadline, shard_budget);
  obs::TraceSpan fanout(obs::CurrentTraceContext(), "fanout");
  auto consult = [&](uint32_t i) {
    if (!guard.AllowProbe()) return;
    ++shards_touched;
    obs::TraceSpan probe_span(fanout.context(), "shard.probe");
    probe_span.AddAttr("shard", static_cast<double>(i));
    obs::ScopedTraceContext probe_scope(probe_span.context());
    if (InjectProbeFault(&probe_span) == ProbeFault::kFail) {
      guard.Fail(Status::Internal("injected probe failure"));
      return;
    }
    auto part = cached ? shards_[i]->PrivateNnCached(cloaked, category, cover)
                       : shards_[i]->PrivateNn(cloaked, category);
    if (part.ok()) {
      probe_span.AddAttr("candidates",
                         static_cast<double>(part.value().candidates.size()));
      guard.Cover(i);
      parts.push_back(std::move(part).value());
    } else if (part.status().code() == StatusCode::kNotFound) {
      guard.Cover(i);
    } else {
      guard.Fail(part.status());
    }
  };
  // The stripes under the cloak always answer; they set the dominance bound.
  const auto [first, last] = StripeRangeOf(cloaked);
  for (uint32_t i = first; i <= last; ++i) consult(i);
  // An off-stripe shard whose whole stripe lies farther than the best
  // guaranteed candidate distance can only return objects the cross-shard
  // dominance prune would drop — skipping it keeps the merged candidate
  // list bit-identical (every skipped object o has MinDist(o, R) >= the
  // stripe distance > bound >= the union's min MaxDist). The bound stays
  // valid under a partial (degraded) home fan-out: it is computed from the
  // candidates actually collected, and anything it skips is dominated by
  // one of them — so dominance-skipped stripes count as covered even in a
  // degraded answer.
  double bound = std::numeric_limits<double>::infinity();
  for (const auto& part : parts) {
    for (const auto& c : part.candidates) {
      bound = std::min(bound, MaxDist(c.location, cloaked));
    }
  }
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    if (i >= first && i <= last) continue;
    if (StripeMinDist(i, cloaked) > bound) {
      guard.Cover(i);
      continue;
    }
    consult(i);
  }
  fanout.AddAttr("shards", static_cast<double>(shards_touched));
  guard.Finish(&fanout);
  fanout.End();
  if (parts.empty()) {
    total.Cancel();
    return guard.EmptyError(
        Status::NotFound("no public objects in category"));
  }
  obs::ScopedTimer merge(nn_obs_.merge_us);
  obs::TraceSpan merge_span(obs::CurrentTraceContext(), "merge");
  auto merged = MergePrivateNnResults(cloaked, std::move(parts));
  merge_span.End();
  merge.Stop();
  guard.Stamp(&merged);
  const uint64_t candidates = merged.candidates.size();
  RecordQuery(nn_obs_, "private_nn", total.Stop(), cloaked.Area(),
              shards_touched, candidates,
              candidates * options_.wire_cost.bytes_per_object);
  return merged;
}

Result<PrivateKnnResult> CloakDbService::PrivateKnn(const Rect& cloaked,
                                                    size_t k,
                                                    Category category) const {
  QueryResponse response =
      ExecuteQuery(QueryRequest::Knn(cloaked, k, category));
  if (!response.ok()) return response.status();
  return KnnFromResponse(std::move(response));
}

Result<PrivateKnnResult> CloakDbService::PrivateKnnImpl(
    const Rect& cloaked, size_t k, Category category, bool cached,
    const Rect& cover, Deadline deadline, uint32_t shard_budget) const {
  if (cloaked.IsEmpty())
    return Status::InvalidArgument("cloaked region must be non-empty");
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  obs::ScopedTimer total(knn_obs_.latency_us);
  std::vector<PrivateKnnResult> parts;
  uint32_t shards_touched = 0;
  FanoutGuard guard(this, deadline, shard_budget);
  obs::TraceSpan fanout(obs::CurrentTraceContext(), "fanout");
  auto consult = [&](uint32_t i) {
    if (!guard.AllowProbe()) return;
    ++shards_touched;
    obs::TraceSpan probe_span(fanout.context(), "shard.probe");
    probe_span.AddAttr("shard", static_cast<double>(i));
    obs::ScopedTraceContext probe_scope(probe_span.context());
    if (InjectProbeFault(&probe_span) == ProbeFault::kFail) {
      guard.Fail(Status::Internal("injected probe failure"));
      return;
    }
    auto part = cached ? shards_[i]->PrivateKnnCached(cloaked, k, category,
                                                      cover)
                       : shards_[i]->PrivateKnn(cloaked, k, category);
    if (part.ok()) {
      probe_span.AddAttr("candidates",
                         static_cast<double>(part.value().candidates.size()));
      guard.Cover(i);
      parts.push_back(std::move(part).value());
    } else if (part.status().code() == StatusCode::kNotFound) {
      guard.Cover(i);
    } else {
      guard.Fail(part.status());
    }
  };
  const auto [first, last] = StripeRangeOf(cloaked);
  for (uint32_t i = first; i <= last; ++i) consult(i);
  // k-dominance analogue of the NN stripe skip: with >= k home candidates,
  // the k-th smallest MaxDist bounds what a farther stripe could add — any
  // of its objects o already has k known candidates strictly closer than o
  // for every possible querier position, so o is never an answer. Like the
  // NN bound, this holds for whatever subset of candidates was actually
  // collected, so the skip stays sound (and counts as coverage) when the
  // home fan-out was degraded.
  double bound = std::numeric_limits<double>::infinity();
  std::vector<double> max_dists;
  for (const auto& part : parts) {
    for (const auto& c : part.candidates) {
      max_dists.push_back(MaxDist(c.location, cloaked));
    }
  }
  if (max_dists.size() >= k) {
    std::nth_element(max_dists.begin(), max_dists.begin() + (k - 1),
                     max_dists.end());
    bound = max_dists[k - 1];
  }
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    if (i >= first && i <= last) continue;
    if (StripeMinDist(i, cloaked) > bound) {
      guard.Cover(i);
      continue;
    }
    consult(i);
  }
  fanout.AddAttr("shards", static_cast<double>(shards_touched));
  guard.Finish(&fanout);
  fanout.End();
  if (parts.empty()) {
    total.Cancel();
    return guard.EmptyError(
        Status::NotFound("no public objects in category"));
  }
  obs::ScopedTimer merge(knn_obs_.merge_us);
  obs::TraceSpan merge_span(obs::CurrentTraceContext(), "merge");
  auto merged = MergePrivateKnnResults(cloaked, k, std::move(parts));
  merge_span.End();
  merge.Stop();
  guard.Stamp(&merged);
  const uint64_t candidates = merged.candidates.size();
  RecordQuery(knn_obs_, "private_knn", total.Stop(), cloaked.Area(),
              shards_touched, candidates,
              candidates * options_.wire_cost.bytes_per_object);
  return merged;
}

Result<PublicCountResult> CloakDbService::PublicCount(
    const Rect& window) const {
  // The rich count result (PMF, per-object contributions) stays a library
  // feature: this method keeps its own admission so those callers do not
  // pay envelope summarization. The envelope path shares PublicCountImpl.
  RootTrace trace(tracer_.get(), "query.public_count");
  obs::ScopedTraceContext scope(trace.context());
  Admission admission = AdmitQuery();
  if (admission.degraded_admission) trace.AddAttr("degraded_admission", 1.0);
  if (!admission.status.ok()) {
    trace.AddAttr("shed", 1.0);
    return admission.status;
  }
  return PublicCountImpl(window, admission.deadline, admission.shard_budget);
}

Result<PublicCountResult> CloakDbService::PublicCountImpl(
    const Rect& window, Deadline deadline, uint32_t shard_budget) const {
  obs::ScopedTimer total(count_obs_.latency_us);
  std::vector<PublicCountResult> parts;
  parts.reserve(shards_.size());
  FanoutGuard guard(this, deadline, shard_budget);
  obs::TraceSpan fanout(obs::CurrentTraceContext(), "fanout");
  fanout.AddAttr("shards", static_cast<double>(shards_.size()));
  for (const auto& shard : shards_) {
    if (!guard.AllowProbe()) continue;
    obs::TraceSpan probe_span(fanout.context(), "shard.probe");
    probe_span.AddAttr("shard", static_cast<double>(shard->index()));
    obs::ScopedTraceContext probe_scope(probe_span.context());
    if (InjectProbeFault(&probe_span) == ProbeFault::kFail) {
      guard.Fail(Status::Internal("injected probe failure"));
      continue;
    }
    auto part = options_.enable_shared_execution
                    ? shard->PublicCountCached(window)
                    : shard->PublicCount(window);
    if (!part.ok()) {
      // Validation errors (empty window) are identical on every shard, so
      // they surface directly instead of reading as a shard failure.
      if (part.status().code() == StatusCode::kInvalidArgument) {
        total.Cancel();
        return part.status();
      }
      guard.Fail(part.status());
      continue;
    }
    guard.Cover(shard->index());
    parts.push_back(std::move(part).value());
  }
  guard.Finish(&fanout);
  fanout.End();
  if (parts.empty()) {
    total.Cancel();
    return guard.EmptyError(Status::Internal("no shard answered the count"));
  }
  obs::ScopedTimer merge(count_obs_.merge_us);
  obs::TraceSpan merge_span(obs::CurrentTraceContext(), "merge");
  auto merged = MergePublicCountResults(std::move(parts));
  merge_span.End();
  merge.Stop();
  if (!merged.ok()) {
    total.Cancel();
    return merged.status();
  }
  guard.Stamp(&merged.value());
  // A count ships three scalars, not a candidate list — wire bytes 0; the
  // contribution-list size still tracks the fan-in work.
  RecordQuery(count_obs_, "public_count", total.Stop(), window.Area(),
              guard.probes, merged.value().contributions.size(), 0);
  return merged;
}

Result<HeatmapResult> CloakDbService::Heatmap(uint32_t resolution) const {
  QueryResponse response = ExecuteQuery(QueryRequest::HeatmapAt(resolution));
  if (!response.ok()) return response.status();
  return HeatmapFromResponse(std::move(response));
}

Result<HeatmapResult> CloakDbService::HeatmapImpl(uint32_t resolution,
                                                  Deadline deadline,
                                                  uint32_t shard_budget) const {
  obs::ScopedTimer total(heatmap_obs_.latency_us);
  std::vector<HeatmapResult> parts;
  parts.reserve(shards_.size());
  FanoutGuard guard(this, deadline, shard_budget);
  obs::TraceSpan fanout(obs::CurrentTraceContext(), "fanout");
  fanout.AddAttr("shards", static_cast<double>(shards_.size()));
  for (const auto& shard : shards_) {
    if (!guard.AllowProbe()) continue;
    obs::TraceSpan probe_span(fanout.context(), "shard.probe");
    probe_span.AddAttr("shard", static_cast<double>(shard->index()));
    obs::ScopedTraceContext probe_scope(probe_span.context());
    if (InjectProbeFault(&probe_span) == ProbeFault::kFail) {
      guard.Fail(Status::Internal("injected probe failure"));
      continue;
    }
    auto part = shard->Heatmap(resolution);
    if (!part.ok()) {
      if (part.status().code() == StatusCode::kInvalidArgument) {
        total.Cancel();
        return part.status();
      }
      guard.Fail(part.status());
      continue;
    }
    guard.Cover(shard->index());
    parts.push_back(std::move(part).value());
  }
  guard.Finish(&fanout);
  fanout.End();
  if (parts.empty()) {
    total.Cancel();
    return guard.EmptyError(
        Status::Internal("no shard answered the heatmap"));
  }
  obs::ScopedTimer merge(heatmap_obs_.merge_us);
  obs::TraceSpan merge_span(obs::CurrentTraceContext(), "merge");
  auto merged = MergeHeatmapResults(std::move(parts));
  merge_span.End();
  merge.Stop();
  if (!merged.ok()) {
    total.Cancel();
    return merged.status();
  }
  guard.Stamp(&merged.value());
  RecordQuery(heatmap_obs_, "heatmap", total.Stop(), options_.space.Area(),
              guard.probes, merged.value().expected.size(), 0);
  return merged;
}

BatchQueryResult CloakDbService::ExecuteOne(const BatchQuery& query,
                                            bool cached,
                                            const Rect& cover) const {
  const QueryRequest& request = query.request;
  switch (request.kind) {
    case QueryKind::kPrivateRange: {
      auto range = PrivateRangeImpl(request.region, request.radius,
                                    request.category, request.range_options(),
                                    cached, cover, query.deadline,
                                    query.shard_budget);
      return range.ok() ? ResponseFromRange(std::move(range).value())
                        : MakeErrorResponse(request.kind, range.status());
    }
    case QueryKind::kPrivateNn: {
      auto nn = PrivateNnImpl(request.region, request.category, cached, cover,
                              query.deadline, query.shard_budget);
      return nn.ok() ? ResponseFromNn(std::move(nn).value())
                     : MakeErrorResponse(request.kind, nn.status());
    }
    case QueryKind::kPrivateKnn: {
      auto knn = PrivateKnnImpl(request.region,
                                static_cast<size_t>(request.k),
                                request.category, cached, cover,
                                query.deadline, query.shard_budget);
      return knn.ok() ? ResponseFromKnn(std::move(knn).value())
                      : MakeErrorResponse(request.kind, knn.status());
    }
    default:
      return MakeErrorResponse(
          request.kind,
          Status::InvalidArgument("only private query kinds are batchable"));
  }
}

std::vector<BatchQueryResult> CloakDbService::ExecuteBatch(
    const std::vector<BatchQuery>& queries) const {
  std::vector<BatchQueryResult> results(queries.size());
  // The leader's execution is one span in the first traced member's trace;
  // every member (including followers whose submitting threads are parked
  // in the batcher) executes under a "batch.adopt" span in its *own* trace,
  // linked to the leader span — the cross-trace record of the adoption.
  obs::TraceContext lead_ctx;
  for (const BatchQuery& query : queries) {
    if (query.trace.active()) {
      lead_ctx = query.trace;
      break;
    }
  }
  obs::TraceSpan batch_span(lead_ctx, "batch.execute");
  batch_span.AddAttr("width", static_cast<double>(queries.size()));
  auto run_one = [&](size_t member, bool cached, const Rect& cover) {
    obs::TraceSpan adopt(queries[member].trace, "batch.adopt");
    if (adopt.active() && batch_span.active())
      adopt.SetLink(batch_span.span_id());
    obs::ScopedTraceContext scope(adopt.active() ? adopt.context()
                                                 : obs::TraceContext{});
    results[member] = ExecuteOne(queries[member], cached, cover);
  };
  if (!options_.enable_shared_execution) {
    for (size_t i = 0; i < queries.size(); ++i)
      run_one(i, /*cached=*/false, Rect());
    return results;
  }
  if (shared_batch_width_ != nullptr)
    shared_batch_width_->Record(static_cast<double>(queries.size()));
  const std::vector<QueryCluster> clusters = ClusterBatch(queries, signature_);
  for (const QueryCluster& cluster : clusters) {
    if (shared_cluster_fanin_ != nullptr)
      shared_cluster_fanin_->Record(
          static_cast<double>(cluster.members.size()));
    for (size_t member : cluster.members)
      run_one(member, /*cached=*/true, cluster.cover);
  }
  return results;
}

std::vector<BatchQueryResult> CloakDbService::ExecuteQueryBatch(
    const std::vector<BatchQuery>& queries) const {
  return ExecuteBatch(queries);
}

void CloakDbService::RecordQuery(const QueryKindObs& obs, const char* kind,
                                 double latency_us, double region_area,
                                 uint32_t shards_touched, uint64_t candidates,
                                 uint64_t wire_bytes) const {
  obs.shards_touched->Record(static_cast<double>(shards_touched));
  obs.candidates->Record(static_cast<double>(candidates));
  if (wire_bytes > 0) obs.wire_bytes->Increment(wire_bytes);
  // A slow entry keeps its trace id: slow traces are tail-kept, so the
  // entry links to a complete span tree in the export.
  slow_log_.Record({kind, latency_us, region_area, shards_touched, candidates,
                    obs::CurrentTraceContext().trace_id});
}

ServiceStats CloakDbService::Stats() const {
  ServiceStats stats = AggregateShardStats(PerShardStats(), worker_count_);
  stats.version = BuildInfoString();
  stats.durability_mode =
      storage::DurabilityModeName(options_.durability_mode);
  stats.data_dir = options_.data_dir;
  stats.slow_queries = slow_log_.TopN();
  stats.uptime_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
  stats.snapshot_unix_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  stats.robustness.queries_shed = robustness_obs_.queries_shed->Value();
  stats.robustness.queries_admitted_degraded =
      robustness_obs_.queries_admitted_degraded->Value();
  stats.robustness.queries_degraded =
      robustness_obs_.queries_degraded->Value();
  stats.robustness.deadline_hits = robustness_obs_.deadline_hits->Value();
  stats.robustness.updates_shed = robustness_obs_.updates_shed->Value();
  if (fault_injector_ != nullptr) {
    // The injector's own counts are ground truth; the fault.* metrics are
    // incremented at the same sites and must reconcile exactly.
    stats.robustness.injected_probe_failures =
        fault_injector_->probe_failures();
    stats.robustness.injected_probe_delays = fault_injector_->probe_delays();
    stats.robustness.injected_queue_stalls = fault_injector_->queue_stalls();
  }
  return stats;
}

std::vector<ShardStats> CloakDbService::PerShardStats() const {
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) stats.push_back(shard->Stats());
  return stats;
}

}  // namespace cloakdb
