// Candidate-list caching for the shared-execution engine.
//
// A CandidateCache holds the materialized supersets of recent widened
// probes (private-over-public queries) and whole public-count answers,
// keyed by a *grid-cell signature*: the cloaked region snapped outward to
// a fixed signature grid plus a power-of-two-quantized reach. Snapping is
// what makes repeated and drifting queries collide on the same key — any
// two regions covering the same cell block with comparable reach share one
// probe — while keeping the cached superset a provable superset of every
// matching query's isolated fetch (the snapped cover contains the region,
// the quantized reach bounds the radius).
//
// Invalidation is incremental and region-precise: a cloaked update only
// evicts count entries whose coverage intersects the update's (old or new)
// region, and a public-data mutation only evicts probe entries whose
// coverage intersects the mutation — entries elsewhere in the space
// survive the write untouched.
//
// Thread safety: every method locks the internal mutex, a leaf lock. The
// owning Shard calls Lookup/Insert under its shared (reader) lock and the
// Invalidate* methods under its exclusive lock, so a probe and its insert
// can never interleave with a conflicting write.

#ifndef CLOAKDB_SERVICE_CANDIDATE_CACHE_H_
#define CLOAKDB_SERVICE_CANDIDATE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "geom/rect.h"
#include "obs/metrics.h"
#include "server/object_store.h"
#include "server/public_queries.h"

namespace cloakdb {

/// What a cache entry answers.
enum class CacheKind : uint8_t {
  kRange = 0,  ///< Probe superset for private range queries.
  kNn = 1,     ///< Probe superset for private NN queries.
  kKnn = 2,    ///< Probe superset for private k-NN queries.
  kCount = 3,  ///< Complete public-count answer for an exact window.
};

/// Snaps regions to a fixed G x G signature grid over the service space
/// and quantizes probe reaches to powers of two of the cell size — the two
/// normalizations that turn "similar query" into "equal cache key".
class CellSignature {
 public:
  CellSignature() = default;
  /// `cells` >= 1 per side; a degenerate space falls back to one cell.
  CellSignature(const Rect& space, uint32_t cells);

  /// The cell-aligned cover of `region`: the smallest block of signature
  /// cells containing region ∩ space. Always contains region ∩ space;
  /// contains all of `region` when the region lies inside the space.
  Rect SnapToCells(const Rect& region) const;

  /// The smallest cell_size * 2^i >= reach (i >= 0). Monotone and >= both
  /// `reach` and the cell size, so a probe widened to the quantized reach
  /// covers every query it is keyed for.
  double QuantizeReach(double reach) const;

  double cell_size() const { return cell_size_; }

 private:
  Rect space_{0.0, 0.0, 1.0, 1.0};
  uint32_t cells_ = 1;
  double cell_w_ = 1.0;
  double cell_h_ = 1.0;
  double cell_size_ = 1.0;  ///< max(cell_w_, cell_h_).
};

/// Cache key: kind + category + snapped region + quantized reach. Count
/// entries use the exact window as region and reach 0 (their answer is
/// window-exact, so no snapping is sound for them).
struct CacheKey {
  CacheKind kind = CacheKind::kRange;
  Category category = 0;
  Rect region;
  double reach = 0.0;

  bool operator==(const CacheKey& other) const {
    return kind == other.kind && category == other.category &&
           region.min_x == other.region.min_x &&
           region.min_y == other.region.min_y &&
           region.max_x == other.region.max_x &&
           region.max_y == other.region.max_y && reach == other.reach;
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const;
};

/// One cached unit of work. Probe entries carry the materialized superset;
/// count entries carry the full answer. `coverage` is the region whose
/// underlying data the entry summarizes — the granule invalidation tests
/// against.
struct CacheEntry {
  std::vector<PublicObject> superset;  ///< kRange/kNn/kKnn.
  PublicCountResult count;             ///< kCount.
  Rect coverage;
};

/// Optional cache observability (counters live in the service registry and
/// stripe internally; null disables recording).
struct CandidateCacheObs {
  obs::Counter* hits = nullptr;
  obs::Counter* misses = nullptr;
  obs::Counter* insertions = nullptr;
  obs::Counter* lru_evictions = nullptr;
  obs::Counter* invalidations = nullptr;
};

/// A bounded LRU cache with region-precise invalidation. One instance per
/// Shard (that is the "sharded" in sharded LRU: no cross-shard contention).
class CandidateCache {
 public:
  /// `capacity` 0 disables the cache (Lookup always misses, Insert drops).
  explicit CandidateCache(size_t capacity);

  bool enabled() const { return capacity_ > 0; }
  size_t capacity() const { return capacity_; }
  size_t size() const;

  void SetObs(const CandidateCacheObs& obs) { obs_ = obs; }

  /// Returns the entry and refreshes its recency, or nullptr on a miss.
  std::shared_ptr<const CacheEntry> Lookup(const CacheKey& key);

  /// Inserts (or replaces) an entry, evicting the least recently used
  /// entries beyond capacity.
  void Insert(const CacheKey& key, std::shared_ptr<const CacheEntry> entry);
  void Insert(const CacheKey& key, CacheEntry entry);

  /// Evicts probe entries (kRange/kNn/kKnn) whose coverage intersects a
  /// mutated public region — a point insert only kills the probes that
  /// could have fetched it.
  void InvalidatePublicRegion(const Rect& region);

  /// Evicts every probe entry of `category` (bulk load replaces the
  /// category wholesale, so nothing region-precise survives).
  void InvalidateCategory(Category category);

  /// Evicts count entries whose coverage intersects a cloaked update's
  /// region (callers pass both the old and the new region of the user).
  void InvalidatePrivateRegion(const Rect& region);

  void Clear();

 private:
  struct Node {
    CacheKey key;
    std::shared_ptr<const CacheEntry> entry;
  };
  using LruList = std::list<Node>;

  // Walks all entries and evicts those matching `pred` (mu_ held).
  template <typename Pred>
  void EvictMatching(const Pred& pred);

  const size_t capacity_;
  CandidateCacheObs obs_;
  mutable std::mutex mu_;
  LruList lru_;  ///< Front = most recently used.
  std::unordered_map<CacheKey, LruList::iterator, CacheKeyHash> index_;
  /// Entry counts per group, so invalidation scans are skipped entirely
  /// when no entry of the affected group exists (the common case: private-
  /// query-heavy workloads never pay for count invalidation and vice
  /// versa).
  size_t probe_entries_ = 0;
  size_t count_entries_ = 0;
};

}  // namespace cloakdb

#endif  // CLOAKDB_SERVICE_CANDIDATE_CACHE_H_
