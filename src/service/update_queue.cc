#include "service/update_queue.h"

#include <algorithm>

#include "obs/scoped_timer.h"

namespace cloakdb {

BoundedUpdateQueue::BoundedUpdateQueue(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

Status BoundedUpdateQueue::Push(const PendingUpdate& update) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!closed_ && items_.size() >= capacity_) {
    // Producer is about to block on backpressure: measure the stall.
    auto blocked_from = std::chrono::steady_clock::now();
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (obs_.blocked_push_us != nullptr) {
      obs_.blocked_push_us->Record(obs::MicrosBetween(
          blocked_from, std::chrono::steady_clock::now()));
    }
  }
  if (closed_) return Status::FailedPrecondition("update queue closed");
  items_.push_back(update);
  depth_.store(items_.size(), std::memory_order_relaxed);
  if (obs_.depth_hwm != nullptr)
    obs_.depth_hwm->UpdateMax(static_cast<double>(items_.size()));
  // Wake one drainer; batching means a single wake amortizes well.
  not_empty_.notify_one();
  return Status::OK();
}

Status BoundedUpdateQueue::TryPush(const PendingUpdate& update) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return Status::FailedPrecondition("update queue closed");
  if (items_.size() >= capacity_)
    return Status::ResourceExhausted("update queue full");
  items_.push_back(update);
  depth_.store(items_.size(), std::memory_order_relaxed);
  if (obs_.depth_hwm != nullptr)
    obs_.depth_hwm->UpdateMax(static_cast<double>(items_.size()));
  not_empty_.notify_one();
  return Status::OK();
}

size_t BoundedUpdateQueue::PopLocked(size_t max,
                                     std::vector<PendingUpdate>* out) {
  size_t n = std::min(max, items_.size());
  for (size_t i = 0; i < n; ++i) {
    out->push_back(items_.front());
    items_.pop_front();
  }
  depth_.store(items_.size(), std::memory_order_relaxed);
  if (n > 0) not_full_.notify_all();
  return n;
}

size_t BoundedUpdateQueue::PopBatch(size_t max,
                                    std::vector<PendingUpdate>* out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
  return PopLocked(max, out);
}

size_t BoundedUpdateQueue::TryPopBatch(size_t max,
                                       std::vector<PendingUpdate>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  return PopLocked(max, out);
}

void BoundedUpdateQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_full_.notify_all();
  not_empty_.notify_all();
}

size_t BoundedUpdateQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

bool BoundedUpdateQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace cloakdb
