// Road-constrained mobility: the network analogue of the free-space
// random-waypoint model. Movers travel along shortest paths between random
// target intersections, so every position is on a road segment — the
// realistic movement pattern for evaluating graph obfuscation over time.

#ifndef CLOAKDB_ROADNET_NETWORK_MOVEMENT_H_
#define CLOAKDB_ROADNET_NETWORK_MOVEMENT_H_

#include <unordered_map>
#include <vector>

#include "index/grid_index.h"
#include "roadnet/road_network.h"
#include "util/random.h"
#include "util/status.h"

namespace cloakdb {

/// A mover's instantaneous network position: on the edge (from, to), a
/// fraction of the way along it (0 = at `from`, 1 = at `to`). A mover
/// resting at a vertex has from == to and progress 0.
struct NetworkPosition {
  VertexId from = 0;
  VertexId to = 0;
  double progress = 0.0;

  bool AtVertex() const { return from == to || progress >= 1.0; }
};

/// Shortest-path random-waypoint movement over a road network.
class NetworkMovementModel {
 public:
  /// `network` must outlive the model and be connected for movers to reach
  /// arbitrary targets. Speeds are in network-length units per time unit.
  NetworkMovementModel(const RoadNetwork* network, uint64_t seed = 0x40ADULL,
                       double min_speed = 0.5, double max_speed = 2.0);

  /// Adds a mover at `start` vertex. Fails on duplicates/unknown vertex.
  Status AddUser(ObjectId id, VertexId start);

  /// Advances every mover by `dt` time units along its current path.
  void Step(double dt);

  /// Current network position of a mover.
  Result<NetworkPosition> PositionOf(ObjectId id) const;

  /// The nearest vertex to the mover (its own edge endpoint by progress).
  Result<VertexId> NearestVertexOf(ObjectId id) const;

  /// Euclidean embedding of the mover's position (for map display).
  Result<Point> LocationOf(ObjectId id) const;

  size_t size() const { return movers_.size(); }

 private:
  struct Mover {
    std::vector<VertexId> path;  // remaining vertices, path.front() = next
    NetworkPosition position;
    double speed = 1.0;
  };

  void PickNewPath(Mover* m);
  void AdvanceMover(Mover* m, double dt);

  const RoadNetwork* network_;
  Rng rng_;
  double min_speed_;
  double max_speed_;
  std::unordered_map<ObjectId, Mover> movers_;
  std::vector<ObjectId> order_;
};

}  // namespace cloakdb

#endif  // CLOAKDB_ROADNET_NETWORK_MOVEMENT_H_
