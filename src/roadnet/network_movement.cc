#include "roadnet/network_movement.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace cloakdb {

NetworkMovementModel::NetworkMovementModel(const RoadNetwork* network,
                                           uint64_t seed, double min_speed,
                                           double max_speed)
    : network_(network),
      rng_(seed),
      min_speed_(min_speed),
      max_speed_(max_speed) {
  assert(min_speed > 0.0);
  assert(max_speed >= min_speed);
}

Status NetworkMovementModel::AddUser(ObjectId id, VertexId start) {
  if (movers_.count(id) > 0)
    return Status::AlreadyExists("mover id already present");
  if (start >= network_->num_vertices())
    return Status::OutOfRange("unknown start vertex");
  Mover m;
  m.position = {start, start, 0.0};
  PickNewPath(&m);
  movers_.emplace(id, std::move(m));
  order_.push_back(id);
  return Status::OK();
}

// Builds a shortest path from the mover's resting vertex to a random
// target via Dijkstra with parent tracking.
void NetworkMovementModel::PickNewPath(Mover* m) {
  VertexId source = m->position.to;
  m->speed = rng_.Uniform(min_speed_, max_speed_);
  m->path.clear();
  if (network_->num_vertices() < 2) return;

  VertexId target = source;
  for (int attempt = 0; attempt < 8 && target == source; ++attempt) {
    target = static_cast<VertexId>(rng_.NextBelow(network_->num_vertices()));
  }
  if (target == source) return;

  // Dijkstra with parents (local; path lengths are short relative to the
  // update cadence, and movers repath rarely).
  std::vector<double> dist(network_->num_vertices(),
                           std::numeric_limits<double>::infinity());
  std::vector<VertexId> parent(network_->num_vertices(), kNoVertex);
  using Item = std::pair<double, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  dist[source] = 0.0;
  queue.push({0.0, source});
  while (!queue.empty()) {
    auto [d, v] = queue.top();
    queue.pop();
    if (v == target) break;
    if (d > dist[v]) continue;
    for (const auto& [to, w] : network_->NeighborsOf(v)) {
      double nd = d + w;
      if (nd < dist[to]) {
        dist[to] = nd;
        parent[to] = v;
        queue.push({nd, to});
      }
    }
  }
  if (std::isinf(dist[target])) return;  // unreachable: rest in place

  // Reconstruct source -> target (excluding the source itself).
  std::vector<VertexId> reversed;
  for (VertexId v = target; v != source; v = parent[v]) {
    reversed.push_back(v);
  }
  m->path.assign(reversed.rbegin(), reversed.rend());
}

void NetworkMovementModel::AdvanceMover(Mover* m, double dt) {
  double budget = m->speed * dt;
  int repaths = 0;
  while (budget > 0.0) {
    if (m->position.AtVertex() && m->path.empty()) {
      if (++repaths > 3) return;  // isolated vertex or tiny graph
      PickNewPath(m);
      if (m->path.empty()) return;
    }
    if (m->position.AtVertex()) {
      // Start the next edge of the path.
      VertexId from = m->position.to;
      VertexId next = m->path.front();
      m->path.erase(m->path.begin());
      m->position = {from, next, 0.0};
    }
    double edge_len =
        Distance(network_->LocationOf(m->position.from),
                 network_->LocationOf(m->position.to));
    if (edge_len <= 0.0) {
      m->position = {m->position.to, m->position.to, 0.0};
      continue;
    }
    double remaining = (1.0 - m->position.progress) * edge_len;
    if (budget >= remaining) {
      budget -= remaining;
      m->position = {m->position.to, m->position.to, 0.0};
    } else {
      m->position.progress += budget / edge_len;
      budget = 0.0;
    }
  }
}

void NetworkMovementModel::Step(double dt) {
  assert(dt >= 0.0);
  for (ObjectId id : order_) {
    AdvanceMover(&movers_.at(id), dt);
  }
}

Result<NetworkPosition> NetworkMovementModel::PositionOf(ObjectId id) const {
  auto it = movers_.find(id);
  if (it == movers_.end()) return Status::NotFound("mover id not present");
  return it->second.position;
}

Result<VertexId> NetworkMovementModel::NearestVertexOf(ObjectId id) const {
  auto position = PositionOf(id);
  if (!position.ok()) return position.status();
  const NetworkPosition& p = position.value();
  return p.progress < 0.5 ? p.from : p.to;
}

Result<Point> NetworkMovementModel::LocationOf(ObjectId id) const {
  auto position = PositionOf(id);
  if (!position.ok()) return position.status();
  const NetworkPosition& p = position.value();
  Point a = network_->LocationOf(p.from);
  Point b = network_->LocationOf(p.to);
  return a + (b - a) * p.progress;
}

}  // namespace cloakdb
