// Road-network substrate.
//
// The paper's related work (Section 2.1, location perturbation) includes
// graph-based obfuscation over a road network [Duckham & Kulik]: instead of
// a Euclidean rectangle, the cloak is a *set of graph vertices* containing
// the user's true position, and queries run on network distance. This
// module provides the network itself: an undirected weighted graph with
// spatial vertices, synthetic generators, Dijkstra shortest paths, and
// network nearest-neighbor search — the substrate obfuscation.h builds on.

#ifndef CLOAKDB_ROADNET_ROAD_NETWORK_H_
#define CLOAKDB_ROADNET_ROAD_NETWORK_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "util/random.h"
#include "util/status.h"

namespace cloakdb {

/// Index of a vertex in a RoadNetwork (dense, 0-based).
using VertexId = uint32_t;

/// Marker for "no vertex".
inline constexpr VertexId kNoVertex = std::numeric_limits<VertexId>::max();

/// Undirected weighted graph with embedded vertices.
class RoadNetwork {
 public:
  RoadNetwork() = default;

  /// Adds a vertex at `location`; returns its id.
  VertexId AddVertex(const Point& location);

  /// Adds an undirected edge weighted by Euclidean length (or an explicit
  /// positive weight). Fails with OutOfRange on unknown vertices and
  /// InvalidArgument on self-loops or non-positive weights.
  Status AddEdge(VertexId a, VertexId b, double weight = -1.0);

  size_t num_vertices() const { return vertices_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// Position of a vertex. Requires a valid id.
  const Point& LocationOf(VertexId v) const { return vertices_[v]; }

  /// Neighbors of a vertex as (vertex, weight) pairs.
  const std::vector<std::pair<VertexId, double>>& NeighborsOf(
      VertexId v) const {
    return adjacency_[v];
  }

  /// The vertex closest (Euclidean) to `p`; kNoVertex on an empty graph.
  VertexId NearestVertex(const Point& p) const;

  /// Single-source shortest-path distances to all vertices (+inf when
  /// unreachable). Fails with OutOfRange on an unknown source.
  Result<std::vector<double>> ShortestPaths(VertexId source) const;

  /// Shortest network distance between two vertices (+inf if
  /// disconnected). Early-exits once the target is settled.
  Result<double> NetworkDistance(VertexId from, VertexId to) const;

  /// All vertices within network distance `radius` of `source`, paired
  /// with their distances (the Dijkstra ball — also the building block of
  /// vertex-set obfuscation).
  Result<std::vector<std::pair<VertexId, double>>> VerticesWithin(
      VertexId source, double radius) const;

  /// The nearest vertex among `targets` by network distance (multi-target
  /// early-exit Dijkstra). `targets` is an indicator over vertex ids.
  /// Returns kNoVertex when none is reachable.
  Result<VertexId> NetworkNearest(VertexId source,
                                  const std::vector<bool>& targets) const;

  /// True when every vertex is reachable from vertex 0.
  bool IsConnected() const;

 private:
  bool ValidVertex(VertexId v) const { return v < vertices_.size(); }

  std::vector<Point> vertices_;
  std::vector<std::vector<std::pair<VertexId, double>>> adjacency_;
  size_t num_edges_ = 0;
};

/// Options of the synthetic grid-road generator.
struct GridNetworkOptions {
  uint32_t rows = 16;
  uint32_t cols = 16;
  /// Fraction of non-bridging edges randomly removed (street closures),
  /// in [0, 1). Connectivity is preserved.
  double drop_fraction = 0.2;
  /// Vertex positions are jittered by this fraction of the cell size so
  /// the network is not perfectly regular.
  double jitter_fraction = 0.25;
};

/// Generates a Manhattan-style road network covering `space`. The result
/// is always connected. Fails with InvalidArgument on degenerate sizes.
Result<RoadNetwork> MakeGridNetwork(const Rect& space,
                                    const GridNetworkOptions& options,
                                    Rng* rng);

}  // namespace cloakdb

#endif  // CLOAKDB_ROADNET_ROAD_NETWORK_H_
