#include "roadnet/obfuscation.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_set>

namespace cloakdb {

Result<ObfuscatedLocation> ObfuscateVertex(const RoadNetwork& network,
                                           VertexId true_vertex,
                                           const ObfuscationOptions& options,
                                           Rng* rng) {
  if (true_vertex >= network.num_vertices())
    return Status::OutOfRange("unknown vertex");

  // Pick a displaced anchor: a random vertex among the hop-neighborhood of
  // the true vertex, so the true vertex is not always the set's center.
  VertexId anchor = true_vertex;
  const auto& neighbors = network.NeighborsOf(true_vertex);
  if (!neighbors.empty() && rng->Bernoulli(0.75)) {
    anchor = neighbors[rng->NextBelow(neighbors.size())].first;
  }

  // Grow a Dijkstra ball around the anchor until it covers both the true
  // vertex and the required set size.
  auto all = network.ShortestPaths(anchor);
  if (!all.ok()) return all.status();
  std::vector<std::pair<double, VertexId>> ordered;
  ordered.reserve(network.num_vertices());
  for (VertexId v = 0; v < network.num_vertices(); ++v) {
    if (!std::isinf(all.value()[v])) ordered.push_back({all.value()[v], v});
  }
  std::sort(ordered.begin(), ordered.end());

  ObfuscatedLocation cloak;
  bool has_true = false;
  for (const auto& [d, v] : ordered) {
    cloak.vertices.push_back(v);
    cloak.radius = d;
    if (v == true_vertex) has_true = true;
    if (has_true && cloak.vertices.size() >= options.min_vertices) break;
  }
  if (!has_true)
    return Status::Internal("anchor component does not reach the user");
  // Shuffle so the emission order leaks neither the anchor nor the true
  // vertex.
  rng->Shuffle(&cloak.vertices);
  return cloak;
}

Result<std::vector<VertexId>> ObfuscatedNnCandidates(
    const RoadNetwork& network, const ObfuscatedLocation& cloak,
    const std::vector<bool>& targets) {
  std::unordered_set<VertexId> seen;
  std::vector<VertexId> out;
  for (VertexId v : cloak.vertices) {
    auto nn = network.NetworkNearest(v, targets);
    if (!nn.ok()) return nn.status();
    if (nn.value() == kNoVertex)
      return Status::NotFound("no target reachable from the cloak");
    if (seen.insert(nn.value()).second) out.push_back(nn.value());
  }
  return out;
}

Result<VertexId> RefineObfuscatedNn(const RoadNetwork& network,
                                    VertexId true_vertex,
                                    const std::vector<VertexId>& candidates) {
  if (candidates.empty()) return Status::NotFound("empty candidate list");
  VertexId best = kNoVertex;
  double best_d = std::numeric_limits<double>::infinity();
  for (VertexId c : candidates) {
    auto d = network.NetworkDistance(true_vertex, c);
    if (!d.ok()) return d.status();
    if (d.value() < best_d || (d.value() == best_d && c < best)) {
      best_d = d.value();
      best = c;
    }
  }
  return best;
}

Result<ObfuscationLeakage> EvaluateObfuscationLeakage(
    const RoadNetwork& network,
    const std::vector<ObfuscationObservation>& observations, Rng* rng) {
  ObfuscationLeakage leakage;
  if (observations.empty()) return leakage;
  size_t hits = 0;
  double total_error = 0.0, total_size = 0.0;
  for (const auto& obs : observations) {
    if (obs.cloak.vertices.empty())
      return Status::InvalidArgument("empty cloak in observation");
    VertexId guess =
        obs.cloak.vertices[rng->NextBelow(obs.cloak.vertices.size())];
    if (guess == obs.true_vertex) ++hits;
    auto d = network.NetworkDistance(guess, obs.true_vertex);
    if (!d.ok()) return d.status();
    total_error += d.value();
    total_size += static_cast<double>(obs.cloak.vertices.size());
  }
  auto n = static_cast<double>(observations.size());
  leakage.mean_network_error = total_error / n;
  leakage.hit_rate = static_cast<double>(hits) / n;
  leakage.avg_set_size = total_size / n;
  return leakage;
}

}  // namespace cloakdb
