#include "roadnet/road_network.h"

#include <algorithm>
#include <queue>

#include "geom/distance.h"

namespace cloakdb {

namespace {

using QueueItem = std::pair<double, VertexId>;  // (distance, vertex)
using MinQueue =
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>;

}  // namespace

VertexId RoadNetwork::AddVertex(const Point& location) {
  vertices_.push_back(location);
  adjacency_.emplace_back();
  return static_cast<VertexId>(vertices_.size() - 1);
}

Status RoadNetwork::AddEdge(VertexId a, VertexId b, double weight) {
  if (!ValidVertex(a) || !ValidVertex(b))
    return Status::OutOfRange("edge endpoint is not a vertex");
  if (a == b) return Status::InvalidArgument("self-loops are not allowed");
  if (weight < 0.0) weight = Distance(vertices_[a], vertices_[b]);
  if (!(weight > 0.0))
    return Status::InvalidArgument("edge weight must be positive");
  adjacency_[a].push_back({b, weight});
  adjacency_[b].push_back({a, weight});
  ++num_edges_;
  return Status::OK();
}

VertexId RoadNetwork::NearestVertex(const Point& p) const {
  VertexId best = kNoVertex;
  double best_d = std::numeric_limits<double>::infinity();
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    double d = DistanceSquared(p, vertices_[v]);
    if (d < best_d) {
      best_d = d;
      best = v;
    }
  }
  return best;
}

Result<std::vector<double>> RoadNetwork::ShortestPaths(
    VertexId source) const {
  if (!ValidVertex(source))
    return Status::OutOfRange("unknown source vertex");
  std::vector<double> dist(vertices_.size(),
                           std::numeric_limits<double>::infinity());
  dist[source] = 0.0;
  MinQueue queue;
  queue.push({0.0, source});
  while (!queue.empty()) {
    auto [d, v] = queue.top();
    queue.pop();
    if (d > dist[v]) continue;  // stale entry
    for (const auto& [to, w] : adjacency_[v]) {
      double nd = d + w;
      if (nd < dist[to]) {
        dist[to] = nd;
        queue.push({nd, to});
      }
    }
  }
  return dist;
}

Result<double> RoadNetwork::NetworkDistance(VertexId from, VertexId to) const {
  if (!ValidVertex(from) || !ValidVertex(to))
    return Status::OutOfRange("unknown vertex");
  if (from == to) return 0.0;
  std::vector<double> dist(vertices_.size(),
                           std::numeric_limits<double>::infinity());
  dist[from] = 0.0;
  MinQueue queue;
  queue.push({0.0, from});
  while (!queue.empty()) {
    auto [d, v] = queue.top();
    queue.pop();
    if (v == to) return d;
    if (d > dist[v]) continue;
    for (const auto& [next, w] : adjacency_[v]) {
      double nd = d + w;
      if (nd < dist[next]) {
        dist[next] = nd;
        queue.push({nd, next});
      }
    }
  }
  return std::numeric_limits<double>::infinity();
}

Result<std::vector<std::pair<VertexId, double>>> RoadNetwork::VerticesWithin(
    VertexId source, double radius) const {
  if (!ValidVertex(source))
    return Status::OutOfRange("unknown source vertex");
  std::vector<double> dist(vertices_.size(),
                           std::numeric_limits<double>::infinity());
  std::vector<std::pair<VertexId, double>> out;
  dist[source] = 0.0;
  MinQueue queue;
  queue.push({0.0, source});
  while (!queue.empty()) {
    auto [d, v] = queue.top();
    queue.pop();
    if (d > dist[v]) continue;
    if (d > radius) break;  // settled beyond the ball: done
    out.push_back({v, d});
    for (const auto& [to, w] : adjacency_[v]) {
      double nd = d + w;
      if (nd < dist[to] && nd <= radius) {
        dist[to] = nd;
        queue.push({nd, to});
      }
    }
  }
  return out;
}

Result<VertexId> RoadNetwork::NetworkNearest(
    VertexId source, const std::vector<bool>& targets) const {
  if (!ValidVertex(source))
    return Status::OutOfRange("unknown source vertex");
  if (targets.size() != vertices_.size())
    return Status::InvalidArgument(
        "target indicator must cover every vertex");
  std::vector<double> dist(vertices_.size(),
                           std::numeric_limits<double>::infinity());
  dist[source] = 0.0;
  MinQueue queue;
  queue.push({0.0, source});
  while (!queue.empty()) {
    auto [d, v] = queue.top();
    queue.pop();
    if (d > dist[v]) continue;
    if (targets[v]) return v;  // first settled target is the nearest
    for (const auto& [to, w] : adjacency_[v]) {
      double nd = d + w;
      if (nd < dist[to]) {
        dist[to] = nd;
        queue.push({nd, to});
      }
    }
  }
  return kNoVertex;
}

bool RoadNetwork::IsConnected() const {
  if (vertices_.empty()) return true;
  auto dist = ShortestPaths(0);
  if (!dist.ok()) return false;
  for (double d : dist.value()) {
    if (std::isinf(d)) return false;
  }
  return true;
}

Result<RoadNetwork> MakeGridNetwork(const Rect& space,
                                    const GridNetworkOptions& options,
                                    Rng* rng) {
  if (space.IsEmpty() || space.Area() <= 0.0)
    return Status::InvalidArgument("network space must be non-empty");
  if (options.rows < 2 || options.cols < 2)
    return Status::InvalidArgument("grid network needs >= 2 rows and cols");
  if (options.drop_fraction < 0.0 || options.drop_fraction >= 1.0)
    return Status::InvalidArgument("drop fraction must be in [0, 1)");

  RoadNetwork network;
  double cw = space.Width() / (options.cols - 1);
  double ch = space.Height() / (options.rows - 1);
  double jx = cw * options.jitter_fraction;
  double jy = ch * options.jitter_fraction;

  for (uint32_t r = 0; r < options.rows; ++r) {
    for (uint32_t c = 0; c < options.cols; ++c) {
      Point p{space.min_x + c * cw, space.min_y + r * ch};
      if (options.jitter_fraction > 0.0) {
        p.x = std::clamp(p.x + rng->Uniform(-jx, jx), space.min_x,
                         space.max_x);
        p.y = std::clamp(p.y + rng->Uniform(-jy, jy), space.min_y,
                         space.max_y);
      }
      network.AddVertex(p);
    }
  }
  auto vertex = [&](uint32_t r, uint32_t c) {
    return static_cast<VertexId>(r * options.cols + c);
  };

  // A spanning "comb" (one full column plus all rows) guarantees
  // connectivity; every other grid edge is dropped with the configured
  // probability.
  for (uint32_t r = 0; r < options.rows; ++r) {
    for (uint32_t c = 0; c + 1 < options.cols; ++c) {
      CLOAKDB_RETURN_IF_ERROR(
          network.AddEdge(vertex(r, c), vertex(r, c + 1)));
    }
  }
  for (uint32_t r = 0; r + 1 < options.rows; ++r) {
    for (uint32_t c = 0; c < options.cols; ++c) {
      bool spanning = c == 0;
      if (!spanning && rng->Bernoulli(options.drop_fraction)) continue;
      CLOAKDB_RETURN_IF_ERROR(
          network.AddEdge(vertex(r, c), vertex(r + 1, c)));
    }
  }
  return network;
}

}  // namespace cloakdb
