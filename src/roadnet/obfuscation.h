// Graph-based location obfuscation (paper Section 2.1, location
// perturbation family: "a graph model that represents a road network",
// after Duckham & Kulik).
//
// The cloak is a connected *vertex set* containing the user's true network
// position. An adversary learns only that the user is at one of the
// vertices; query processing returns the network-NN candidates of every
// vertex in the set so client-side refinement is exact — the road-network
// analogue of the Euclidean candidate-list protocol of Section 6.2.1.

#ifndef CLOAKDB_ROADNET_OBFUSCATION_H_
#define CLOAKDB_ROADNET_OBFUSCATION_H_

#include <vector>

#include "roadnet/road_network.h"
#include "util/random.h"
#include "util/status.h"

namespace cloakdb {

/// Obfuscation parameters (the graph analogue of (k, A_min)).
struct ObfuscationOptions {
  /// Minimum number of vertices in the cloak (the imprecision level).
  size_t min_vertices = 10;
};

/// A vertex-set cloak.
struct ObfuscatedLocation {
  /// The vertices the user might be at (always contains the true vertex).
  std::vector<VertexId> vertices;
  /// Network radius of the set around its (hidden) anchor.
  double radius = 0.0;
};

/// Cloaks `true_vertex` into a connected vertex set of at least
/// `options.min_vertices` vertices (fewer only when the whole component is
/// smaller). The set is grown around a *displaced anchor* — a random
/// vertex near the true one — so the true vertex is not systematically the
/// set's center (the graph analogue of avoiding naive centered expansion,
/// Fig. 3a). Fails with OutOfRange on an unknown vertex.
Result<ObfuscatedLocation> ObfuscateVertex(const RoadNetwork& network,
                                           VertexId true_vertex,
                                           const ObfuscationOptions& options,
                                           Rng* rng);

/// Network-NN candidate set: for every vertex in the cloak, its nearest
/// target by network distance. The true vertex's NN is always included, so
/// client refinement is exact. `targets` marks target vertices. Fails when
/// no target is reachable.
Result<std::vector<VertexId>> ObfuscatedNnCandidates(
    const RoadNetwork& network, const ObfuscatedLocation& cloak,
    const std::vector<bool>& targets);

/// Client-side refinement: the candidate nearest to `true_vertex` by
/// network distance. Fails with NotFound on an empty candidate list.
Result<VertexId> RefineObfuscatedNn(const RoadNetwork& network,
                                    VertexId true_vertex,
                                    const std::vector<VertexId>& candidates);

/// Adversary evaluation: a uniform guess over the cloak's vertices;
/// reports mean network-distance error and exact-hit rate (1/|set| when
/// the cloak leaks nothing).
struct ObfuscationLeakage {
  double mean_network_error = 0.0;
  double hit_rate = 0.0;
  double avg_set_size = 0.0;
};

/// One (cloak, true vertex) observation.
struct ObfuscationObservation {
  ObfuscatedLocation cloak;
  VertexId true_vertex = 0;
};

Result<ObfuscationLeakage> EvaluateObfuscationLeakage(
    const RoadNetwork& network,
    const std::vector<ObfuscationObservation>& observations, Rng* rng);

}  // namespace cloakdb

#endif  // CLOAKDB_ROADNET_OBFUSCATION_H_
