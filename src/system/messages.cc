#include "system/messages.h"

#include <cinttypes>
#include <cstdio>

namespace cloakdb {

const char* ChannelName(Channel channel) {
  switch (channel) {
    case Channel::kUserToAnonymizer:
      return "user->anonymizer";
    case Channel::kAnonymizerToServer:
      return "anonymizer->server";
    case Channel::kServerToUser:
      return "server->user";
    case Channel::kThirdPartyToServer:
      return "third-party->server";
  }
  return "unknown";
}

void MessageCounters::Record(Channel channel, size_t bytes) {
  auto idx = static_cast<size_t>(channel);
  ++messages_[idx];
  bytes_[idx] += bytes + wire::kHeader;
}

uint64_t MessageCounters::MessageCount(Channel channel) const {
  return messages_[static_cast<size_t>(channel)];
}

uint64_t MessageCounters::ByteCount(Channel channel) const {
  return bytes_[static_cast<size_t>(channel)];
}

uint64_t MessageCounters::TotalMessages() const {
  uint64_t total = 0;
  for (auto m : messages_) total += m;
  return total;
}

uint64_t MessageCounters::TotalBytes() const {
  uint64_t total = 0;
  for (auto b : bytes_) total += b;
  return total;
}

void MessageCounters::Reset() {
  for (auto& m : messages_) m = 0;
  for (auto& b : bytes_) b = 0;
}

std::string MessageCounters::ToString() const {
  std::string out;
  char buf[128];
  for (size_t i = 0; i < kNumChannels; ++i) {
    std::snprintf(buf, sizeof(buf), "%-22s %10" PRIu64 " msgs %12" PRIu64
                  " bytes\n",
                  ChannelName(static_cast<Channel>(i)), messages_[i],
                  bytes_[i]);
    out += buf;
  }
  return out;
}

}  // namespace cloakdb
