// Full system harness: population + movement + anonymizer + server +
// clients, with ground-truth validation.
//
// This is the executable form of paper Fig. 1. Because the harness also
// owns the simulator, it knows every user's true location and can verify
// end-to-end that privacy never costs correctness: a private NN query
// answered through cloaking + candidate refinement must return exactly the
// object a non-private query would have.

#ifndef CLOAKDB_SYSTEM_SYSTEM_H_
#define CLOAKDB_SYSTEM_SYSTEM_H_

#include <memory>
#include <vector>

#include "core/anonymizer.h"
#include "server/query_processor.h"
#include "sim/movement.h"
#include "sim/poi.h"
#include "sim/population.h"
#include "sim/workload.h"
#include "system/messages.h"
#include "system/mobile_client.h"
#include "util/status.h"

namespace cloakdb {

/// End-to-end configuration.
struct LbsSystemOptions {
  Rect space{0.0, 0.0, 100.0, 100.0};
  size_t num_users = 1000;
  PopulationModel population_model = PopulationModel::kGaussianClusters;
  /// Privacy profile applied to every generated user.
  PrivacyRequirement requirement{10, 0.0,
                                 std::numeric_limits<double>::infinity()};
  AnonymizerOptions anonymizer;  ///< `space` is overwritten from above.
  /// POIs per generated category.
  size_t pois_per_category = 200;
  std::vector<Category> categories = {poi_category::kGasStation,
                                      poi_category::kRestaurant};
  RandomWaypointModel::Options movement;
  uint64_t seed = 0xC10ACULL;

  /// When true, Tick() streams all users through the anonymizer's batch
  /// API (enabling shared execution, Section 5.3) instead of one
  /// ReportLocation per client.
  bool batch_updates = false;
};

/// Aggregated end-to-end health metrics.
struct EndToEndMetrics {
  uint64_t nn_queries = 0;
  uint64_t nn_exact_matches = 0;  ///< Refined answer == ground-truth NN.
  uint64_t range_queries = 0;
  uint64_t range_exact_matches = 0;
  RunningStats nn_candidates;
  RunningStats range_candidates;

  double NnAccuracy() const {
    return nn_queries == 0
               ? 1.0
               : static_cast<double>(nn_exact_matches) / nn_queries;
  }
  double RangeAccuracy() const {
    return range_queries == 0
               ? 1.0
               : static_cast<double>(range_exact_matches) / range_queries;
  }
};

/// The assembled system.
class LbsSystem {
 public:
  /// Builds the whole stack: generates users and POIs, registers clients,
  /// streams the initial location reports.
  static Result<std::unique_ptr<LbsSystem>> Create(
      const LbsSystemOptions& options);

  /// Advances the movement model by `dt` and streams every user's new
  /// location through the privacy pipeline at time `now`.
  Status Tick(double dt, TimeOfDay now);

  /// Runs one private NN query end to end for `user` and validates the
  /// refined answer against ground truth, updating the metrics.
  Status RunPrivateNn(UserId user, Category category, TimeOfDay now);

  /// Runs one private range query end to end with validation.
  Status RunPrivateRange(UserId user, double radius, Category category,
                         TimeOfDay now);

  /// Runs one private k-NN query end to end with validation (counted
  /// under the NN metrics).
  Status RunPrivateKnn(UserId user, size_t k, Category category,
                       TimeOfDay now);

  /// Runs a generated workload spec (public queries go straight to the
  /// server on the third-party channel).
  Status RunQuery(const QuerySpec& spec, TimeOfDay now);

  /// Ground truth: the true location the simulator holds for a user.
  Result<Point> TrueLocation(UserId user) const;

  Anonymizer& anonymizer() { return *anonymizer_; }
  QueryProcessor& server() { return *server_; }
  const MessageCounters& counters() const { return counters_; }
  const EndToEndMetrics& metrics() const { return metrics_; }
  const std::vector<UserId>& user_ids() const { return user_ids_; }
  const LbsSystemOptions& options() const { return options_; }

 private:
  explicit LbsSystem(const LbsSystemOptions& options);

  LbsSystemOptions options_;
  std::unique_ptr<Anonymizer> anonymizer_;
  std::unique_ptr<QueryProcessor> server_;
  std::unique_ptr<RandomWaypointModel> movement_;
  std::vector<MobileClient> clients_;
  std::unordered_map<UserId, size_t> client_index_;
  std::vector<UserId> user_ids_;
  MessageCounters counters_;
  EndToEndMetrics metrics_;
};

}  // namespace cloakdb

#endif  // CLOAKDB_SYSTEM_SYSTEM_H_
