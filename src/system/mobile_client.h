// The mobile-user agent: reports locations through the anonymizer, issues
// private queries, and refines candidate lists locally (paper Sections 4
// and 6.2.1).
//
// The client is the only entity that ever holds its own exact location;
// queries reach the server exclusively through the anonymizer.

#ifndef CLOAKDB_SYSTEM_MOBILE_CLIENT_H_
#define CLOAKDB_SYSTEM_MOBILE_CLIENT_H_

#include <optional>

#include "core/anonymizer.h"
#include "server/query_processor.h"
#include "system/messages.h"
#include "util/status.h"

namespace cloakdb {

/// The user's mode of paper Section 4.
enum class UserMode {
  kPassive,  ///< Shares nothing.
  kActive,   ///< Streams location updates.
  kQuery,    ///< Additionally issues spatio-temporal queries.
};

/// Outcome of a client-side private NN query.
struct ClientNnAnswer {
  PublicObject nearest;          ///< Exact answer after local refinement.
  size_t candidates_received = 0;
  double cloaked_area = 0.0;     ///< Area of the region the server saw.
};

/// Outcome of a client-side private range query.
struct ClientRangeAnswer {
  std::vector<PublicObject> objects;  ///< Exact answer after refinement.
  size_t candidates_received = 0;
  double cloaked_area = 0.0;
};

/// A mobile user connected to the system.
class MobileClient {
 public:
  /// Registers `user` with the anonymizer under `profile`. All referenced
  /// components must outlive the client.
  static Result<MobileClient> Connect(UserId user, PrivacyProfile profile,
                                      Anonymizer* anonymizer,
                                      QueryProcessor* server,
                                      MessageCounters* counters);

  /// Streams one exact location update (active mode): user -> anonymizer
  /// -> server, with traffic accounting on both hops.
  Status ReportLocation(const Point& location, TimeOfDay now);

  /// Updates only the device's own GPS fix (used for local candidate
  /// refinement) without any network traffic — the client-side half of a
  /// report whose anonymizer/server hops were carried by a batch.
  void ObserveLocation(const Point& location) {
    last_location_ = location;
    if (mode_ == UserMode::kPassive) mode_ = UserMode::kActive;
  }

  /// Private NN query (query mode): the anonymizer cloaks the current
  /// location, the server builds a candidate list, the client refines it
  /// against the true location. Requires a prior ReportLocation.
  Result<ClientNnAnswer> FindNearest(Category category, TimeOfDay now);

  /// Private k-NN query: the k nearest objects, exact after refinement.
  Result<ClientRangeAnswer> FindKNearest(size_t k, Category category,
                                         TimeOfDay now);

  /// Private range query, same flow.
  Result<ClientRangeAnswer> FindWithinRadius(double radius, Category category,
                                             TimeOfDay now);

  /// Disconnect: unregister from the anonymizer and drop the server-side
  /// region.
  Status Disconnect();

  UserId user() const { return user_; }
  UserMode mode() const { return mode_; }
  const std::optional<Point>& last_location() const { return last_location_; }

 private:
  MobileClient(UserId user, Anonymizer* anonymizer, QueryProcessor* server,
               MessageCounters* counters)
      : user_(user),
        anonymizer_(anonymizer),
        server_(server),
        counters_(counters) {}

  UserId user_;
  Anonymizer* anonymizer_;
  QueryProcessor* server_;
  MessageCounters* counters_;
  UserMode mode_ = UserMode::kPassive;
  std::optional<Point> last_location_;
};

}  // namespace cloakdb

#endif  // CLOAKDB_SYSTEM_MOBILE_CLIENT_H_
