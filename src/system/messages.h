// Message vocabulary of the three-entity architecture (paper Fig. 1) with
// wire-size accounting.
//
// The entities run in-process, but every interaction is modeled as an
// explicit message with a byte cost so experiments can report the
// transmission side of the privacy/QoS trade-off (Section 6.2.1: candidate
// lists trade bytes for privacy).

#ifndef CLOAKDB_SYSTEM_MESSAGES_H_
#define CLOAKDB_SYSTEM_MESSAGES_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "geom/point.h"
#include "geom/rect.h"

namespace cloakdb {

/// Logical channels of Fig. 1.
enum class Channel {
  kUserToAnonymizer = 0,    ///< Exact locations and query intents.
  kAnonymizerToServer = 1,  ///< Cloaked regions and anonymized queries.
  kServerToUser = 2,        ///< Candidate lists / probabilistic answers.
  kThirdPartyToServer = 3,  ///< Public queries from untrusted parties.
};
inline constexpr size_t kNumChannels = 4;

const char* ChannelName(Channel channel);

/// Modeled wire sizes (bytes) of the primitive fields.
namespace wire {
inline constexpr size_t kId = 8;
inline constexpr size_t kPoint = 16;
inline constexpr size_t kRect = 32;
inline constexpr size_t kScalar = 8;
inline constexpr size_t kHeader = 16;  ///< Per-message envelope.
}  // namespace wire

/// Per-channel traffic accumulator.
class MessageCounters {
 public:
  /// Records one message of `bytes` payload (envelope added internally).
  void Record(Channel channel, size_t bytes);

  uint64_t MessageCount(Channel channel) const;
  uint64_t ByteCount(Channel channel) const;
  uint64_t TotalMessages() const;
  uint64_t TotalBytes() const;
  void Reset();

  /// Multi-line human-readable report.
  std::string ToString() const;

 private:
  uint64_t messages_[kNumChannels] = {0, 0, 0, 0};
  uint64_t bytes_[kNumChannels] = {0, 0, 0, 0};
};

/// Wire size of a location report (user -> anonymizer).
constexpr size_t LocationReportBytes() {
  return wire::kId + wire::kPoint + wire::kScalar;
}

/// Wire size of a cloaked update (anonymizer -> server).
constexpr size_t CloakedUpdateBytes() { return wire::kId + wire::kRect; }

/// Wire size of a private query forwarded to the server.
constexpr size_t PrivateQueryBytes() {
  return wire::kId + wire::kRect + wire::kScalar + wire::kScalar;
}

/// Wire size of a candidate list of `n` objects (server -> user).
constexpr size_t CandidateListBytes(size_t n) {
  return n * (wire::kId + wire::kPoint + wire::kScalar);
}

}  // namespace cloakdb

#endif  // CLOAKDB_SYSTEM_MESSAGES_H_
