#include "system/system.h"

#include <algorithm>

#include "geom/distance.h"

namespace cloakdb {

LbsSystem::LbsSystem(const LbsSystemOptions& options) : options_(options) {}

Result<std::unique_ptr<LbsSystem>> LbsSystem::Create(
    const LbsSystemOptions& options) {
  if (options.num_users == 0)
    return Status::InvalidArgument("system needs at least one user");
  auto profile = PrivacyProfile::Uniform(options.requirement);
  if (!profile.ok()) return profile.status();

  std::unique_ptr<LbsSystem> system(new LbsSystem(options));
  Rng rng(options.seed);

  AnonymizerOptions anon_options = options.anonymizer;
  anon_options.space = options.space;
  auto anonymizer = Anonymizer::Create(anon_options);
  if (!anonymizer.ok()) return anonymizer.status();
  system->anonymizer_ = std::move(anonymizer).value();
  system->server_ = std::make_unique<QueryProcessor>(options.space);

  // Public data: one POI set per category.
  for (Category cat : options.categories) {
    PoiOptions poi;
    poi.count = options.pois_per_category;
    poi.category = cat;
    poi.name_prefix = "poi" + std::to_string(cat);
    poi.first_id = 1'000'000ULL + 1'000'000ULL * cat;
    auto pois = GeneratePois(options.space, poi, &rng);
    if (!pois.ok()) return pois.status();
    CLOAKDB_RETURN_IF_ERROR(
        system->server_->store().BulkLoadCategory(cat, std::move(pois).value()));
  }

  // Private data: generated users with movement and an initial report.
  PopulationOptions pop;
  pop.num_users = options.num_users;
  pop.model = options.population_model;
  auto users = GeneratePopulation(options.space, pop, &rng);
  if (!users.ok()) return users.status();

  RandomWaypointModel::Options move_options = options.movement;
  move_options.seed = options.seed ^ 0x5a5a5a5aULL;
  system->movement_ =
      std::make_unique<RandomWaypointModel>(options.space, move_options);

  system->clients_.reserve(options.num_users);
  TimeOfDay start = TimeOfDay::FromHms(12, 0).value();
  for (const auto& entry : users.value()) {
    CLOAKDB_RETURN_IF_ERROR(
        system->movement_->AddUser(entry.id, entry.location));
    auto client = MobileClient::Connect(
        entry.id, profile.value(), system->anonymizer_.get(),
        system->server_.get(), &system->counters_);
    if (!client.ok()) return client.status();
    system->client_index_.emplace(entry.id, system->clients_.size());
    system->clients_.push_back(std::move(client).value());
    system->user_ids_.push_back(entry.id);
    CLOAKDB_RETURN_IF_ERROR(
        system->clients_.back().ReportLocation(entry.location, start));
  }
  return system;
}

Status LbsSystem::Tick(double dt, TimeOfDay now) {
  movement_->Step(dt);
  if (!options_.batch_updates) {
    for (auto& client : clients_) {
      auto loc = movement_->LocationOf(client.user());
      if (!loc.ok()) return loc.status();
      CLOAKDB_RETURN_IF_ERROR(client.ReportLocation(loc.value(), now));
    }
    return Status::OK();
  }

  // Batch path: one anonymizer call for the whole tick, sharing region
  // computations across same-cell users (Section 5.3).
  std::vector<std::pair<UserId, Point>> updates;
  updates.reserve(clients_.size());
  for (const auto& entry : movement_->Locations()) {
    updates.push_back({entry.id, entry.location});
    counters_.Record(Channel::kUserToAnonymizer, LocationReportBytes());
    auto it = client_index_.find(entry.id);
    if (it != client_index_.end()) {
      clients_[it->second].ObserveLocation(entry.location);
    }
  }
  auto results = anonymizer_->UpdateLocationsBatch(updates, now);
  if (!results.ok()) return results.status();
  for (const auto& update : results.value()) {
    if (update.retired_pseudonym != 0) {
      counters_.Record(Channel::kAnonymizerToServer, wire::kId);
      (void)server_->DropPseudonym(update.retired_pseudonym);
    }
    counters_.Record(Channel::kAnonymizerToServer, CloakedUpdateBytes());
    CLOAKDB_RETURN_IF_ERROR(server_->ApplyCloakedUpdate(
        update.pseudonym, update.cloaked.region));
  }
  return Status::OK();
}

Result<Point> LbsSystem::TrueLocation(UserId user) const {
  return movement_->LocationOf(user);
}

Status LbsSystem::RunPrivateNn(UserId user, Category category,
                               TimeOfDay now) {
  auto it = client_index_.find(user);
  if (it == client_index_.end())
    return Status::NotFound("unknown user in private NN query");
  MobileClient& client = clients_[it->second];

  auto answer = client.FindNearest(category, now);
  if (!answer.ok()) return answer.status();

  // Ground truth: the NN of the true location, computed directly.
  auto true_loc = TrueLocation(user);
  if (!true_loc.ok()) return true_loc.status();
  auto index = server_->store().CategoryIndex(category);
  if (!index.ok()) return index.status();
  auto truth = index.value()->KNearest(true_loc.value(), 1);
  if (truth.empty()) return Status::Internal("category unexpectedly empty");

  ++metrics_.nn_queries;
  metrics_.nn_candidates.Add(
      static_cast<double>(answer.value().candidates_received));
  // Compare by distance (not id) so equidistant ties count as exact.
  double got = Distance(true_loc.value(), answer.value().nearest.location);
  double want = Distance(true_loc.value(), truth.front().location);
  if (got <= want + 1e-12) ++metrics_.nn_exact_matches;
  return Status::OK();
}

Status LbsSystem::RunPrivateRange(UserId user, double radius,
                                  Category category, TimeOfDay now) {
  auto it = client_index_.find(user);
  if (it == client_index_.end())
    return Status::NotFound("unknown user in private range query");
  MobileClient& client = clients_[it->second];

  auto answer = client.FindWithinRadius(radius, category, now);
  if (!answer.ok()) return answer.status();

  auto true_loc = TrueLocation(user);
  if (!true_loc.ok()) return true_loc.status();
  auto index = server_->store().CategoryIndex(category);
  if (!index.ok()) return index.status();
  // Ground truth ids: exact circular range query around the true location.
  auto box = Rect::CenteredSquare(true_loc.value(), 2.0 * radius);
  std::vector<ObjectId> truth;
  for (const auto& hit : index.value()->RangeSearch(box)) {
    if (Distance(hit.location, true_loc.value()) <= radius)
      truth.push_back(hit.id);
  }
  std::sort(truth.begin(), truth.end());

  std::vector<ObjectId> got;
  for (const auto& o : answer.value().objects) got.push_back(o.id);
  std::sort(got.begin(), got.end());

  ++metrics_.range_queries;
  metrics_.range_candidates.Add(
      static_cast<double>(answer.value().candidates_received));
  if (got == truth) ++metrics_.range_exact_matches;
  return Status::OK();
}

Status LbsSystem::RunPrivateKnn(UserId user, size_t k, Category category,
                                TimeOfDay now) {
  auto it = client_index_.find(user);
  if (it == client_index_.end())
    return Status::NotFound("unknown user in private k-NN query");
  MobileClient& client = clients_[it->second];

  auto answer = client.FindKNearest(k, category, now);
  if (!answer.ok()) return answer.status();

  auto true_loc = TrueLocation(user);
  if (!true_loc.ok()) return true_loc.status();
  auto index = server_->store().CategoryIndex(category);
  if (!index.ok()) return index.status();
  auto truth = index.value()->KNearest(true_loc.value(), k);

  ++metrics_.nn_queries;
  metrics_.nn_candidates.Add(
      static_cast<double>(answer.value().candidates_received));
  bool exact = answer.value().objects.size() == truth.size();
  if (exact) {
    for (size_t i = 0; i < truth.size(); ++i) {
      double got =
          Distance(true_loc.value(), answer.value().objects[i].location);
      double want = Distance(true_loc.value(), truth[i].location);
      if (got > want + 1e-12) exact = false;
    }
  }
  if (exact) ++metrics_.nn_exact_matches;
  return Status::OK();
}

Status LbsSystem::RunQuery(const QuerySpec& spec, TimeOfDay now) {
  switch (spec.type) {
    case QueryType::kPrivateRange:
      return RunPrivateRange(spec.issuer, spec.radius, spec.category, now);
    case QueryType::kPrivateNn:
      return RunPrivateNn(spec.issuer, spec.category, now);
    case QueryType::kPrivateKnn:
      return RunPrivateKnn(spec.issuer, spec.knn_k, spec.category, now);
    case QueryType::kPublicCount: {
      counters_.Record(Channel::kThirdPartyToServer, wire::kRect);
      auto result = server_->PublicCount(spec.window);
      return result.ok() ? Status::OK() : result.status();
    }
    case QueryType::kPublicNn: {
      counters_.Record(Channel::kThirdPartyToServer, wire::kPoint);
      auto result = server_->PublicNn(spec.from);
      return result.ok() ? Status::OK() : result.status();
    }
  }
  return Status::InvalidArgument("unknown query type");
}

}  // namespace cloakdb
