#include "system/mobile_client.h"

namespace cloakdb {

Result<MobileClient> MobileClient::Connect(UserId user, PrivacyProfile profile,
                                           Anonymizer* anonymizer,
                                           QueryProcessor* server,
                                           MessageCounters* counters) {
  CLOAKDB_RETURN_IF_ERROR(anonymizer->RegisterUser(user, std::move(profile)));
  return MobileClient(user, anonymizer, server, counters);
}

Status MobileClient::ReportLocation(const Point& location, TimeOfDay now) {
  counters_->Record(Channel::kUserToAnonymizer, LocationReportBytes());
  auto update = anonymizer_->UpdateLocation(user_, location, now);
  if (!update.ok()) return update.status();

  if (update.value().retired_pseudonym != 0) {
    // Pseudonym rotation: retire the stale server-side record.
    counters_->Record(Channel::kAnonymizerToServer, wire::kId);
    (void)server_->DropPseudonym(update.value().retired_pseudonym);
  }
  counters_->Record(Channel::kAnonymizerToServer, CloakedUpdateBytes());
  CLOAKDB_RETURN_IF_ERROR(server_->ApplyCloakedUpdate(
      update.value().pseudonym, update.value().cloaked.region));

  last_location_ = location;
  if (mode_ == UserMode::kPassive) mode_ = UserMode::kActive;
  return Status::OK();
}

Result<ClientNnAnswer> MobileClient::FindNearest(Category category,
                                                 TimeOfDay now) {
  if (!last_location_.has_value())
    return Status::FailedPrecondition(
        "client must report a location before querying");
  mode_ = UserMode::kQuery;

  counters_->Record(Channel::kUserToAnonymizer, LocationReportBytes());
  auto cloaked = anonymizer_->CloakForQuery(user_, now);
  if (!cloaked.ok()) return cloaked.status();

  counters_->Record(Channel::kAnonymizerToServer, PrivateQueryBytes());
  auto result = server_->PrivateNn(cloaked.value().cloaked.region, category);
  if (!result.ok()) return result.status();

  counters_->Record(Channel::kServerToUser,
                    CandidateListBytes(result.value().candidates.size()));
  auto nearest =
      RefineNnCandidates(result.value().candidates, *last_location_);
  if (!nearest.ok()) return nearest.status();

  ClientNnAnswer answer;
  answer.nearest = std::move(nearest).value();
  answer.candidates_received = result.value().candidates.size();
  answer.cloaked_area = cloaked.value().cloaked.region.Area();
  return answer;
}

Result<ClientRangeAnswer> MobileClient::FindKNearest(size_t k,
                                                     Category category,
                                                     TimeOfDay now) {
  if (!last_location_.has_value())
    return Status::FailedPrecondition(
        "client must report a location before querying");
  mode_ = UserMode::kQuery;

  counters_->Record(Channel::kUserToAnonymizer, LocationReportBytes());
  auto cloaked = anonymizer_->CloakForQuery(user_, now);
  if (!cloaked.ok()) return cloaked.status();

  counters_->Record(Channel::kAnonymizerToServer, PrivateQueryBytes());
  auto result =
      server_->PrivateKnn(cloaked.value().cloaked.region, k, category);
  if (!result.ok()) return result.status();

  counters_->Record(Channel::kServerToUser,
                    CandidateListBytes(result.value().candidates.size()));

  ClientRangeAnswer answer;
  answer.objects =
      RefineKnnCandidates(result.value().candidates, *last_location_, k);
  answer.candidates_received = result.value().candidates.size();
  answer.cloaked_area = cloaked.value().cloaked.region.Area();
  return answer;
}

Result<ClientRangeAnswer> MobileClient::FindWithinRadius(double radius,
                                                         Category category,
                                                         TimeOfDay now) {
  if (!last_location_.has_value())
    return Status::FailedPrecondition(
        "client must report a location before querying");
  mode_ = UserMode::kQuery;

  counters_->Record(Channel::kUserToAnonymizer, LocationReportBytes());
  auto cloaked = anonymizer_->CloakForQuery(user_, now);
  if (!cloaked.ok()) return cloaked.status();

  counters_->Record(Channel::kAnonymizerToServer, PrivateQueryBytes());
  auto result =
      server_->PrivateRange(cloaked.value().cloaked.region, radius, category);
  if (!result.ok()) return result.status();

  counters_->Record(Channel::kServerToUser,
                    CandidateListBytes(result.value().candidates.size()));

  ClientRangeAnswer answer;
  answer.objects = RefineRangeCandidates(result.value().candidates,
                                         *last_location_, radius);
  answer.candidates_received = result.value().candidates.size();
  answer.cloaked_area = cloaked.value().cloaked.region.Area();
  return answer;
}

Status MobileClient::Disconnect() {
  auto pseudonym = anonymizer_->PseudonymOf(user_);
  if (pseudonym.ok() && last_location_.has_value()) {
    // Best effort: the server may never have seen this pseudonym.
    (void)server_->DropPseudonym(pseudonym.value());
  }
  CLOAKDB_RETURN_IF_ERROR(anonymizer_->UnregisterUser(user_));
  mode_ = UserMode::kPassive;
  last_location_.reset();
  return Status::OK();
}

}  // namespace cloakdb
