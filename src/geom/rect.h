// Axis-aligned rectangle (AABB): the shape of every cloaked spatial region,
// grid cell, query window, and index node in CloakDB.

#ifndef CLOAKDB_GEOM_RECT_H_
#define CLOAKDB_GEOM_RECT_H_

#include <array>
#include <string>

#include "geom/point.h"

namespace cloakdb {

/// A closed axis-aligned rectangle [min_x, max_x] x [min_y, max_y].
///
/// A default-constructed Rect is "empty" (inverted bounds); Union-ing onto an
/// empty Rect yields the operand, which makes MBR accumulation loops simple.
struct Rect {
  double min_x = 1.0;
  double min_y = 1.0;
  double max_x = -1.0;
  double max_y = -1.0;

  /// Empty rectangle.
  Rect() = default;

  Rect(double x0, double y0, double x1, double y1)
      : min_x(x0), min_y(y0), max_x(x1), max_y(y1) {}

  /// Degenerate rectangle covering exactly one point.
  static Rect FromPoint(const Point& p) { return {p.x, p.y, p.x, p.y}; }

  /// Square of side `side` centered on `c` (side < 0 yields empty).
  static Rect CenteredSquare(const Point& c, double side);

  /// Rectangle of width w, height h centered on `c`.
  static Rect Centered(const Point& c, double w, double h);

  /// True iff the bounds are inverted on either axis.
  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  double Width() const { return IsEmpty() ? 0.0 : max_x - min_x; }
  double Height() const { return IsEmpty() ? 0.0 : max_y - min_y; }
  double Area() const { return Width() * Height(); }
  double Perimeter() const { return 2.0 * (Width() + Height()); }
  Point Center() const {
    return {(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
  }

  /// The four corners, counter-clockwise from (min_x, min_y). Meaningless on
  /// an empty rectangle.
  std::array<Point, 4> Corners() const;

  /// True iff `p` lies inside or on the boundary.
  bool Contains(const Point& p) const;

  /// True iff `other` lies entirely inside this rectangle.
  bool Contains(const Rect& other) const;

  /// True iff the two rectangles share any point (boundary touch counts).
  bool Intersects(const Rect& other) const;

  /// The common region; empty when the rectangles are disjoint.
  Rect Intersection(const Rect& other) const;

  /// Smallest rectangle containing both operands.
  Rect Union(const Rect& other) const;

  /// Smallest rectangle containing this one and `p`.
  Rect Union(const Point& p) const { return Union(FromPoint(p)); }

  /// Minkowski expansion: every side pushed outward by `margin` (>= 0).
  /// This is the paper's Fig. 5a extended region for private range queries.
  Rect Expanded(double margin) const;

  /// This rectangle clipped to lie inside `bounds`.
  Rect ClampedTo(const Rect& bounds) const { return Intersection(bounds); }

  /// Fraction of this rectangle's area that overlaps `other`, in [0, 1].
  /// Returns 0 for an empty or zero-area rectangle.
  double OverlapFraction(const Rect& other) const;

  bool operator==(const Rect& o) const {
    return min_x == o.min_x && min_y == o.min_y && max_x == o.max_x &&
           max_y == o.max_y;
  }
  bool operator!=(const Rect& o) const { return !(*this == o); }

  /// "[x0, x1] x [y0, y1]".
  std::string ToString() const;
};

}  // namespace cloakdb

#endif  // CLOAKDB_GEOM_RECT_H_
