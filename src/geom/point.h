// 2-D point primitive used for exact user/POI locations.

#ifndef CLOAKDB_GEOM_POINT_H_
#define CLOAKDB_GEOM_POINT_H_

#include <cmath>
#include <string>

namespace cloakdb {

/// A point in the 2-D plane (coordinates in the space's length unit, e.g.
/// miles for the paper's scenarios).
struct Point {
  double x = 0.0;
  double y = 0.0;

  Point() = default;
  Point(double px, double py) : x(px), y(py) {}

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  Point operator*(double s) const { return {x * s, y * s}; }

  bool operator==(const Point& o) const { return x == o.x && y == o.y; }
  bool operator!=(const Point& o) const { return !(*this == o); }

  /// Euclidean norm of this point viewed as a vector.
  double Norm() const { return std::sqrt(x * x + y * y); }

  /// "(x, y)" with 6 significant digits.
  std::string ToString() const;
};

/// Euclidean distance between two points.
double Distance(const Point& a, const Point& b);

/// Squared Euclidean distance (avoids the sqrt for comparisons).
double DistanceSquared(const Point& a, const Point& b);

}  // namespace cloakdb

#endif  // CLOAKDB_GEOM_POINT_H_
