// Distance bounds between points and rectangles.
//
// These are the geometric workhorses of privacy-aware query processing:
// - MinDist / MaxDist(point, rect) bound the distance from a query point to
//   an object known only up to its cloaked rectangle (paper Fig. 6b);
// - MinDist / MaxDist(rect, rect) bound the distance between a cloaked
//   querier and a cloaked object and drive candidate-set pruning
//   ("B and C are guaranteed nearer than A", paper Fig. 5b).

#ifndef CLOAKDB_GEOM_DISTANCE_H_
#define CLOAKDB_GEOM_DISTANCE_H_

#include "geom/point.h"
#include "geom/rect.h"

namespace cloakdb {

/// Smallest distance from `p` to any point of `r` (0 if `p` is inside).
double MinDist(const Point& p, const Rect& r);

/// Largest distance from `p` to any point of `r` (attained at a corner).
double MaxDist(const Point& p, const Rect& r);

/// Squared variants (avoid the sqrt in comparison-only code).
double MinDistSquared(const Point& p, const Rect& r);
double MaxDistSquared(const Point& p, const Rect& r);

/// Smallest distance between any point of `a` and any point of `b`
/// (0 if they intersect).
double MinDist(const Rect& a, const Rect& b);

/// Largest distance between any point of `a` and any point of `b`.
double MaxDist(const Rect& a, const Rect& b);

/// MinMaxDist(p, r): the smallest upper bound on the distance from `p` to an
/// object *known to lie somewhere in* r, given that at least one face of r
/// touches the object MBR (classic R-tree NN pruning bound). For degenerate
/// (point) rectangles this equals the point distance.
double MinMaxDist(const Point& p, const Rect& r);

}  // namespace cloakdb

#endif  // CLOAKDB_GEOM_DISTANCE_H_
