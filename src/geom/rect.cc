#include "geom/rect.h"

#include <algorithm>
#include <cstdio>

namespace cloakdb {

Rect Rect::CenteredSquare(const Point& c, double side) {
  return Centered(c, side, side);
}

Rect Rect::Centered(const Point& c, double w, double h) {
  return {c.x - w / 2.0, c.y - h / 2.0, c.x + w / 2.0, c.y + h / 2.0};
}

std::array<Point, 4> Rect::Corners() const {
  return {Point{min_x, min_y}, Point{max_x, min_y}, Point{max_x, max_y},
          Point{min_x, max_y}};
}

bool Rect::Contains(const Point& p) const {
  return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
}

bool Rect::Contains(const Rect& other) const {
  if (other.IsEmpty()) return true;
  if (IsEmpty()) return false;
  return other.min_x >= min_x && other.max_x <= max_x &&
         other.min_y >= min_y && other.max_y <= max_y;
}

bool Rect::Intersects(const Rect& other) const {
  if (IsEmpty() || other.IsEmpty()) return false;
  return min_x <= other.max_x && other.min_x <= max_x &&
         min_y <= other.max_y && other.min_y <= max_y;
}

Rect Rect::Intersection(const Rect& other) const {
  Rect r(std::max(min_x, other.min_x), std::max(min_y, other.min_y),
         std::min(max_x, other.max_x), std::min(max_y, other.max_y));
  if (r.min_x > r.max_x || r.min_y > r.max_y) return Rect();  // disjoint
  return r;
}

Rect Rect::Union(const Rect& other) const {
  if (IsEmpty()) return other;
  if (other.IsEmpty()) return *this;
  return {std::min(min_x, other.min_x), std::min(min_y, other.min_y),
          std::max(max_x, other.max_x), std::max(max_y, other.max_y)};
}

Rect Rect::Expanded(double margin) const {
  if (IsEmpty()) return *this;
  return {min_x - margin, min_y - margin, max_x + margin, max_y + margin};
}

double Rect::OverlapFraction(const Rect& other) const {
  double a = Area();
  if (a <= 0.0) return 0.0;
  return Intersection(other).Area() / a;
}

std::string Rect::ToString() const {
  if (IsEmpty()) return "[empty]";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%.6g, %.6g] x [%.6g, %.6g]", min_x, max_x,
                min_y, max_y);
  return buf;
}

}  // namespace cloakdb
