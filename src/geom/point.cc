#include "geom/point.h"

#include <cstdio>

namespace cloakdb {

std::string Point::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%.6g, %.6g)", x, y);
  return buf;
}

double Distance(const Point& a, const Point& b) {
  return std::sqrt(DistanceSquared(a, b));
}

double DistanceSquared(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace cloakdb
