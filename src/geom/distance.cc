#include "geom/distance.h"

#include <algorithm>
#include <cmath>

namespace cloakdb {

namespace {

// Distance from v to interval [lo, hi]; 0 inside.
double AxisGap(double v, double lo, double hi) {
  if (v < lo) return lo - v;
  if (v > hi) return v - hi;
  return 0.0;
}

// Farthest end of interval [lo, hi] from v.
double AxisFar(double v, double lo, double hi) {
  return std::max(std::abs(v - lo), std::abs(v - hi));
}

// Nearest end of interval [lo, hi] from v (used by MinMaxDist).
double AxisNearEnd(double v, double lo, double hi) {
  return std::min(std::abs(v - lo), std::abs(v - hi));
}

}  // namespace

double MinDistSquared(const Point& p, const Rect& r) {
  double dx = AxisGap(p.x, r.min_x, r.max_x);
  double dy = AxisGap(p.y, r.min_y, r.max_y);
  return dx * dx + dy * dy;
}

double MinDist(const Point& p, const Rect& r) {
  return std::sqrt(MinDistSquared(p, r));
}

double MaxDistSquared(const Point& p, const Rect& r) {
  double dx = AxisFar(p.x, r.min_x, r.max_x);
  double dy = AxisFar(p.y, r.min_y, r.max_y);
  return dx * dx + dy * dy;
}

double MaxDist(const Point& p, const Rect& r) {
  return std::sqrt(MaxDistSquared(p, r));
}

double MinDist(const Rect& a, const Rect& b) {
  double dx = 0.0;
  if (a.max_x < b.min_x)
    dx = b.min_x - a.max_x;
  else if (b.max_x < a.min_x)
    dx = a.min_x - b.max_x;
  double dy = 0.0;
  if (a.max_y < b.min_y)
    dy = b.min_y - a.max_y;
  else if (b.max_y < a.min_y)
    dy = a.min_y - b.max_y;
  return std::sqrt(dx * dx + dy * dy);
}

double MaxDist(const Rect& a, const Rect& b) {
  double dx = std::max(std::abs(a.max_x - b.min_x),
                       std::abs(b.max_x - a.min_x));
  double dy = std::max(std::abs(a.max_y - b.min_y),
                       std::abs(b.max_y - a.min_y));
  return std::sqrt(dx * dx + dy * dy);
}

double MinMaxDist(const Point& p, const Rect& r) {
  // For each axis k: clamp to the nearer face on axis k, take the farthest
  // coordinate on the other axis; the bound is the min over axes.
  double near_x = AxisNearEnd(p.x, r.min_x, r.max_x);
  double near_y = AxisNearEnd(p.y, r.min_y, r.max_y);
  double far_x = AxisFar(p.x, r.min_x, r.max_x);
  double far_y = AxisFar(p.y, r.min_y, r.max_y);
  double via_x = std::sqrt(near_x * near_x + far_y * far_y);
  double via_y = std::sqrt(far_x * far_x + near_y * near_y);
  return std::min(via_x, via_y);
}

}  // namespace cloakdb
